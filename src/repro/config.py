"""Merced configuration (the paper's Section 4.1 parameter set).

Defaults follow the values the authors settled on: ``b = 1``,
``min_visit = 20``, ``α = 4``, ``Δ = 0.01``, ``β = 50``; the CUT input
bound ``l_k`` defaults to 16 (CBIT type d4).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional

from .errors import ConfigError

__all__ = ["MercedConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class MercedConfig:
    """All tunables of the Merced BIST compiler.

    Attributes:
        lk: input-size bound ``l_k`` per CUT/CBIT (Eq. 5). Testing time is
            ``O(2^lk)`` clock cycles per test pipe.
        delta: flow increment ``Δ`` injected per shortest-path net
            (Table 3, STEP 3.3.1).
        alpha: congestion exponent ``α`` in
            ``d(e) = exp(α · flow(e)/cap(e))`` (STEP 3.3.2).
        cap: uniform net capacity ``b`` (STEP 1.1).
        min_visit: fairness threshold — saturation continues until every
            node has been a Dijkstra source at least this many times.
        beta: SCC cut-budget multiplier ``β`` of Eq. 6
            (``χ(λ) ≤ β · f(λ)``); ``β = 50`` effectively un-constrains
            partitioning, smaller values trade cuts for testing time.
        seed: RNG seed for the stochastic source selection; fixed by
            default so runs are reproducible.
        max_sources: optional cap on the total number of Dijkstra source
            injections during ``Saturate_Network``.  The paper runs
            ``min_visit × |V|`` injections (on a 1996 workstation, in C);
            in Python that is prohibitive beyond a few thousand nodes, so
            large-circuit benches cap the sample while keeping the source
            selection fair (sampling without replacement across rounds).
            ``None`` (default) is the paper-faithful behaviour.
        merge_clusters: run the greedy ``Assign_CBIT`` merging pass
            (Table 8). Disabling it is the paper's implicit baseline of one
            CBIT per raw cluster (used by our ablation benches).
        optimize: post-pass partition refinement tier
            (:mod:`repro.optimize`): ``None`` (default) keeps the
            one-shot greedy result, ``"fast"`` runs the deterministic
            timing-aware hill climb, ``"anneal"`` the simulated-
            annealing refinement.  Either mode only ever *improves* the
            CBIT catalogue cost Σ (Eq. 4) — the greedy partition is the
            fallback when no legal improving state is found.
        optimize_budget: approximate wall-clock budget in seconds for
            the refinement pass.  The budget is *advisory*: it is
            converted into a deterministic move-schedule length from
            the circuit size alone, so results are byte-identical for a
            given ``(netlist, config)`` on any host and at any
            ``--jobs`` — a slower machine simply overshoots the wall
            clock instead of changing the answer.
    """

    lk: int = 16
    delta: float = 0.01
    alpha: float = 4.0
    cap: float = 1.0
    min_visit: int = 20
    beta: int = 50
    seed: Optional[int] = 1996
    max_sources: Optional[int] = None
    merge_clusters: bool = True
    optimize: Optional[str] = None
    optimize_budget: float = 5.0

    def __post_init__(self) -> None:
        if self.lk < 1:
            raise ConfigError(f"lk must be positive, got {self.lk}")
        if self.delta <= 0:
            raise ConfigError(f"delta must be positive, got {self.delta}")
        if self.alpha <= 0:
            raise ConfigError(f"alpha must be positive, got {self.alpha}")
        if self.cap <= 0:
            raise ConfigError(f"cap must be positive, got {self.cap}")
        if self.min_visit < 1:
            raise ConfigError(
                f"min_visit must be at least 1, got {self.min_visit}"
            )
        if self.beta < 1:
            raise ConfigError(f"beta must be an integer >= 1, got {self.beta}")
        if self.max_sources is not None and self.max_sources < 1:
            raise ConfigError(
                f"max_sources must be positive or None, got {self.max_sources}"
            )
        if self.optimize not in (None, "fast", "anneal"):
            raise ConfigError(
                f"optimize must be None, 'fast' or 'anneal', "
                f"got {self.optimize!r}"
            )
        if self.optimize_budget <= 0:
            raise ConfigError(
                f"optimize_budget must be positive, got {self.optimize_budget}"
            )

    @property
    def average_flow_bound_ok(self) -> bool:
        """Section 4.1 guidance: ``min_visit × Δ ≤ b`` keeps flows below cap."""
        return self.min_visit * self.delta <= self.cap

    def with_lk(self, lk: int) -> "MercedConfig":
        """Copy of this configuration with a different input bound."""
        return replace(self, lk=lk)

    def with_seed(self, seed: Optional[int]) -> "MercedConfig":
        return replace(self, seed=seed)

    def with_beta(self, beta: int) -> "MercedConfig":
        return replace(self, beta=beta)

    def with_min_visit(self, min_visit: int) -> "MercedConfig":
        return replace(self, min_visit=min_visit)

    def with_max_sources(self, max_sources: Optional[int]) -> "MercedConfig":
        return replace(self, max_sources=max_sources)

    def with_optimize(
        self, optimize: Optional[str], budget: Optional[float] = None
    ) -> "MercedConfig":
        """Copy with a refinement tier (and optionally its budget)."""
        if budget is None:
            return replace(self, optimize=optimize)
        return replace(self, optimize=optimize, optimize_budget=budget)

    def canonical_dict(self) -> dict:
        """Every field as a stable ``{name: value}`` dict (sorted keys).

        This is the configuration's *identity* for purposes of the sweep
        result cache (:mod:`repro.exec.hashing`): two configs with equal
        canonical dicts must produce bit-identical Merced results on the
        same netlist and code version.  Adding a field to this dataclass
        automatically widens the identity (and invalidates old cache
        entries via the changed code hash).
        """
        return dict(sorted(asdict(self).items()))


#: The paper's published parameter set.
DEFAULT_CONFIG = MercedConfig()
