"""Scalable circuit corpus + continuous differential fuzzing.

The Table 9 generator (:mod:`repro.circuits.generator`) reproduces the
*paper's* benchmark statistics exactly — but its largest circuit is
s5378-sized, far below the scale the compiled kernels, incremental
retiming solver, and compile service claim to handle.  This package
closes that gap:

* :mod:`repro.corpus.spec` — :class:`CorpusSpec`, the constrained random
  topology description: gate count (tested up to 500k), SCC depth and
  ring size, fanout distribution, register density, pipeline depth.
* :mod:`repro.corpus.topology` — the O(n) generator that realises a
  spec as a lint-clean :class:`~repro.netlist.netlist.Netlist`, plus
  :func:`describe_netlist` for structural summaries.
* :mod:`repro.corpus.registry` — named specs: the committed seed corpus
  under ``benchmarks/corpus/`` and the large trend-bench circuits.
* :mod:`repro.corpus.fuzz` — the differential fuzz harness: runs
  compiled-vs-reference kernels, greedy-vs-mcf retiming, and
  service-vs-inline ``Merced.run`` on random corpus circuits, shrinks
  any mismatch to a minimal reproducer and archives it as a regression
  ``.bench`` file (driven by ``scripts/fuzz_differential.py``).
* :mod:`repro.corpus.cli` — the ``merced corpus`` subcommand
  (``generate`` / ``seed`` / ``describe``).
"""

from .spec import CorpusSpec
from .topology import describe_netlist, generate_corpus_circuit
from .registry import (
    SEED_CORPUS_SPECS,
    TREND_SPECS,
    corpus_spec_names,
    load_corpus_circuit,
    spec_by_name,
)

__all__ = [
    "CorpusSpec",
    "generate_corpus_circuit",
    "describe_netlist",
    "SEED_CORPUS_SPECS",
    "TREND_SPECS",
    "corpus_spec_names",
    "load_corpus_circuit",
    "spec_by_name",
]
