"""O(n) constrained-random topology generator for corpus circuits.

Realises a :class:`~repro.corpus.spec.CorpusSpec` as a validated,
lint-clean :class:`~repro.netlist.netlist.Netlist`:

* the circuit is a pipeline of stages; feed-forward DFFs sit at stage
  boundaries (guaranteed off every cycle);
* SCC registers form feedback *rings* inside stages — ``q_j → (chain of
  exactly ``scc_depth`` gates) → q_{j+1} → … → q_0`` — so SCC node count
  and register count are controlled exactly.  ``chord_prob`` adds
  same-ring shortcut edges (register-starved cycles → solver drop
  rounds); ``scc_coupling`` lets chains read surrounding stage logic
  (SCCs absorb neighbours, occasionally fusing);
* ordinary gates draw inputs with a recency bias (local clustering)
  or, with probability ``fanout_hub_bias``, from a small hub pool —
  which is what gives large circuits their heavy-tailed fanout;
* validity filters keep every emitted circuit ``merced lint``-clean at
  the default ``(l_k, β)``: every PI is read (NET002), every dangling
  signal becomes a PO (NET001/GRF002), gate inputs are distinct
  (NET004), fan-in is capped far below ``l_k`` (BUD001), every SCC
  carries its ring registers (RET001), and the combinational core is
  acyclic by construction (GRF001) because gates only ever read
  already-created signals or register outputs.

Everything random flows from the **single** ``random.Random(spec.seed)``
created at entry and threaded explicitly into every helper — no module
RNG, no per-helper reseeding — so one spec is one circuit, bit-for-bit,
on every platform.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from ..graphs.build import build_circuit_graph
from ..graphs.scc import SCCIndex
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from .spec import CorpusSpec

__all__ = ["generate_corpus_circuit", "describe_netlist", "plan_rings"]

#: Base gate mix: the paper's NAND/NOR-heavy profile with a realistic
#: sprinkle of AND/OR buffers and rare XORs.
_GATE_MIX: Tuple[Tuple[GateType, int], ...] = (
    (GateType.NAND, 40),
    (GateType.NOR, 30),
    (GateType.AND, 14),
    (GateType.OR, 12),
    (GateType.XOR, 4),
)
_MIX_TOTAL = sum(w for _, w in _GATE_MIX)


def _gate_type(rng: random.Random) -> GateType:
    roll = rng.randrange(_MIX_TOTAL)
    for gtype, weight in _GATE_MIX:
        roll -= weight
        if roll < 0:
            return gtype
    return GateType.NAND  # pragma: no cover - weights always cover


def plan_rings(
    rng: random.Random, n_scc_dffs: int, max_ring_size: int
) -> List[int]:
    """Split ``n_scc_dffs`` ring registers into ring sizes.

    Pure function of the passed RNG stream — callers own the seed.
    """
    sizes: List[int] = []
    remaining = n_scc_dffs
    while remaining > 0:
        size = min(remaining, rng.randint(1, max_ring_size))
        sizes.append(size)
        remaining -= size
    return sizes


class _Picker:
    """Input selection with recency bias and a global hub pool."""

    def __init__(self, rng: random.Random, spec: CorpusSpec):
        self.rng = rng
        self.spec = spec
        self.hubs: List[str] = []

    def promote(self, signal: str) -> None:
        if self.rng.random() < self.spec.fanout_hub_fraction:
            self.hubs.append(signal)

    def pick(self, pool: Sequence[str], local: bool = False) -> str:
        """One input from ``pool`` (or, unless ``local``, the hub pool).

        Ring chains pass ``local=True``: a hub may transitively read a
        ring register of the same stage, and routing it into a chain
        would fuse SCCs behind ``scc_coupling``'s back.
        """
        rng = self.rng
        if not local and self.hubs and rng.random() < self.spec.fanout_hub_bias:
            return self.hubs[rng.randrange(len(self.hubs))]
        n = len(pool)
        if n == 1:
            return pool[0]
        if rng.random() < self.spec.recency_bias:
            back = min(n - 1, int(rng.expovariate(1 / 6.0)))
            return pool[n - 1 - back]
        return pool[rng.randrange(n)]

    def pick_distinct(
        self, pool: Sequence[str], k: int, first: Optional[str] = None
    ) -> List[str]:
        """``k`` distinct inputs (NET004 filter); ``first`` is forced."""
        chosen: List[str] = [first] if first is not None else []
        attempts = 0
        while len(chosen) < k and attempts < 8 * k:
            attempts += 1
            cand = self.pick(pool)
            if cand not in chosen:
                chosen.append(cand)
        # tiny pools can exhaust the attempt budget; never emit a
        # duplicate-input gate (structural constant), emit a smaller one
        return chosen


def generate_corpus_circuit(
    spec: CorpusSpec, verify: bool = True
) -> Netlist:
    """Generate the circuit described by ``spec`` (see module docs).

    Args:
        spec: the topology description; ``spec.seed`` is the single
            source of randomness.
        verify: run the structural self-check (validate + exact counts +
            registers-on-SCC).  Disable only when the caller re-verifies
            (e.g. the fuzz harness lints every circuit anyway).

    Raises:
        NetlistError: when the spec is internally infeasible or the
            generated circuit fails its own verification.
    """
    rng = random.Random(spec.seed)
    nl = Netlist(spec.name)

    n_stages = spec.resolved_stages
    n_inputs = spec.resolved_inputs
    n_dffs = spec.n_dffs
    n_scc = spec.n_scc_dffs
    n_off = n_dffs - n_scc
    ring_sizes = plan_rings(rng, n_scc, spec.max_ring_size)
    n_chain_gates = n_scc * spec.scc_depth
    n_plain = spec.n_gates - n_chain_gates
    if n_plain < n_stages:
        raise NetlistError(
            f"spec {spec.name}: {spec.n_gates} gates cannot host "
            f"{n_chain_gates} ring-chain gates over {n_stages} stages"
        )

    # -- primary inputs, assigned to home stages ------------------------
    pis = [f"pi{i}" for i in range(n_inputs)]
    for pi in pis:
        nl.add_input(pi)
    global_pis = pis[: min(2, len(pis))]  # control-like, fan wide
    pi_home: Dict[int, List[str]] = {s: [] for s in range(n_stages)}
    for pi in pis[len(global_pis):]:
        pi_home[rng.randrange(n_stages)].append(pi)

    picker = _Picker(rng, spec)
    picker.hubs.extend(global_pis)

    # -- per-stage budgets ----------------------------------------------
    gates_per_stage = [n_plain // n_stages] * n_stages
    for i in range(n_plain % n_stages):
        gates_per_stage[i] += 1
    invs_per_stage = [spec.n_inverters // n_stages] * n_stages
    for i in range(spec.n_inverters % n_stages):
        invs_per_stage[i] += 1
    ring_stage = [rng.randrange(n_stages) for _ in ring_sizes]
    off_dff_stage = (
        [s % (n_stages - 1) for s in range(n_off)] if n_off else []
    )

    uid = 0
    boundary_signals: List[str] = []
    last_gate_list: List[str] = []
    plain_gates: List[str] = []  # non-NOT plain gates, creation order

    for stage in range(n_stages):
        entry: List[str] = global_pis + pi_home[stage] + boundary_signals
        # acyclic sources chain gates may read without joining the SCC
        safe_pool: List[str] = list(entry)

        my_rings = [
            size for size, s in zip(ring_sizes, ring_stage) if s == stage
        ]
        ring_regs: List[List[str]] = []
        for size in my_rings:
            names = []
            for _ in range(size):
                uid += 1
                names.append(f"q{uid}")
            ring_regs.append(names)
        ring_outputs = [n for names in ring_regs for n in names]

        pool: List[str] = entry + ring_outputs
        gate_list: List[str] = []
        home = pi_home[stage]
        n_here = gates_per_stage[stage]
        n_inv_left = invs_per_stage[stage]
        inv_every = max(1, n_here // n_inv_left) if n_inv_left else 0
        for gi in range(n_here):
            # the first len(home) gates each consume one home PI, which
            # is what guarantees every primary input is read (NET002)
            first = home[gi] if gi < len(home) else None
            k = 3 if rng.random() < spec.fanin3_prob else 2
            inputs = picker.pick_distinct(pool, k, first=first)
            uid += 1
            out = f"g{uid}"
            nl.add_gate(out, _gate_type(rng), inputs)
            pool.append(out)
            gate_list.append(out)
            plain_gates.append(out)
            picker.promote(out)
            if n_inv_left and inv_every and gi % inv_every == inv_every - 1:
                uid += 1
                inv = f"g{uid}"
                nl.add_gate(inv, GateType.NOT, [picker.pick(pool)])
                pool.append(inv)
                n_inv_left -= 1
        while n_inv_left:
            uid += 1
            inv = f"g{uid}"
            nl.add_gate(inv, GateType.NOT, [picker.pick(pool)])
            pool.append(inv)
            n_inv_left -= 1

        # leftover home PIs (stage had fewer gates than home PIs) are
        # absorbed post-hoc below; remember the overflow
        if len(home) > n_here:
            picker.hubs.extend(home[n_here:])

        # -- feedback rings ---------------------------------------------
        for size, names in zip(my_rings, ring_regs):
            chain_gates: List[str] = []
            chain_ends: List[str] = []
            for j in range(size):
                sig = names[j]
                for _d in range(spec.scc_depth):
                    extras: List[str] = []
                    if chain_gates and rng.random() < spec.chord_prob:
                        extras.append(
                            chain_gates[rng.randrange(len(chain_gates))]
                        )
                    if rng.random() < spec.scc_coupling and pool:
                        extras.append(picker.pick(pool))
                    extras = [e for e in extras if e != sig]
                    if not extras:
                        # safe_pool never contains chain gates or ring
                        # registers, so the pick can't collide with sig
                        extras.append(picker.pick(safe_pool, local=True))
                    uid += 1
                    out = f"g{uid}"
                    inputs = [sig] + extras
                    nl.add_gate(out, _gate_type(rng), inputs)
                    chain_gates.append(out)
                    sig = out
                chain_ends.append(sig)
            for j in range(size):
                nl.add_dff(names[(j + 1) % size], chain_ends[j])
            pool.extend(chain_ends)

        last_gate_list = gate_list or pool
        # -- boundary DFFs into the next stage ---------------------------
        boundary_signals = []
        if stage < n_stages - 1:
            source = gate_list or pool
            for s in off_dff_stage:
                if s == stage:
                    uid += 1
                    q = f"q{uid}"
                    nl.add_dff(q, picker.pick(source))
                    boundary_signals.append(q)
                    picker.promote(q)

    # -- validity filters ------------------------------------------------
    _absorb_unread_pis(nl, rng, spec)
    _absorb_dangles(nl, rng, spec, plain_gates)
    _emit_outputs(nl, rng, spec, last_gate_list)
    _observe_dead_cones(nl)

    if verify:
        _verify(nl, spec)
    return nl


def _absorb_unread_pis(
    nl: Netlist, rng: random.Random, spec: CorpusSpec
) -> None:
    """Attach every unread PI as an extra input pin somewhere (NET002)."""
    read = set()
    for cell in nl.cells():
        read.update(cell.inputs)
    unread = [pi for pi in nl.inputs if pi not in read]
    if not unread:
        return
    gates = [c.output for c in nl.cells() if not c.is_dff]
    for pi in unread:
        attached = False
        for _ in range(32):
            cell = nl.cell(gates[rng.randrange(len(gates))])
            if cell.gtype is GateType.NOT:
                continue
            if cell.fanin < spec.max_fanin and pi not in cell.inputs:
                nl.replace_cell(cell.with_inputs(cell.inputs + (pi,)))
                attached = True
                break
        if not attached:  # pragma: no cover - 32 draws over >>1 gates
            raise NetlistError(
                f"spec {spec.name}: could not absorb unread PI {pi!r}"
            )


def _absorb_dangles(
    nl: Netlist,
    rng: random.Random,
    spec: CorpusSpec,
    plain_gates: List[str],
) -> None:
    """Fold most dangling signals into later gates as extra input pins.

    Real circuits don't observe 20% of their nets; unread signals are
    reconnected as fan-in of *later-created plain gates* — strictly
    forward in creation order (no cycles) and never into a ring chain
    (no accidental SCC fusion).  Whatever can't be absorbed (created
    too late, or every candidate gate already at ``max_fanin``) stays
    dangling and becomes a primary output in :func:`_emit_outputs`.
    """
    fan = nl.fanout_map()
    dangling = [c.output for c in nl.cells() if not fan.get(c.output)]
    keep = max(spec.resolved_outputs, 1)
    if len(dangling) <= keep:
        return
    to_absorb = dangling[:-keep]
    # cell names encode creation order: g<uid>/q<uid>
    uids = [int(g[1:]) for g in plain_gates]
    for sig in to_absorb:
        lo = bisect_right(uids, int(sig[1:]))
        if lo >= len(uids):
            continue  # tail-of-circuit signal: stays a PO
        for _ in range(12):
            tgt = plain_gates[lo + rng.randrange(len(uids) - lo)]
            cell = nl.cell(tgt)
            if cell.fanin < spec.max_fanin and sig not in cell.inputs:
                nl.replace_cell(cell.with_inputs(cell.inputs + (sig,)))
                break


def _emit_outputs(
    nl: Netlist,
    rng: random.Random,
    spec: CorpusSpec,
    last_gates: List[str],
) -> None:
    """Every dangling signal becomes a PO; top up to the PO target."""
    fan = nl.fanout_map()
    po: List[str] = []
    for cell in nl.cells():  # insertion order → deterministic
        if not fan.get(cell.output):
            po.append(cell.output)
    po_set = set(po)
    want = max(spec.resolved_outputs, 1)
    attempts = 0
    while len(po_set) < want and attempts < 20 * want:
        attempts += 1
        cand = last_gates[rng.randrange(len(last_gates))]
        if cand not in po_set:
            po.append(cand)
            po_set.add(cand)
    for sig in po:
        nl.add_output(sig)


def _observe_dead_cones(nl: Netlist) -> None:
    """Add observation POs until every cell reaches a primary output.

    Dangling signals are already POs, so an unobservable region must be
    cyclic: a feedback ring whose chain outputs happen to feed only the
    ring itself (GRF002 dead logic).  Each pass computes the transitive
    fan-in cone of the POs and observes the *latest-created* dead cell —
    inside a ring every member reaches every other, so one PO resurrects
    the whole ring plus its feeders.  Ring count bounds the passes.
    """
    for _ in range(1 + sum(1 for c in nl.cells() if c.is_dff)):
        cone = set(nl.outputs)
        stack = list(nl.outputs)
        while stack:
            sig = stack.pop()
            cell = nl.driver(sig)
            if cell is not None:
                for src in cell.inputs:
                    if src not in cone:
                        cone.add(src)
                        stack.append(src)
        dead = [c.output for c in nl.cells() if c.output not in cone]
        if not dead:
            return
        dead.sort(key=lambda name: int(name[1:]))
        nl.add_output(dead[-1])
    raise NetlistError(  # pragma: no cover - pass bound is generous
        f"{nl.name}: dead-cone observation failed to converge"
    )


def _verify(nl: Netlist, spec: CorpusSpec) -> None:
    """Structural self-check: validity + exact targets."""
    nl.validate()
    stats = nl.stats()
    mismatches = []
    for label, got, want in (
        ("inputs", stats.n_inputs, spec.resolved_inputs),
        ("dffs", stats.n_dffs, spec.n_dffs),
        ("gates", stats.n_gates, spec.n_gates),
        ("inverters", stats.n_inverters, spec.n_inverters),
    ):
        if got != want:
            mismatches.append(f"{label}: got {got}, want {want}")
    if mismatches:
        raise NetlistError(
            f"generated {spec.name} missed spec: " + "; ".join(mismatches)
        )
    scc = SCCIndex(build_circuit_graph(nl, with_po_nodes=False))
    got_scc = scc.registers_on_sccs()
    if got_scc != spec.n_scc_dffs:
        raise NetlistError(
            f"generated {spec.name}: {got_scc} DFFs on SCC, "
            f"want {spec.n_scc_dffs}"
        )


def describe_netlist(nl: Netlist) -> Dict[str, object]:
    """Structural summary of a circuit (corpus or parsed ``.bench``).

    Returns a JSON-friendly dict: Table 9-style stats, combinational
    depth, SCC structure (count, registers, largest component) and the
    fanout distribution (max / mean / #signals above 16).
    """
    stats = nl.stats()
    fan = nl.fanout_map()
    fanouts = sorted(len(readers) for readers in fan.values())
    n_sig = len(fanouts)
    graph = build_circuit_graph(nl, with_po_nodes=False)
    index = SCCIndex(graph)
    sccs = index.sccs()
    depth = 0
    level: Dict[str, int] = {}
    for cell in nl.topological_comb_order():
        lvl = 1 + max(
            (level.get(s, 0) for s in cell.inputs), default=0
        )
        level[cell.output] = lvl
        if lvl > depth:
            depth = lvl
    return {
        "name": nl.name,
        "n_inputs": stats.n_inputs,
        "n_outputs": stats.n_outputs,
        "n_dffs": stats.n_dffs,
        "n_gates": stats.n_gates,
        "n_inverters": stats.n_inverters,
        "area_units": stats.area_units,
        "comb_depth": depth,
        "n_sccs": len(sccs),
        "dffs_on_scc": index.registers_on_sccs(),
        "largest_scc": max((s.size for s in sccs), default=0),
        "fanout_max": fanouts[-1] if fanouts else 0,
        "fanout_mean": (
            round(sum(fanouts) / n_sig, 3) if n_sig else 0.0
        ),
        "fanout_over_16": sum(1 for f in fanouts if f > 16),
    }
