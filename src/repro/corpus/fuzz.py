"""Differential fuzzing across the whole Merced pipeline.

The repo carries several pairs of implementations that claim agreement:

* compiled CSR kernels (Tarjan, ``Make_Set``, ``make_group``,
  ``assign_cbit``, SPFA/Jacobi retiming) vs their ``*_reference``
  twins — **bit-identical** by contract;
* the greedy drop-loop retiming solver vs the experimental min-cost-flow
  backend — *not* bit-identical, but **cut-set equivalent**: same
  unconstrained set, same covered ⊎ dropped universe, both legal, every
  covered cut actually registered;
* ``merced serve`` vs an inline :class:`~repro.core.merced.Merced` run —
  **byte-identical payloads** (the service is a transport, not a
  different compiler).

This module turns those contracts into a continuous fuzz loop over
random :class:`~repro.corpus.spec.CorpusSpec` circuits.  Any mismatch is
shrunk to a minimal failing spec by greedy knob reduction (each
candidate is regenerated and re-checked — specs, not netlists, are the
shrink unit, so reproducers stay valid as the generator evolves) and
archived as a ``.bench`` file plus a JSON sidecar with the spec and the
mismatch description.  ``scripts/fuzz_differential.py`` is the CLI
driver; ``tests/corpus/test_fuzz.py`` pins the harness itself.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import MercedConfig
from ..graphs import (
    SCCIndex,
    build_circuit_graph,
    strongly_connected_components,
    strongly_connected_components_reference,
)
from ..graphs.paths import register_weighted_edges
from ..netlist.bench import write_bench
from ..netlist.netlist import Netlist
from ..partition import assign_cbit, make_group
from ..partition.assign_cbit import assign_cbit_reference
from ..retiming.solve import solve_cut_retiming, solve_cut_retiming_reference
from .spec import CorpusSpec
from .topology import generate_corpus_circuit

__all__ = [
    "CHECKS",
    "FuzzReport",
    "Mismatch",
    "check_pipeline",
    "check_scc",
    "check_service",
    "check_solvers",
    "pipeline_fingerprint",
    "random_spec",
    "run_fuzz",
    "shrink_spec",
]

#: Check names in the order one fuzz round runs them.  ``service`` is
#: opt-in (needs a live ``merced serve`` thread).
CHECKS: Tuple[str, ...] = ("scc", "pipeline", "solver", "service")


# ---------------------------------------------------------------------------
# fingerprints and checks — each returns None (agree) or a description
# ---------------------------------------------------------------------------
def pipeline_fingerprint(
    netlist: Netlist,
    lk: int = 16,
    beta: int = 1,
    use_compiled: bool = True,
    seed: int = 1996,
) -> Dict[str, object]:
    """Canonical observable state of one make_group → assign_cbit →
    solve_cut_retiming run.

    Every field is order-normalized, so two fingerprints compare with
    ``==`` key by key.  The compiled and reference paths must produce
    *identical* fingerprints — that is the bit-identity contract the
    kernel equivalence tests and the fuzzer both enforce.
    """
    graph = build_circuit_graph(netlist, with_po_nodes=False)
    scc_index = SCCIndex(graph)
    config = MercedConfig(seed=seed, lk=lk, beta=beta, min_visit=5)
    group = make_group(
        graph, scc_index, config, strict=False, use_compiled=use_compiled
    )
    if use_compiled:
        merged = assign_cbit(group.partition)
        cuts = merged.partition.cut_nets()
        solution = solve_cut_retiming(graph, cuts)
    else:
        merged = assign_cbit_reference(group.partition)
        cuts = merged.partition.cut_nets()
        solution = solve_cut_retiming_reference(graph, cuts)
    return {
        "n_splits": group.n_splits,
        "cut": sorted(group.cut_state.cut),
        "forced": sorted(group.cut_state.forced),
        "budget_exhaustions": group.cut_state.budget_exhaustions,
        "infeasible": [
            tuple(sorted(c.nodes)) for c in group.infeasible_clusters
        ],
        "clusters": [
            (c.cluster_id, tuple(sorted(c.nodes)), tuple(sorted(c.input_nets)))
            for c in group.partition.clusters
        ],
        "merged": [
            (c.cluster_id, tuple(sorted(c.nodes)), tuple(sorted(c.input_nets)))
            for c in merged.partition.clusters
        ],
        "cost_dff": merged.cost_dff,
        "n_merges": merged.n_merges,
        "cut_nets": cuts,
        "rho": solution.retiming.rho,
        "covered": sorted(solution.covered_cuts),
        "dropped": sorted(solution.dropped_cuts),
        "unconstrained": sorted(solution.unconstrained_cuts),
        "iterations": solution.iterations,
    }


def check_scc(netlist: Netlist) -> Optional[str]:
    """Compiled Tarjan vs string-keyed reference: same comps, same order."""
    graph = build_circuit_graph(netlist, with_po_nodes=False)
    compiled = strongly_connected_components(graph)
    reference = strongly_connected_components_reference(graph)
    if compiled != reference:
        return (
            f"SCC divergence: compiled {len(compiled)} comps, "
            f"reference {len(reference)} comps"
        )
    return None


def check_pipeline(
    netlist: Netlist, lk: int = 16, beta: int = 1
) -> Optional[str]:
    """Compiled vs reference full pipeline: bit-identical fingerprints."""
    compiled = pipeline_fingerprint(netlist, lk, beta, use_compiled=True)
    reference = pipeline_fingerprint(netlist, lk, beta, use_compiled=False)
    for key in compiled:
        if compiled[key] != reference[key]:
            return f"pipeline field {key!r} diverges"
    return None


def check_solvers(
    netlist: Netlist, lk: int = 16, beta: int = 1
) -> Optional[str]:
    """Greedy SPFA drop-loop vs min-cost-flow: cut-set equivalence.

    The mcf backend is allowed to drop a *different* set of cuts (it
    minimises total requirement shortfall; the greedy loop drops in
    deficit-certificate order), so this is deliberately weaker than
    bit-identity:

    * each solver's drop set must satisfy the legal-minimal-cover
      contract of :func:`repro.retiming.verify.verify_drop_set`
      (legal lags, three-way split partitions the universe, every
      covered cut registered on all its requirement edges; the mcf
      side additionally proves minimality — no dropped cut is already
      fully registered);
    * the unconstrained set (cuts generating no constraint) is solver
      independent and must match exactly.
    """
    from ..retiming.verify import verify_drop_set

    graph = build_circuit_graph(netlist, with_po_nodes=False)
    scc_index = SCCIndex(graph)
    config = MercedConfig(seed=1996, lk=lk, beta=beta, min_visit=5)
    group = make_group(graph, scc_index, config, strict=False)
    cuts = assign_cbit(group.partition).partition.cut_nets()
    edges = register_weighted_edges(graph)

    greedy = solve_cut_retiming(graph, cuts, edges=edges)
    mcf = solve_cut_retiming(graph, cuts, edges=edges, solver="mcf")

    for label, sol, minimal in (
        ("greedy", greedy, False),
        ("mcf", mcf, True),
    ):
        problem = verify_drop_set(
            graph, cuts, sol, edges=edges, minimal=minimal
        )
        if problem is not None:
            return f"{label}: {problem}"
    if sorted(greedy.unconstrained_cuts) != sorted(mcf.unconstrained_cuts):
        return "unconstrained cut sets differ between solvers"
    return None


def check_service(
    netlist: Netlist,
    client,
    lk: int = 16,
    beta: int = 1,
    seed: int = 1996,
) -> Optional[str]:
    """Service vs inline ``Merced.run``: byte-identical payload JSON.

    The agreement contract covers *failures* too: a circuit the strict
    pipeline rejects (e.g. an SCC-welded cluster over ``l_k``) must be
    rejected identically — inline raise and degraded service row with
    the same exception type — not compiled by one side only.
    """
    from ..core.merced import Merced
    from ..errors import ReproError
    from ..exec.task import merced_payload

    config = MercedConfig(seed=seed, lk=lk, beta=beta)
    inline = None
    inline_error: Optional[str] = None
    try:
        inline = merced_payload(Merced(config).run(netlist.copy()))
    except ReproError as exc:
        inline_error = type(exc).__name__
    row = client.compile_point(
        circuit=netlist.name,
        bench=write_bench(netlist),
        lk=lk,
        beta=beta,
        seed=seed,
    )
    if not row.get("ok"):
        if inline_error is None:
            return (
                f"service degraded ({row.get('error_type')!r}) but the "
                "inline run compiled"
            )
        if row.get("error_type") != inline_error:
            return (
                f"divergent failures: inline {inline_error}, "
                f"service {row.get('error_type')!r}"
            )
        return None
    if inline_error is not None:
        return f"inline run raised {inline_error} but the service compiled"
    a = json.dumps(inline, sort_keys=True)
    b = json.dumps(row["value"], sort_keys=True)
    if a != b:
        keys = [
            k
            for k in inline
            if json.dumps(inline[k]) != json.dumps(row["value"].get(k))
        ]
        return f"service payload differs from inline run: fields {keys}"
    return None


# ---------------------------------------------------------------------------
# random specs and shrinking
# ---------------------------------------------------------------------------
def random_spec(
    rng: random.Random, round_index: int, max_gates: int = 640
) -> CorpusSpec:
    """Draw one fuzz spec; every knob region gets regular traffic."""
    n_gates = rng.randrange(48, max(64, max_gates))
    return CorpusSpec(
        name=f"fuzz-{round_index}",
        seed=rng.randrange(1, 2**31),
        n_gates=n_gates,
        register_density=rng.uniform(0.02, 0.2),
        scc_register_fraction=rng.choice([0.0, 0.2, 0.4, 0.6]),
        scc_depth=rng.randrange(1, 5),
        max_ring_size=rng.randrange(1, 7),
        chord_prob=rng.choice([0.0, 0.15, 0.4]),
        scc_coupling=rng.choice([0.0, 0.1, 0.3]),
        inverter_fraction=rng.uniform(0.0, 0.15),
        fanout_hub_fraction=rng.uniform(0.0, 0.02),
        fanout_hub_bias=rng.uniform(0.0, 0.35),
        recency_bias=rng.uniform(0.3, 0.9),
        fanin3_prob=rng.uniform(0.0, 0.4),
        n_stages=rng.randrange(2, 7),
    )


#: Knob-reduction moves tried (in order) by :func:`shrink_spec`.  Each
#: maps a spec to a strictly "smaller" candidate, or None when already
#: minimal along that axis.
_SHRINK_MOVES: Sequence[Callable[[CorpusSpec], Optional[CorpusSpec]]] = (
    lambda s: s.with_(n_gates=s.n_gates // 2) if s.n_gates >= 96 else None,
    lambda s: s.with_(n_gates=s.n_gates - 16) if s.n_gates >= 64 else None,
    lambda s: s.with_(scc_coupling=0.0) if s.scc_coupling else None,
    lambda s: s.with_(chord_prob=0.0) if s.chord_prob else None,
    lambda s: s.with_(fanout_hub_bias=0.0) if s.fanout_hub_bias else None,
    lambda s: s.with_(scc_register_fraction=0.0)
    if s.scc_register_fraction
    else None,
    lambda s: s.with_(scc_depth=1) if s.scc_depth > 1 else None,
    lambda s: s.with_(max_ring_size=s.max_ring_size - 1)
    if s.max_ring_size > 1
    else None,
    lambda s: s.with_(inverter_fraction=0.0) if s.inverter_fraction else None,
    lambda s: s.with_(register_density=s.register_density / 2)
    if s.register_density > 0.02
    else None,
    lambda s: s.with_(n_stages=2)
    if (s.n_stages or s.resolved_stages) > 2
    else None,
    lambda s: s.with_(fanin3_prob=0.0) if s.fanin3_prob else None,
    lambda s: s.with_(recency_bias=0.0) if s.recency_bias else None,
)


def shrink_spec(
    spec: CorpusSpec,
    still_fails: Callable[[CorpusSpec], bool],
    max_attempts: int = 64,
) -> CorpusSpec:
    """Greedy spec-level shrink: smallest spec that still fails.

    Repeatedly tries each reduction move; a candidate is kept when the
    check still fails on the regenerated circuit.  Stops at a fixpoint
    or after ``max_attempts`` regenerations (shrinking is best-effort —
    the unshrunk reproducer is still a reproducer).
    """
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for move in _SHRINK_MOVES:
            candidate = move(spec)
            if candidate is None:
                continue
            attempts += 1
            try:
                failed = still_fails(candidate)
            except Exception:
                failed = False  # reductions must keep the circuit valid
            if failed:
                spec = candidate
                progress = True
            if attempts >= max_attempts:
                break
    return spec


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Mismatch:
    """One confirmed disagreement, already shrunk and archived."""

    check: str
    detail: str
    spec: CorpusSpec
    bench_path: Optional[str] = None
    spec_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of a :func:`run_fuzz` session."""

    rounds: int = 0
    checks_run: Dict[str, int] = field(default_factory=dict)
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "rounds": self.rounds,
            "checks_run": dict(sorted(self.checks_run.items())),
            "ok": self.ok,
            "mismatches": [
                {
                    "check": m.check,
                    "detail": m.detail,
                    "spec": m.spec.as_dict(),
                    "bench_path": m.bench_path,
                    "spec_path": m.spec_path,
                }
                for m in self.mismatches
            ],
        }


def _archive(
    archive_dir: Path, check: str, spec: CorpusSpec, detail: str
) -> Tuple[str, str]:
    """Write the shrunk reproducer: ``.bench`` + JSON sidecar."""
    archive_dir.mkdir(parents=True, exist_ok=True)
    stem = f"repro-{check}-s{spec.seed}-g{spec.n_gates}"
    bench_path = archive_dir / f"{stem}.bench"
    spec_path = archive_dir / f"{stem}.json"
    netlist = generate_corpus_circuit(spec)
    bench_path.write_text(write_bench(netlist))
    spec_path.write_text(
        json.dumps(
            {"check": check, "detail": detail, "spec": spec.as_dict()},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return str(bench_path), str(spec_path)


#: solver differential is dense (O(n·m) cycle cancelling) — cap its
#: circuit size so a fuzz session stays interactive.
_SOLVER_CHECK_MAX_GATES = 384


def run_fuzz(
    rounds: int,
    seed: int,
    archive_dir,
    lk: int = 16,
    beta: int = 1,
    max_gates: int = 640,
    with_service: bool = False,
    checks: Optional[Sequence[str]] = None,
    log: Optional[Callable[[str], None]] = None,
    solver_max_gates: Optional[int] = None,
) -> FuzzReport:
    """Run ``rounds`` differential fuzz rounds; archive every mismatch.

    Each round draws one :func:`random_spec`, generates the circuit, and
    runs the enabled checks.  A failing check is re-confirmed through
    :func:`shrink_spec` (which regenerates from candidate specs), then
    archived under ``archive_dir``.  Deterministic: same ``seed`` and
    ``rounds`` replay the same specs.

    Args:
        rounds: number of random circuits to draw.
        seed: session RNG seed (spec seeds derive from it).
        archive_dir: directory for ``.bench``/``.json`` reproducers.
        lk: cut budget for the partition stages.
        beta: redundancy factor.
        max_gates: upper bound for drawn circuit sizes.
        with_service: also run the service-vs-inline check (boots a
            ``merced serve`` thread for the session).
        checks: restrict to a subset of :data:`CHECKS`.
        log: optional progress sink (e.g. ``print``).
        solver_max_gates: raise (or lower) the circuit-size cap on the
            dense greedy-vs-mcf solver differential; ``None`` keeps
            :data:`_SOLVER_CHECK_MAX_GATES`.  Nightly runs raise it to
            cover the mcf backend well above the interactive cap.
    """
    solver_cap = (
        _SOLVER_CHECK_MAX_GATES
        if solver_max_gates is None
        else solver_max_gates
    )
    enabled = list(checks) if checks is not None else list(CHECKS)
    unknown = set(enabled) - set(CHECKS)
    if unknown:
        raise ValueError(f"unknown fuzz check(s): {sorted(unknown)}")
    if not with_service and "service" in enabled:
        enabled.remove("service")

    archive_dir = Path(archive_dir)
    rng = random.Random(seed)
    report = FuzzReport()
    say = log or (lambda _msg: None)

    handle = None
    client = None
    try:
        if "service" in enabled:
            import tempfile

            from ..service import ServiceClient, ServiceConfig, ServiceThread

            handle = ServiceThread(
                ServiceConfig(
                    host="127.0.0.1",
                    port=0,
                    workers=2,
                    queue_capacity=16,
                    timeout=120.0,
                    cache_dir=tempfile.mkdtemp(prefix="fuzz-cache-"),
                )
            ).start()
            client = ServiceClient(port=handle.port)
            client.wait_ready()

        for i in range(rounds):
            spec = random_spec(rng, i, max_gates=max_gates)
            netlist = generate_corpus_circuit(spec)
            report.rounds += 1
            for check in enabled:
                if check == "solver" and spec.n_gates > solver_cap:
                    continue
                detail = _run_check(check, netlist, client, lk, beta)
                report.checks_run[check] = (
                    report.checks_run.get(check, 0) + 1
                )
                if detail is None:
                    continue
                say(
                    f"round {i}: {check} mismatch on {spec.name} "
                    f"(seed {spec.seed}, {spec.n_gates} gates) — shrinking"
                )

                def still_fails(candidate: CorpusSpec) -> bool:
                    nl = generate_corpus_circuit(candidate)
                    return _run_check(check, nl, client, lk, beta) is not None

                shrunk = shrink_spec(spec, still_fails)
                final_detail = (
                    _run_check(
                        check, generate_corpus_circuit(shrunk), client, lk, beta
                    )
                    or detail
                )
                bench_path, spec_path = _archive(
                    archive_dir, check, shrunk, final_detail
                )
                say(f"  archived {bench_path}")
                report.mismatches.append(
                    Mismatch(
                        check=check,
                        detail=final_detail,
                        spec=shrunk,
                        bench_path=bench_path,
                        spec_path=spec_path,
                    )
                )
            if log and (i + 1) % 10 == 0:
                say(f"{i + 1}/{rounds} rounds, {len(report.mismatches)} mismatches")
    finally:
        if handle is not None:
            handle.stop()
    return report


def _run_check(
    check: str, netlist: Netlist, client, lk: int, beta: int
) -> Optional[str]:
    if check == "scc":
        return check_scc(netlist)
    if check == "pipeline":
        return check_pipeline(netlist, lk, beta)
    if check == "solver":
        return check_solvers(netlist, lk, beta)
    if check == "service":
        return check_service(netlist, client, lk, beta)
    raise ValueError(f"unknown fuzz check {check!r}")
