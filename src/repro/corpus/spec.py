"""Corpus circuit specification: every generator knob in one record.

A :class:`CorpusSpec` fully determines one synthetic circuit — the
generator in :mod:`repro.corpus.topology` consumes **one**
``random.Random(spec.seed)`` stream and nothing else, so the same spec
produces byte-identical ``.bench`` output on every platform and Python
version (the stdlib Mersenne Twister is platform-independent).

Unlike :class:`~repro.circuits.profiles.CircuitProfile` (which pins the
paper's Table 9 statistics *exactly*), a spec constrains the circuit's
**shape**: how big, how register-dense, how deep its feedback SCCs are,
and how skewed its fanout distribution is.  Targets are honoured
exactly where the algorithms are sensitive to them (gate, inverter and
register counts; registers-on-SCC) and distributionally elsewhere
(fanout, stage balance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from ..errors import NetlistError

__all__ = ["CorpusSpec"]


@dataclass(frozen=True)
class CorpusSpec:
    """One corpus circuit, fully determined by ``(knobs, seed)``.

    Attributes:
        name: netlist name (also the registry key for named specs).
        seed: the single RNG seed; all randomness in the generator flows
            from ``random.Random(seed)``, threaded explicitly through
            every helper (KRN002).
        n_gates: non-inverter combinational gate count — hit exactly.
        register_density: DFFs per gate; ``n_dffs`` rounds from it.
        scc_register_fraction: fraction of DFFs placed on feedback
            rings (the rest are feed-forward pipeline registers).
        scc_depth: combinational gates per ring edge — the logic depth
            *inside* each SCC, so SCC node count is
            ``ring_size × (1 + scc_depth)``.
        max_ring_size: registers per feedback ring (SCC) upper bound.
        chord_prob: probability a ring-chain gate also reads an earlier
            chain gate of the *same* ring — adds shortcut cycles with
            fewer registers, exercising the solver's drop path.
        scc_coupling: probability a ring-chain gate reads surrounding
            same-stage logic, letting an SCC absorb neighbouring gates
            (and occasionally fuse with another ring) the way real
            control loops do.  Keep 0 for circuits that must retime in
            one feasible round (e.g. the trend bench).
        inverter_fraction: NOT gates as a fraction of ``n_gates``.
        fanout_hub_fraction: fraction of signals promoted to "hubs".
        fanout_hub_bias: probability a gate input is drawn from the hub
            pool instead of locally — together with the fraction this
            shapes the fanout tail (0 → near-uniform, 0.3 with few hubs
            → strongly heavy-tailed, like clock-enable/control nets).
        recency_bias: probability a non-hub input pick walks back
            geometrically from the newest signal (local clustering).
        fanin3_prob: probability a gate gets 3 base inputs instead of 2.
        max_fanin: hard cap on gate fan-in, including post-hoc
            absorption of unread primary inputs.  Must stay well below
            the default ``l_k`` so BUD001 can never fire.
        n_inputs: primary inputs; default scales as ``~4·log2(gates)``.
        n_outputs: minimum primary outputs; dangling signals become
            additional POs (a NET001/GRF002 validity filter).
        n_stages: pipeline depth; default scales with circuit size.
    """

    name: str
    seed: int
    n_gates: int
    register_density: float = 0.05
    scc_register_fraction: float = 0.25
    scc_depth: int = 2
    max_ring_size: int = 4
    chord_prob: float = 0.0
    scc_coupling: float = 0.0
    inverter_fraction: float = 0.08
    fanout_hub_fraction: float = 0.01
    fanout_hub_bias: float = 0.10
    recency_bias: float = 0.6
    fanin3_prob: float = 0.15
    max_fanin: int = 5
    n_inputs: Optional[int] = None
    n_outputs: Optional[int] = None
    n_stages: Optional[int] = None

    def __post_init__(self):
        if self.n_gates < 16:
            raise NetlistError("CorpusSpec needs n_gates >= 16")
        if self.n_gates > 1_000_000:
            raise NetlistError("CorpusSpec caps n_gates at 1e6")
        for knob in (
            "register_density",
            "scc_register_fraction",
            "chord_prob",
            "scc_coupling",
            "inverter_fraction",
            "fanout_hub_fraction",
            "fanout_hub_bias",
            "recency_bias",
            "fanin3_prob",
        ):
            v = getattr(self, knob)
            if not 0.0 <= v <= 1.0:
                raise NetlistError(f"CorpusSpec.{knob}={v!r} not in [0, 1]")
        if self.register_density > 0.5:
            raise NetlistError("register_density above 0.5 is not a circuit")
        if not 1 <= self.scc_depth <= 8:
            raise NetlistError("scc_depth must be in 1..8")
        if not 1 <= self.max_ring_size <= 16:
            raise NetlistError("max_ring_size must be in 1..16")
        if not 3 <= self.max_fanin <= 6:
            raise NetlistError("max_fanin must be in 3..6")

    # -- derived counts -------------------------------------------------
    @property
    def n_dffs(self) -> int:
        """Total registers implied by ``register_density``."""
        return max(1, round(self.n_gates * self.register_density))

    @property
    def n_scc_dffs(self) -> int:
        """Registers on feedback rings (never exceeds the chain budget)."""
        want = round(self.n_dffs * self.scc_register_fraction)
        # every ring register owns one chain edge of scc_depth gates;
        # chains must fit inside the gate budget with room for plain
        # gates in every stage.
        cap = max(0, (self.n_gates - 2 * self.resolved_stages))
        return min(want, cap // max(1, self.scc_depth))

    @property
    def n_inverters(self) -> int:
        return round(self.n_gates * self.inverter_fraction)

    @property
    def resolved_inputs(self) -> int:
        if self.n_inputs is not None:
            return self.n_inputs
        return max(4, min(96, round(4 * math.log2(self.n_gates))))

    @property
    def resolved_outputs(self) -> int:
        if self.n_outputs is not None:
            return self.n_outputs
        return max(2, min(128, self.n_gates // 64))

    @property
    def resolved_stages(self) -> int:
        if self.n_stages is not None:
            return max(2, self.n_stages)
        return max(2, min(12, 2 + self.n_gates // 2000))

    # -- serialization --------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dict of the *explicit* fields (manifest form)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CorpusSpec":
        """Inverse of :meth:`as_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise NetlistError(
                f"unknown CorpusSpec field(s): {sorted(unknown)}"
            )
        return cls(**payload)

    def with_(self, **overrides) -> "CorpusSpec":
        """A copy with ``overrides`` applied (shrinking/fuzz helper)."""
        return replace(self, **overrides)
