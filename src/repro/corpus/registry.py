"""Named corpus specs: the committed seed corpus and the trend circuits.

Two registries, both pure data:

* :data:`SEED_CORPUS_SPECS` — the small, structurally diverse corpus
  committed under ``benchmarks/corpus/`` (written by ``merced corpus
  seed``, drift-guarded by ``tests/corpus/test_registry.py``: the
  committed ``.bench`` bytes must equal a fresh generation).
* :data:`TREND_SPECS` — the large circuits the trend benchmark
  (``scripts/bench_trend.py``) runs at claimed scale.  These are *not*
  committed as ``.bench`` files (a 50k-gate netlist is megabytes);
  they are regenerated deterministically from the spec on every run.

``load_corpus_circuit`` resolves either kind by name, mirroring
:func:`repro.circuits.library.load_circuit` (cached, defensive copy).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from ..netlist.netlist import Netlist
from .spec import CorpusSpec
from .topology import generate_corpus_circuit

__all__ = [
    "SEED_CORPUS_SPECS",
    "TREND_SPECS",
    "corpus_spec_names",
    "spec_by_name",
    "load_corpus_circuit",
]

#: The committed seed corpus: small enough to live in git, shaped to
#: cover the structural axes the knobs expose (feed-forward, deep SCCs,
#: shortcut chords, coupled SCCs, heavy-tail fanout, register-dense).
SEED_CORPUS_SPECS: Dict[str, CorpusSpec] = {
    s.name: s
    for s in (
        CorpusSpec(
            name="corpus-ff400",
            seed=1101,
            n_gates=400,
            register_density=0.05,
            scc_register_fraction=0.0,
        ),
        CorpusSpec(
            name="corpus-ring600",
            seed=1102,
            n_gates=600,
            register_density=0.06,
            scc_register_fraction=0.5,
            scc_depth=3,
            max_ring_size=5,
        ),
        CorpusSpec(
            name="corpus-chord800",
            seed=1103,
            n_gates=800,
            register_density=0.05,
            scc_register_fraction=0.4,
            scc_depth=2,
            chord_prob=0.35,
        ),
        CorpusSpec(
            name="corpus-coupled1k",
            seed=1104,
            n_gates=1000,
            register_density=0.05,
            scc_register_fraction=0.3,
            scc_depth=2,
            scc_coupling=0.25,
            chord_prob=0.1,
        ),
        CorpusSpec(
            name="corpus-hub1k",
            seed=1105,
            n_gates=1000,
            register_density=0.04,
            scc_register_fraction=0.2,
            fanout_hub_fraction=0.004,
            fanout_hub_bias=0.35,
        ),
        CorpusSpec(
            name="corpus-dense2k",
            seed=1106,
            n_gates=2000,
            register_density=0.12,
            scc_register_fraction=0.25,
            scc_depth=1,
            n_stages=8,
        ),
    )
}

#: Large circuits for the trend benchmark — regenerated, never committed.
TREND_SPECS: Dict[str, CorpusSpec] = {
    s.name: s
    for s in (
        CorpusSpec(
            name="corpus-50k",
            seed=50001,
            n_gates=50_000,
            register_density=0.02,
            scc_register_fraction=0.10,
            scc_depth=2,
            max_ring_size=4,
            n_stages=10,
        ),
        CorpusSpec(
            name="corpus-200k",
            seed=200001,
            n_gates=200_000,
            register_density=0.02,
            scc_register_fraction=0.05,
            scc_depth=2,
            max_ring_size=4,
            n_stages=12,
        ),
    )
}


def corpus_spec_names() -> List[str]:
    """All names :func:`load_corpus_circuit` accepts (seed + trend)."""
    return list(SEED_CORPUS_SPECS) + list(TREND_SPECS)


def spec_by_name(name: str) -> CorpusSpec:
    """Look up a registered spec; raises ``KeyError`` with suggestions."""
    spec = SEED_CORPUS_SPECS.get(name) or TREND_SPECS.get(name)
    if spec is None:
        known = ", ".join(corpus_spec_names())
        raise KeyError(f"unknown corpus spec {name!r}; known: {known}")
    return spec


@lru_cache(maxsize=4)
def _cached(name: str) -> Netlist:
    return generate_corpus_circuit(spec_by_name(name))


def load_corpus_circuit(name: str) -> Netlist:
    """Generate (cached) a registered corpus circuit by name.

    A defensive copy is returned so callers may mutate freely, same
    contract as :func:`repro.circuits.library.load_circuit`.
    """
    return _cached(name).copy()
