"""Self-test through the *emitted* BIST netlist (gate-level validation).

:mod:`repro.ppet.session` grades faults behaviourally (extracted CUT +
ideal LFSR/MISR).  This module closes the loop at the hardware level: it
simulates the actual inserted test structures —
:func:`repro.cbit.insert.insert_test_hardware`'s netlist — clock by clock
in test mode, reads the per-CBIT signatures out of the register states,
and grades faults by injecting them into the gate-level simulation.  A
fault is detected when any CBIT signature differs from the fault-free run.

This is the "does the silicon we emit actually catch the fault?" check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..cbit.insert import BISTCircuit, SCAN_EN, SCAN_IN, TEST_MODE
from ..errors import SimulationError
from ..faults.model import StuckAtFault
from ..perf import count as perf_count
from ..perf import stage as perf_stage
from ..sim.bitparallel import WORD_BITS, block_ones, chunked, fault_block_masks
from ..sim.seqsim import SequentialSimulator

__all__ = [
    "StructuralSignatures",
    "StructuralSelfTest",
    "run_structural_selftest",
    "run_structural_pipes",
]


@dataclass(frozen=True)
class StructuralSignatures:
    """Per-CBIT signatures after a structural test-mode run."""

    per_chain: Tuple[Tuple[int, int], ...]  # (cluster id, packed signature)

    def as_dict(self) -> Dict[int, int]:
        return dict(self.per_chain)

    def differs_from(self, other: "StructuralSignatures") -> List[int]:
        """Chain ids whose signature differs."""
        mine, theirs = self.as_dict(), other.as_dict()
        return [cid for cid, sig in mine.items() if sig != theirs.get(cid)]


def _signatures(
    bist: BISTCircuit, state: Mapping[str, int], lane: int = 0
) -> StructuralSignatures:
    """Read the per-CBIT signatures out of lane ``lane`` of a state map."""
    per_chain: List[Tuple[int, int]] = []
    for cid, chain in sorted(bist.cbit_chains.items()):
        sig = 0
        for i, reg in enumerate(chain):
            if (state.get(reg, 0) >> lane) & 1:
                sig |= 1 << i
        per_chain.append((cid, sig))
    return StructuralSignatures(tuple(per_chain))


@dataclass
class StructuralSelfTest:
    """Outcome of :func:`run_structural_selftest`."""

    golden: StructuralSignatures
    detected: Set[StuckAtFault]
    undetected: Set[StuckAtFault]
    n_cycles: int

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def run_structural_selftest(
    bist: BISTCircuit,
    n_cycles: int,
    faults: Sequence[StuckAtFault] = (),
    pi_values: Optional[Mapping[str, int]] = None,
    seed_state: int = 0,
) -> StructuralSelfTest:
    """Clock the emitted netlist in test mode and grade ``faults``.

    Args:
        bist: output of :func:`repro.cbit.insert.insert_test_hardware`.
        n_cycles: test-mode clocks to apply (2^widest-CBIT covers every
            chain's full pattern space).
        faults: stuck-at faults on signals of the BIST netlist (original
            signal names are preserved, so original-circuit fault lists
            apply directly).
        pi_values: values held on the functional primary inputs during
            self-test (all-0 by default; in full in-situ BIST the PI cells
            inserted with ``include_primary_inputs`` drive them instead).

    Returns:
        A :class:`StructuralSelfTest` with the fault-free signatures and
        the detected/undetected split.
    """
    if n_cycles < 1:
        raise SimulationError("n_cycles must be positive")
    nl = bist.netlist
    base = {pi: 0 for pi in nl.inputs}
    # dual-mode netlists: free-running self-test = every chain in PSA role
    for pi in nl.inputs:
        if pi.startswith("psa_en_"):
            base[pi] = 1
    if pi_values:
        base.update(pi_values)
    base[TEST_MODE] = 1
    if bist.has_scan:
        base[SCAN_EN] = 0
        base[SCAN_IN] = 0

    def run_lanes(
        n_lanes: int, mask_faults: Optional[Dict[str, tuple]]
    ) -> Dict[str, int]:
        """Clock ``n_lanes`` independent machines at once; returns state."""
        ones = block_ones(1, n_lanes)
        sim = SequentialSimulator(nl)
        sim.reset(
            {
                q: ((seed_state >> i) & 1) * ones
                for i, q in enumerate(bist.chain_order)
            }
        )
        drive = {pi: v * ones for pi, v in base.items()}
        for _ in range(n_cycles):
            sim.step(drive, n_patterns=n_lanes, faults=mask_faults)
        return sim.state

    for fault in faults:
        if not nl.has_signal(fault.signal):
            raise SimulationError(
                f"fault site {fault.signal!r} not in the BIST netlist"
            )
    detected: Set[StuckAtFault] = set()
    undetected: Set[StuckAtFault] = set()
    with perf_stage("structural_selftest"):
        golden = _signatures(bist, run_lanes(1, None))
        # one sequential run grades up to WORD_BITS faults: fault j lives
        # in bit-lane j of every signal word
        for batch in chunked(faults, WORD_BITS):
            state = run_lanes(len(batch), fault_block_masks(batch, 1))
            for j, fault in enumerate(batch):
                sigs = _signatures(bist, state, lane=j)
                if sigs.differs_from(golden):
                    detected.add(fault)
                else:
                    undetected.add(fault)
    perf_count("selftest_cycles", n_cycles * (1 + len(faults)))
    perf_count("selftest_runs", 1 + (len(faults) + WORD_BITS - 1) // WORD_BITS)
    return StructuralSelfTest(
        golden=golden,
        detected=detected,
        undetected=undetected,
        n_cycles=n_cycles,
    )


def run_structural_pipes(
    bist: BISTCircuit,
    schedule,
    faults: Sequence[StuckAtFault] = (),
    cycles_per_pipe: Optional[int] = None,
    pi_values: Optional[Mapping[str, int]] = None,
    seed_state: int = 0b1011011011011011,
) -> StructuralSelfTest:
    """Run the paper's test pipes through the emitted dual-mode netlist.

    Requires a BIST netlist built with ``dual_mode_controls=True``.  For
    each pipe of ``schedule`` (a :class:`repro.ppet.schedule.TestSchedule`)
    the TPG chains' ``psa_en`` inputs are driven 0 (pure LFSR generation)
    and all others 1 (signature compaction), the machine is clocked for
    ``2^(widest active chain)`` cycles (or ``cycles_per_pipe``), and the
    PSA signatures are collected.  A fault is detected when any PSA-role
    signature differs from the fault-free run in any pipe.
    """
    nl = bist.netlist
    chain_ids = sorted(bist.cbit_chains)
    psa_pins = {cid: f"psa_en_{cid}" for cid in chain_ids}
    for pin in psa_pins.values():
        if pin not in nl.inputs:
            raise SimulationError(
                "BIST netlist lacks dual-mode controls; rebuild with "
                "insert_test_hardware(..., dual_mode_controls=True)"
            )

    base = {pi: 0 for pi in nl.inputs}
    if pi_values:
        base.update(pi_values)
    base[TEST_MODE] = 1
    if bist.has_scan:
        base[SCAN_EN] = 0
        base[SCAN_IN] = 0

    def pipe_cycles(pipe) -> int:
        widest = max(
            (
                len(bist.cbit_chains[c])
                for c in pipe.tested_clusters
                if c in bist.cbit_chains
            ),
            default=1,
        )
        return cycles_per_pipe or (1 << widest)

    def run_lanes(
        n_lanes: int, mask_faults: Optional[Dict[str, tuple]]
    ) -> List[List[Tuple[int, Tuple[Tuple[int, int], ...]]]]:
        """Observations per lane: ``n_lanes`` machines share each pass."""
        ones = block_ones(1, n_lanes)
        observations: List[List[Tuple[int, Tuple[Tuple[int, int], ...]]]] = [
            [] for _ in range(n_lanes)
        ]
        for pipe in schedule.pipes:
            sim = SequentialSimulator(nl)
            sim.reset(
                {
                    q: ((seed_state >> i) & 1) * ones
                    for i, q in enumerate(bist.chain_order)
                }
            )
            drive = {pi: v * ones for pi, v in base.items()}
            for cid in chain_ids:
                tpg = cid in pipe.tpg_clusters
                drive[psa_pins[cid]] = 0 if tpg else ones
            for _ in range(pipe_cycles(pipe)):
                sim.step(drive, n_patterns=n_lanes, faults=mask_faults)
            for lane in range(n_lanes):
                sigs = _signatures(bist, sim.state, lane=lane).as_dict()
                observed = tuple(
                    (cid, sigs[cid])
                    for cid in chain_ids
                    if cid in pipe.psa_clusters
                    or (
                        bist.cbit_chains.get(cid)
                        and cid not in pipe.tpg_clusters
                    )
                )
                observations[lane].append((pipe.index, observed))
        return observations

    for fault in faults:
        if not nl.has_signal(fault.signal):
            raise SimulationError(
                f"fault site {fault.signal!r} not in the BIST netlist"
            )
    detected: Set[StuckAtFault] = set()
    undetected: Set[StuckAtFault] = set()
    total_cycles = sum(pipe_cycles(pipe) for pipe in schedule.pipes)
    with perf_stage("structural_pipes"):
        golden = run_lanes(1, None)[0]
        for batch in chunked(faults, WORD_BITS):
            lanes = run_lanes(len(batch), fault_block_masks(batch, 1))
            for j, fault in enumerate(batch):
                if lanes[j] != golden:
                    detected.add(fault)
                else:
                    undetected.add(fault)
    perf_count("selftest_cycles", total_cycles * (1 + len(faults)))
    perf_count(
        "selftest_runs", 1 + (len(faults) + WORD_BITS - 1) // WORD_BITS
    )
    golden_last = dict(golden[-1][1]) if golden else {}
    return StructuralSelfTest(
        golden=StructuralSignatures(tuple(sorted(golden_last.items()))),
        detected=detected,
        undetected=undetected,
        n_cycles=total_cycles,
    )
