"""PPET: pattern spaces, signatures, scan, test-pipe schedule, sessions."""

from .patterns import (
    MAX_EXHAUSTIVE_INPUTS,
    exhaustive_words,
    is_exhaustive,
    lfsr_order_words,
)
from .signature import SignatureVerdict, compact_signature, response_words_to_stream
from .scan import ScanChain, build_scan_chain
from .schedule import TestPipe, TestSchedule, observer_map, schedule_pipes
from .random_test import (
    DetectabilityProfile,
    detectability_profile,
    expected_random_test_length,
    fault_detectability,
    random_coverage_curve,
)
from .session import CUTResult, PPETSession, SessionReport, extract_cut
from .structural import (
    StructuralSelfTest,
    StructuralSignatures,
    run_structural_pipes,
    run_structural_selftest,
)

__all__ = [
    "MAX_EXHAUSTIVE_INPUTS",
    "exhaustive_words",
    "is_exhaustive",
    "lfsr_order_words",
    "SignatureVerdict",
    "compact_signature",
    "response_words_to_stream",
    "ScanChain",
    "build_scan_chain",
    "TestPipe",
    "TestSchedule",
    "observer_map",
    "schedule_pipes",
    "DetectabilityProfile",
    "detectability_profile",
    "expected_random_test_length",
    "fault_detectability",
    "random_coverage_curve",
    "CUTResult",
    "PPETSession",
    "SessionReport",
    "extract_cut",
    "StructuralSelfTest",
    "StructuralSignatures",
    "run_structural_pipes",
    "run_structural_selftest",
]
