"""Random self-test efficiency analysis (paper ref [12]).

Sastry/Majumdar's test-efficiency work — cited by the paper as the
motivation for pseudo-exhaustive testing — studies how stuck-at coverage
grows with random test length.  This module measures that curve on our
circuit segments and contrasts it with the pseudo-exhaustive guarantee:

* a random-pattern session of length ``L`` detects fault ``f`` with
  probability ``1 − (1 − d_f)^L`` where ``d_f`` is the fault's
  *detectability* (fraction of the input space detecting it);
* hard faults (tiny ``d_f``) dominate the tail: random BIST needs many
  times ``2^ι`` patterns to catch them with confidence, while the
  pseudo-exhaustive session catches every non-redundant fault in exactly
  ``2^ι`` — the paper's Section 1 argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..faults.model import StuckAtFault, fault_masks
from ..netlist.netlist import Netlist
from ..sim.logicsim import CombSimulator
from .patterns import exhaustive_words

__all__ = [
    "fault_detectability",
    "DetectabilityProfile",
    "detectability_profile",
    "random_coverage_curve",
    "expected_random_test_length",
]


def fault_detectability(
    netlist: Netlist,
    fault: StuckAtFault,
    observe: Optional[Sequence[str]] = None,
    simulator: Optional[CombSimulator] = None,
) -> float:
    """Exact detectability ``d_f``: detecting patterns / 2^ι.

    Evaluates the full exhaustive space (the circuit must be within the
    in-memory cap of :func:`repro.ppet.patterns.exhaustive_words`).
    """
    sim = simulator or CombSimulator(netlist)
    observe = tuple(observe if observe is not None else netlist.outputs)
    signals = list(sim.pseudo_inputs)
    words, n = exhaustive_words(signals)
    good = sim.run(words, n)
    bad = sim.run(words, n, faults=fault_masks(fault, n))
    diff = 0
    for o in observe:
        diff |= good[o] ^ bad[o]
    return bin(diff).count("1") / n


@dataclass
class DetectabilityProfile:
    """Detectability statistics of a fault universe on one segment."""

    detectabilities: Dict[StuckAtFault, float]

    @property
    def redundant(self) -> List[StuckAtFault]:
        return [f for f, d in self.detectabilities.items() if d == 0.0]

    @property
    def hardest(self) -> Tuple[Optional[StuckAtFault], float]:
        """The non-redundant fault with minimum detectability."""
        best: Tuple[Optional[StuckAtFault], float] = (None, 1.0)
        for f, d in self.detectabilities.items():
            if 0.0 < d < best[1]:
                best = (f, d)
        return best

    def expected_coverage(self, length: int) -> float:
        """Mean detection probability over non-redundant faults at ``L``."""
        live = [d for d in self.detectabilities.values() if d > 0.0]
        if not live:
            return 1.0
        return sum(1.0 - (1.0 - d) ** length for d in live) / len(live)


def detectability_profile(
    netlist: Netlist,
    faults: Sequence[StuckAtFault],
    observe: Optional[Sequence[str]] = None,
) -> DetectabilityProfile:
    """Exact per-fault detectabilities over the exhaustive space."""
    sim = CombSimulator(netlist)
    return DetectabilityProfile(
        detectabilities={
            f: fault_detectability(netlist, f, observe=observe, simulator=sim)
            for f in faults
        }
    )


def random_coverage_curve(
    netlist: Netlist,
    faults: Sequence[StuckAtFault],
    lengths: Sequence[int],
    observe: Optional[Sequence[str]] = None,
    seed: Optional[int] = 0,
) -> List[Tuple[int, float]]:
    """Measured coverage after ``L`` uniform random patterns, per ``L``.

    One growing random session is simulated (prefix property: the
    coverage at each length reuses the same pattern stream), mirroring a
    random-BIST run.
    """
    if not lengths:
        return []
    rng = random.Random(seed)
    sim = CombSimulator(netlist)
    observe = tuple(observe if observe is not None else netlist.outputs)
    total = max(lengths)
    words = {pi: rng.getrandbits(total) for pi in sim.pseudo_inputs}
    good = sim.run(words, total)
    good_obs = {o: good[o] for o in observe}
    first_detect: Dict[StuckAtFault, Optional[int]] = {}
    for fault in faults:
        bad = sim.run(words, total, faults=fault_masks(fault, total))
        diff = 0
        for o in observe:
            diff |= good_obs[o] ^ bad[o]
        first_detect[fault] = (
            (diff & -diff).bit_length() - 1 if diff else None
        )
    curve: List[Tuple[int, float]] = []
    n_faults = len(faults) or 1
    for L in sorted(lengths):
        covered = sum(
            1 for t in first_detect.values() if t is not None and t < L
        )
        curve.append((L, covered / n_faults))
    return curve


def expected_random_test_length(
    detectability: float, confidence: float = 0.99
) -> float:
    """Patterns needed to detect a ``d_f`` fault with given confidence.

    Solves ``1 − (1 − d)^L ≥ c``; the classic random-BIST sizing formula.
    """
    import math

    if not 0.0 < detectability <= 1.0:
        raise SimulationError("detectability must be in (0, 1]")
    if not 0.0 < confidence < 1.0:
        raise SimulationError("confidence must be in (0, 1)")
    if detectability == 1.0:
        return 1.0
    return math.log(1.0 - confidence) / math.log(1.0 - detectability)
