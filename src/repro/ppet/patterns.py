"""Pseudo-exhaustive pattern spaces for circuit segments.

A CUT with ``ι`` inputs is tested with **all** ``2^ι`` input combinations
(pseudo-exhaustive testing: exhaustive per segment, far cheaper than
exhaustive over the whole circuit).  Pattern blocks are generated as
parallel words — bit ``t`` of input ``i``'s word is input ``i``'s value
under pattern ``t`` — in either binary counting order or the emission
order of the CBIT's complete LFSR.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..cbit.lfsr import LFSR
from ..errors import SimulationError

__all__ = [
    "exhaustive_words",
    "lfsr_order_words",
    "is_exhaustive",
    "MAX_EXHAUSTIVE_INPUTS",
]

#: Practical cap for in-memory exhaustive blocks (2^22 bits ≈ 512 KiB/signal).
MAX_EXHAUSTIVE_INPUTS = 22


def exhaustive_words(signals: Sequence[str]) -> Tuple[Dict[str, int], int]:
    """All ``2^n`` patterns over ``signals`` in binary counting order.

    Signal ``signals[i]`` toggles with period ``2^(i+1)`` (i.e. it is bit
    ``i`` of the pattern index).

    >>> words, n = exhaustive_words(["a", "b"])
    >>> n, bin(words["a"]), bin(words["b"])
    (4, '0b1010', '0b1100')
    """
    n = len(signals)
    if n > MAX_EXHAUSTIVE_INPUTS:
        raise SimulationError(
            f"{n} inputs exceed the in-memory exhaustive cap "
            f"({MAX_EXHAUSTIVE_INPUTS}); split the segment or sample"
        )
    total = 1 << n
    words: Dict[str, int] = {}
    for i, sig in enumerate(signals):
        period = 1 << (i + 1)
        half = 1 << i
        block = ((1 << half) - 1) << half  # high half of one period
        repeat = ((1 << total) - 1) // ((1 << period) - 1)
        words[sig] = block * repeat
    return words, total


def lfsr_order_words(
    signals: Sequence[str], seed: int = 1
) -> Tuple[Dict[str, int], int]:
    """All ``2^n`` patterns in the emission order of a complete LFSR.

    This is the order a width-``n`` CBIT actually drives the CUT with;
    signature computation must use it (MISR signatures are order
    dependent).  Bit ``j`` of each LFSR state drives ``signals[j]``.
    """
    n = len(signals)
    if n < 2:
        # widths 0/1 are degenerate: fall back to counting order
        return exhaustive_words(signals)
    if n > MAX_EXHAUSTIVE_INPUTS:
        raise SimulationError(
            f"{n} inputs exceed the in-memory exhaustive cap "
            f"({MAX_EXHAUSTIVE_INPUTS})"
        )
    lfsr = LFSR(n, seed=seed, complete=True)
    total = 1 << n
    words = {sig: 0 for sig in signals}
    for t in range(total):
        state = lfsr.step()
        for j, sig in enumerate(signals):
            if (state >> j) & 1:
                words[sig] |= 1 << t
    return words, total


def is_exhaustive(words: Dict[str, int], signals: Sequence[str], n_patterns: int) -> bool:
    """Check that the block enumerates every combination exactly once."""
    if n_patterns != 1 << len(signals):
        return False
    seen = set()
    for t in range(n_patterns):
        key = 0
        for j, sig in enumerate(signals):
            if (words[sig] >> t) & 1:
                key |= 1 << j
        seen.add(key)
    return len(seen) == n_patterns
