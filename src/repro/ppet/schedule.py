"""Test-pipe scheduling and the testing-time model (Figure 1(b)).

Every CUT is tested by a CBIT pair — its own input CBIT generating
patterns and the observing CBIT(s) compacting responses.  One CBIT can
simultaneously *generate* for the segment it feeds and *compact* for the
segment feeding it only in dual (MISR) mode for its own segment; across
**distinct** CBITs the roles conflict, so the segments are covered in a
sequence of *test pipes*: in each pipe every CBIT holds a single role
(TPG or PSA) and the pipe tests every CUT whose generator is in TPG mode
and whose observers are all in PSA mode.

Per Figure 1(b), a pipe runs for ``2^(widest active generator)`` clocks;
the session adds the scan-chain init/read-out overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cbit.assemble import CBITPlan
from ..errors import CBITError
from ..graphs.digraph import NodeKind
from ..partition.clusters import Partition

__all__ = ["observer_map", "TestPipe", "TestSchedule", "schedule_pipes"]


def observer_map(partition: Partition) -> Dict[int, Set[int]]:
    """Cluster → clusters observing its outputs (distinct CBIT pairs).

    Cluster ``Y`` observes ``X`` when a combinational signal of ``X``
    feeds a combinational cell of ``Y`` across the boundary (a cut net's
    A_CELL belongs to ``Y``'s input CBIT) or the data input of a DFF whose
    output ``Y`` reads (the DFF is grouped into ``Y``'s CBIT).  Self
    observation (X = Y) is dual-mode and needs no separate pipe.
    """
    graph = partition.graph
    obs: Dict[int, Set[int]] = {c.cluster_id: set() for c in partition.clusters}

    def owner(node: str) -> Optional[int]:
        cl = partition.cluster_of(node)
        return None if cl is None else cl.cluster_id

    # DFF output net -> cluster whose CBIT absorbs it (first reader cluster)
    dff_owner: Dict[str, int] = {}
    for cluster in partition.clusters:
        for net_name in cluster.input_nets:
            src = graph.net(net_name).source
            if graph.kind(src) is NodeKind.REGISTER:
                dff_owner.setdefault(net_name, cluster.cluster_id)

    for net in graph.nets():
        src = net.source
        if graph.kind(src) is not NodeKind.COMB:
            continue
        x = owner(src)
        if x is None:
            continue
        for sink in net.sinks:
            kind = graph.kind(sink)
            if kind is NodeKind.COMB:
                y = owner(sink)
                if y is not None and y != x:
                    obs[x].add(y)
            elif kind is NodeKind.REGISTER:
                y = dff_owner.get(sink)
                if y is not None and y != x:
                    obs[x].add(y)
    return obs


@dataclass(frozen=True)
class TestPipe:
    """One concurrent test phase."""

    index: int
    tested_clusters: Tuple[int, ...]
    tpg_clusters: FrozenSet[int]
    psa_clusters: FrozenSet[int]
    cycles: int  # 2^(widest active generator CBIT)


@dataclass(frozen=True)
class TestSchedule:
    """Full self-test timing (Figure 1(b) plus scan overhead)."""

    pipes: Tuple[TestPipe, ...]
    scan_cycles: int

    @property
    def test_cycles(self) -> int:
        return sum(p.cycles for p in self.pipes)

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.scan_cycles

    @property
    def n_pipes(self) -> int:
        return len(self.pipes)


def schedule_pipes(
    partition: Partition,
    plan: CBITPlan,
    scan_cycles: int = 0,
) -> TestSchedule:
    """Greedy test-pipe construction covering every cluster with a CBIT.

    Each round 2-colours the remaining conflict structure: clusters are
    pulled into the TPG side unless one of their observers is already a
    generator this round, in which case they wait for a later pipe.
    """
    widths = {a.cluster_id: a.width for a in plan.assignments}
    obs = observer_map(partition)
    pending: Set[int] = set(widths)
    pipes: List[TestPipe] = []
    while pending:
        tpg: Set[int] = set()
        psa: Set[int] = set()
        tested: List[int] = []
        # deterministic order: widest first so big CBITs share one pipe
        for cid in sorted(pending, key=lambda c: (-widths[c], c)):
            observers = {o for o in obs.get(cid, ()) if o in widths} - {cid}
            # cid must be TPG; its observers must be PSA
            if cid in psa or observers & tpg:
                continue
            tpg.add(cid)
            psa |= observers
            tested.append(cid)
        if not tested:
            raise CBITError(
                "test-pipe scheduling stalled; conflict structure is "
                "unsatisfiable"
            )
        cycles = 1 << max(widths[c] for c in tested)
        pipes.append(
            TestPipe(
                index=len(pipes),
                tested_clusters=tuple(tested),
                tpg_clusters=frozenset(tpg),
                psa_clusters=frozenset(psa),
                cycles=cycles,
            )
        )
        pending -= set(tested)
    return TestSchedule(pipes=tuple(pipes), scan_cycles=scan_cycles)
