"""Signature compaction of CUT responses (parallel signature analysis).

The observing CBIT folds each clock's response word into a MISR; at the
end of the pseudo-exhaustive run the register holds the test signature.
A fault is detected iff its signature differs from the fault-free one;
aliasing (faulty responses compacting to the golden signature) occurs
with probability ≈ ``2^-width`` and is measured explicitly here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..cbit.misr import MISR
from ..errors import CBITError

__all__ = ["response_words_to_stream", "compact_signature", "SignatureVerdict"]


def response_words_to_stream(
    values: Mapping[str, int], observe: Sequence[str], n_patterns: int
) -> List[int]:
    """Transpose parallel signal words into per-clock response words.

    Clock ``t``'s response packs ``observe[j]`` into bit ``j``.
    """
    streams = [values[o] for o in observe]
    out: List[int] = []
    for t in range(n_patterns):
        word = 0
        for j, s in enumerate(streams):
            if (s >> t) & 1:
                word |= 1 << j
        out.append(word)
    return out


def compact_signature(
    values: Mapping[str, int],
    observe: Sequence[str],
    n_patterns: int,
    width: Optional[int] = None,
    seed: int = 0,
) -> int:
    """MISR signature of a simulated response block.

    Args:
        values: signal → parallel word (a simulator result).
        observe: observed signals, mapped onto MISR inputs in order.
        n_patterns: clocks in the block.
        width: MISR width; defaults to ``max(2, len(observe))``.  Wider
            responses than the MISR fold around (XOR into lower bits), as
            cascaded hardware would.

    Returns:
        The signature (an integer below ``2^width``).
    """
    if not observe:
        raise CBITError("cannot compact an empty observation set")
    width = width or max(2, len(observe))
    misr = MISR(width, seed=seed)
    mask = (1 << width) - 1
    for word in response_words_to_stream(values, observe, n_patterns):
        folded = 0
        while word:
            folded ^= word & mask
            word >>= width
        misr.absorb(folded)
    return misr.signature


@dataclass(frozen=True)
class SignatureVerdict:
    """Comparison of a faulty signature against the golden one."""

    golden: int
    faulty: int
    responses_differ: bool  # raw response streams differed

    @property
    def detected(self) -> bool:
        return self.faulty != self.golden

    @property
    def aliased(self) -> bool:
        """Responses differed but compacted to the same signature."""
        return self.responses_differ and not self.detected
