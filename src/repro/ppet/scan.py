"""Scan-chain model for CBIT initialization and signature read-out.

Section 1: "A scan chain links all the test registers for initialization
and signatures read-out."  Hardware-wise the chain threads every CBIT
bit; time-wise a self-test session pays one full shift-in before testing
and one full shift-out after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cbit.assemble import CBITPlan

__all__ = ["ScanChain", "build_scan_chain"]


@dataclass(frozen=True)
class ScanChain:
    """Ordering of all CBIT bits on the scan chain."""

    segments: Tuple[Tuple[int, int], ...]  # (cluster_id, width) in chain order

    @property
    def length(self) -> int:
        return sum(w for _, w in self.segments)

    @property
    def init_cycles(self) -> int:
        """Clocks to shift in all seeds (one bit per clock)."""
        return self.length

    @property
    def readout_cycles(self) -> int:
        """Clocks to shift out all signatures."""
        return self.length

    def offset_of(self, cluster_id: int) -> int:
        """Bit offset of a cluster's CBIT on the chain."""
        off = 0
        for cid, w in self.segments:
            if cid == cluster_id:
                return off
            off += w
        raise KeyError(f"cluster {cluster_id} has no CBIT on the chain")

    def shift_plan(self, seeds: Dict[int, int]) -> List[int]:
        """Serialize per-cluster seed values into the bit stream to shift.

        The last segment's bits are shifted first (standard scan order:
        the head of the stream lands in the tail of the chain).
        """
        bits: List[int] = []
        for cid, width in self.segments:
            seed = seeds.get(cid, 0)
            for i in range(width):
                bits.append((seed >> i) & 1)
        bits.reverse()
        return bits


def build_scan_chain(plan: CBITPlan) -> ScanChain:
    """Thread the plan's CBITs onto one chain in cluster-id order."""
    return ScanChain(
        segments=tuple(
            (a.cluster_id, a.width) for a in plan.assignments
        )
    )
