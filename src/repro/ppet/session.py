"""End-to-end PPET self-test session simulation.

Given a partitioned circuit and its CBIT plan, the session extracts each
cluster's circuit-under-test (its combinational member cells, driven at
the cluster's input nets), drives it with the full pseudo-exhaustive
pattern space in CBIT (LFSR) order, compacts the observed responses into
MISR signatures, and grades every stuck-at fault of the segment — both by
raw response comparison and by signature comparison, so MISR aliasing is
measured rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..cbit.assemble import CBITPlan, assemble_cbits
from ..faults.collapse import collapse_faults
from ..faults.coverage import CoverageReport
from ..faults.model import StuckAtFault
from ..graphs.digraph import NodeKind
from ..netlist.netlist import Netlist
from ..partition.clusters import Cluster, Partition
from ..perf import count as perf_count
from ..perf import stage as perf_stage
from ..sim.bitparallel import (
    WORD_BITS,
    chunked,
    extract_block,
    fault_block_masks,
    replicate_word,
)
from ..sim.logicsim import CombSimulator
from .patterns import exhaustive_words, lfsr_order_words
from .scan import ScanChain, build_scan_chain
from .schedule import TestSchedule, schedule_pipes
from .signature import SignatureVerdict, compact_signature

__all__ = ["CUTResult", "SessionReport", "extract_cut", "PPETSession"]

#: Target packed-word width for fault-parallel grading: enough lanes to
#: amortize the per-gate Python overhead, small enough that big-int
#: bitwise ops stay cache-friendly.
_TARGET_WORD_BITS = 1 << 13


def extract_cut(partition: Partition, cluster: Cluster, netlist: Netlist) -> Netlist:
    """Materialize a cluster's CUT as a standalone combinational netlist.

    Inputs are the cluster's input nets (signal names preserved); cells
    are the cluster's combinational members; outputs are the member
    signals observed by test registers — signals leaving the cluster,
    feeding any DFF, or driving a primary output.
    """
    graph = partition.graph
    cut = Netlist(f"{netlist.name}_cut{cluster.cluster_id}")
    for sig in sorted(cluster.input_nets):
        cut.add_input(sig)
    members = {
        n for n in cluster.nodes if graph.kind(n) is NodeKind.COMB
    }
    for name in members:
        cell = netlist.cell(name)
        cut.add_cell(cell)
    po_set = set(netlist.outputs)
    observed: List[str] = []
    for name in sorted(members):
        net = graph.net(name) if graph.has_net(name) else None
        is_observed = name in po_set
        if net is not None:
            for sink in net.sinks:
                kind = graph.kind(sink)
                if kind is NodeKind.REGISTER:
                    is_observed = True
                elif kind is NodeKind.COMB and sink not in members:
                    is_observed = True
        if is_observed:
            observed.append(name)
            cut.add_output(name)
    if not observed:
        # fully internal cluster: observe its sink cells so the CUT is
        # still gradeable (hardware-wise these feed other clusters' logic
        # through nets our cut-net analysis deemed internal)
        fan = cut.fanout_map()
        for name in sorted(members):
            if not fan.get(name):
                cut.add_output(name)
    cut.validate()
    return cut


@dataclass
class CUTResult:
    """Self-test outcome for one cluster."""

    cluster_id: int
    n_inputs: int
    n_patterns: int
    golden_signature: int
    detected: Set[StuckAtFault]
    undetected: Set[StuckAtFault]
    aliased: Set[StuckAtFault]  # responses differ, signature matches
    truncated: bool  # pattern space was capped (ι above the sim limit)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


@dataclass
class SessionReport:
    """Aggregate self-test report."""

    circuit: str
    results: List[CUTResult]
    schedule: TestSchedule
    scan_chain: ScanChain

    @property
    def coverage(self) -> CoverageReport:
        report = CoverageReport()
        for r in self.results:
            report.add_segment(
                r.cluster_id, r.detected, r.detected | r.undetected
            )
        return report

    @property
    def aliasing_events(self) -> int:
        return sum(len(r.aliased) for r in self.results)

    def render(self) -> str:
        cov = self.coverage
        lines = [
            f"PPET self-test of {self.circuit}: "
            f"{len(self.results)} segments, "
            f"{self.schedule.n_pipes} test pipes, "
            f"{self.schedule.total_cycles} cycles "
            f"({self.schedule.scan_cycles} scan)",
            cov.render(),
            f"MISR aliasing events: {self.aliasing_events}",
        ]
        return "\n".join(lines)


class PPETSession:
    """Drive a full PPET self-test over a merged partition."""

    def __init__(
        self,
        netlist: Netlist,
        partition: Partition,
        plan: Optional[CBITPlan] = None,
        max_sim_inputs: int = 16,
        use_lfsr_order: bool = True,
    ):
        self.netlist = netlist
        self.partition = partition
        self.plan = plan or assemble_cbits(partition)
        self.max_sim_inputs = max_sim_inputs
        self.use_lfsr_order = use_lfsr_order
        self.scan_chain = build_scan_chain(self.plan)

    # ------------------------------------------------------------------
    def run_cut(self, cluster: Cluster, collapse: bool = True) -> CUTResult:
        """Pseudo-exhaustively test one cluster and grade its faults."""
        cut = extract_cut(self.partition, cluster, self.netlist)
        signals = list(cut.inputs)
        truncated = False
        if len(signals) > self.max_sim_inputs:
            # cap the simulated space; hardware would run the full 2^ι
            signals_full = signals
            truncated = True
            gen_signals = signals_full[: self.max_sim_inputs]
            words, n_patterns = (
                lfsr_order_words(gen_signals)
                if self.use_lfsr_order and len(gen_signals) >= 2
                else exhaustive_words(gen_signals)
            )
            for extra in signals_full[self.max_sim_inputs:]:
                words[extra] = 0
        else:
            words, n_patterns = (
                lfsr_order_words(signals)
                if self.use_lfsr_order and len(signals) >= 2
                else exhaustive_words(signals)
            )
        sim = CombSimulator(cut)
        observe = tuple(cut.outputs)
        good = sim.run(words, n_patterns)
        # The observing register is the downstream cluster's input CBIT,
        # so its width is on the order of l_k, not the raw output count.
        width = min(32, max(2, self.partition.lk, len(observe)))
        golden = compact_signature(good, observe, n_patterns, width=width)
        good_obs = [good[o] for o in observe]

        universe = [
            StuckAtFault(sig, v)
            for sig in list(cut.inputs) + [c.output for c in cut.cells()]
            for v in (0, 1)
        ]
        if collapse:
            collapsed = collapse_faults(cut, universe)
            to_simulate = collapsed.representatives
        else:
            collapsed = None
            to_simulate = universe

        detected_reps: Set[StuckAtFault] = set()
        undetected_reps: Set[StuckAtFault] = set()
        aliased: Set[StuckAtFault] = set()
        # Fault-parallel grading: tile the pattern block L times inside
        # one word and give each replica its own stuck-at masks, so a
        # single levelized pass grades L faults at once.
        lanes = max(1, min(WORD_BITS, _TARGET_WORD_BITS // n_patterns))
        replicated: Dict[int, Dict[str, int]] = {}
        with perf_stage("session_fault_sim"):
            for batch in chunked(to_simulate, lanes):
                n_lanes = len(batch)
                if n_lanes not in replicated:
                    replicated[n_lanes] = {
                        s: replicate_word(w, n_patterns, n_lanes)
                        for s, w in words.items()
                    }
                bad = sim.run(
                    replicated[n_lanes],
                    n_patterns * n_lanes,
                    faults=fault_block_masks(batch, n_patterns),
                )
                for j, fault in enumerate(batch):
                    bad_obs = [
                        extract_block(bad[o], n_patterns, j) for o in observe
                    ]
                    if bad_obs != good_obs:
                        detected_reps.add(fault)
                        sig = compact_signature(
                            dict(zip(observe, bad_obs)),
                            observe,
                            n_patterns,
                            width=width,
                        )
                        verdict = SignatureVerdict(
                            golden, sig, responses_differ=True
                        )
                        if verdict.aliased:
                            aliased.add(fault)
                    else:
                        undetected_reps.add(fault)
        perf_count("cut_faults_graded", len(to_simulate))
        perf_count("cut_patterns", n_patterns * (1 + len(to_simulate)))
        if collapsed is not None:
            detected = collapsed.expand(detected_reps)
            undetected = set(universe) - detected
        else:
            detected, undetected = detected_reps, undetected_reps
        return CUTResult(
            cluster_id=cluster.cluster_id,
            n_inputs=len(cut.inputs),
            n_patterns=n_patterns,
            golden_signature=golden,
            detected=detected,
            undetected=undetected,
            aliased=aliased,
            truncated=truncated,
        )

    def run(self, collapse: bool = True) -> SessionReport:
        """Test every cluster with a CBIT; aggregate coverage and timing."""
        results: List[CUTResult] = []
        by_id = {c.cluster_id: c for c in self.partition.clusters}
        for assignment in self.plan.assignments:
            cluster = by_id[assignment.cluster_id]
            results.append(self.run_cut(cluster, collapse=collapse))
        schedule = schedule_pipes(
            self.partition,
            self.plan,
            scan_cycles=self.scan_chain.init_cycles
            + self.scan_chain.readout_cycles,
        )
        return SessionReport(
            circuit=self.netlist.name,
            results=results,
            schedule=schedule,
            scan_chain=self.scan_chain,
        )
