"""Circuit- and test-hardware area accounting (Section 4 + Figure 3).

All figures are in abstract CMOS units with ``DFF = 10`` units, so one
"DFF equivalent" is 10 units.  The module exposes both the raw unit costs
and the DFF-relative factors quoted in the paper:

* a fresh **A_CELL** (AND2 + NOR2 + XOR2 + DFF) is ``1.9 ×`` DFF;
* converting an existing, retimed functional DFF into an A_CELL adds only
  the three gates: ``0.9 ×`` DFF;
* an A_CELL that cannot reuse a functional DFF also needs a 2-to-1 MUX to
  split the normal and self-test data paths; the paper quotes the total at
  ``2.3 ×`` DFF (the itemised gate sum is 22 units — we follow the quoted
  2.3 factor and record the 1-unit discrepancy here once, rather than
  scattering it).
"""

from __future__ import annotations

from dataclasses import dataclass

from .gates import DFF_AREA_UNITS, GateType, gate_area_units
from .netlist import Netlist

__all__ = [
    "DFF_AREA_UNITS",
    "ACELL_AREA_UNITS",
    "ACELL_RETIMED_EXTRA_UNITS",
    "ACELL_MUXED_AREA_UNITS",
    "ACELL_FACTOR",
    "ACELL_RETIMED_FACTOR",
    "ACELL_MUXED_FACTOR",
    "circuit_area_units",
    "area_in_dff",
    "AreaBreakdown",
    "area_breakdown",
]

#: Fresh A_CELL: 2-input AND (3) + 2-input NOR (2) + 2-input XOR (4) + DFF (10).
ACELL_AREA_UNITS = (
    gate_area_units(GateType.AND, 2)
    + gate_area_units(GateType.NOR, 2)
    + gate_area_units(GateType.XOR, 2)
    + DFF_AREA_UNITS
)

#: Converting an existing DFF to an A_CELL adds only the three logic gates.
ACELL_RETIMED_EXTRA_UNITS = ACELL_AREA_UNITS - DFF_AREA_UNITS

#: A_CELL + 2-to-1 MUX, per the paper's quoted 2.3 × DFF total.
ACELL_MUXED_AREA_UNITS = 23

ACELL_FACTOR = ACELL_AREA_UNITS / DFF_AREA_UNITS  # 1.9
ACELL_RETIMED_FACTOR = ACELL_RETIMED_EXTRA_UNITS / DFF_AREA_UNITS  # 0.9
ACELL_MUXED_FACTOR = ACELL_MUXED_AREA_UNITS / DFF_AREA_UNITS  # 2.3


def circuit_area_units(netlist: Netlist) -> int:
    """Estimated area of ``netlist`` per the Table 9 counting rules."""
    return netlist.area_units()


def area_in_dff(units: float) -> float:
    """Convert abstract units to DFF equivalents (10 units per DFF)."""
    return units / DFF_AREA_UNITS


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-gate-type area contributions of a netlist."""

    total_units: int
    dff_units: int
    inverter_units: int
    gate_units: int

    @property
    def combinational_units(self) -> int:
        return self.inverter_units + self.gate_units


def area_breakdown(netlist: Netlist) -> AreaBreakdown:
    """Split the circuit area into DFF / inverter / other-gate contributions."""
    dff = inv = gate = 0
    for cell in netlist.cells():
        a = cell.area_units
        if cell.is_dff:
            dff += a
        elif cell.gtype is GateType.NOT:
            inv += a
        else:
            gate += a
    return AreaBreakdown(dff + inv + gate, dff, inv, gate)
