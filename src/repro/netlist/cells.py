"""Cell record used by :class:`repro.netlist.netlist.Netlist`.

The netlist follows the ISCAS89 signal-centric convention: every cell drives
exactly one named signal, and the signal is identified with the cell that
drives it.  A *net* is therefore a driving signal plus the set of cells that
read it (its fan-out branches) — the "multi-pin" net model of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .gates import GateType, check_fanin, gate_area_units

__all__ = ["Cell"]


@dataclass(frozen=True)
class Cell:
    """One primitive cell.

    Attributes:
        output: name of the signal this cell drives (also the cell's name).
        gtype: primitive function of the cell.
        inputs: names of the signals read by the cell, in pin order.
    """

    output: str
    gtype: GateType
    inputs: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.output:
            raise ValueError("cell output signal name must be non-empty")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        check_fanin(self.gtype, len(self.inputs))

    @property
    def is_dff(self) -> bool:
        return self.gtype is GateType.DFF

    @property
    def fanin(self) -> int:
        return len(self.inputs)

    @property
    def area_units(self) -> int:
        """Area of this cell in abstract CMOS units (DFF = 10)."""
        return gate_area_units(self.gtype, self.fanin)

    def with_inputs(self, inputs: Tuple[str, ...]) -> "Cell":
        """Return a copy of this cell reading from ``inputs`` instead."""
        return Cell(self.output, self.gtype, tuple(inputs))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.output} = {self.gtype.value}({', '.join(self.inputs)})"
