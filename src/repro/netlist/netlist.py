"""Gate-level synchronous netlist container.

A :class:`Netlist` is a set of named signals.  Each signal is driven either
by a primary input or by exactly one :class:`~repro.netlist.cells.Cell`
(combinational gate or DFF).  This mirrors the ISCAS89 ``.bench`` view of a
circuit and maps directly onto the paper's graph model
``G(V = R ∪ C, E)``: DFF cells are the register nodes ``R``, other cells and
primary inputs are the combinational/source nodes ``C``, and each signal is a
multi-pin net (one driver, many fan-out branches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from .cells import Cell
from .gates import GateType

__all__ = ["Netlist", "CircuitStats"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics in the shape of the paper's Table 9."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dffs: int
    n_gates: int  # combinational cells other than inverters
    n_inverters: int
    area_units: int

    def as_row(self) -> Tuple[str, int, int, int, int, int]:
        """(name, #PI, #DFF, #gates, #INV, area) — the Table 9 columns."""
        return (
            self.name,
            self.n_inputs,
            self.n_dffs,
            self.n_gates,
            self.n_inverters,
            self.area_units,
        )


class Netlist:
    """Mutable gate-level netlist.

    Example:
        >>> nl = Netlist("toy")
        >>> nl.add_input("a"); nl.add_input("b")
        >>> _ = nl.add_gate("g", GateType.NAND, ["a", "b"])
        >>> _ = nl.add_dff("q", "g")
        >>> nl.add_output("q")
        >>> nl.validate()
        >>> nl.stats().n_dffs
        1
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._cells: Dict[str, Cell] = {}
        self._input_set: set = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, signal: str) -> None:
        """Declare ``signal`` as a primary input."""
        if signal in self._input_set:
            raise NetlistError(f"duplicate primary input {signal!r}")
        if signal in self._cells:
            raise NetlistError(f"signal {signal!r} already driven by a cell")
        self._inputs.append(signal)
        self._input_set.add(signal)

    def add_output(self, signal: str) -> None:
        """Declare ``signal`` as a primary output (it may also fan out internally)."""
        if signal in self._outputs:
            raise NetlistError(f"duplicate primary output {signal!r}")
        self._outputs.append(signal)

    def add_cell(self, cell: Cell) -> Cell:
        """Insert ``cell``; its output signal must not already have a driver."""
        if cell.output in self._cells:
            raise NetlistError(f"signal {cell.output!r} already driven by a cell")
        if cell.output in self._input_set:
            raise NetlistError(f"signal {cell.output!r} is a primary input")
        self._cells[cell.output] = cell
        return cell

    def add_gate(self, output: str, gtype: GateType, inputs: Sequence[str]) -> Cell:
        """Convenience wrapper creating a combinational cell."""
        if gtype is GateType.DFF:
            raise NetlistError("use add_dff for flip-flops")
        return self.add_cell(Cell(output, gtype, tuple(inputs)))

    def add_dff(self, output: str, data_in: str) -> Cell:
        """Create a D flip-flop driving ``output`` from ``data_in``."""
        return self.add_cell(Cell(output, GateType.DFF, (data_in,)))

    def remove_cell(self, output: str) -> Cell:
        """Remove and return the cell driving ``output``.

        Fan-out references are left untouched; callers rewiring the netlist
        (e.g. retiming) must reconnect readers themselves and re-validate.
        """
        try:
            return self._cells.pop(output)
        except KeyError:
            raise NetlistError(f"no cell drives signal {output!r}") from None

    def replace_cell(self, cell: Cell) -> Cell:
        """Replace the existing driver of ``cell.output`` with ``cell``."""
        if cell.output not in self._cells:
            raise NetlistError(f"no cell drives signal {cell.output!r}")
        self._cells[cell.output] = cell
        return cell

    def remove_output(self, signal: str) -> None:
        try:
            self._outputs.remove(signal)
        except ValueError:
            raise NetlistError(f"{signal!r} is not a primary output") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self._outputs)

    def is_input(self, signal: str) -> bool:
        return signal in self._input_set

    def has_signal(self, signal: str) -> bool:
        return signal in self._input_set or signal in self._cells

    def driver(self, signal: str) -> Optional[Cell]:
        """The cell driving ``signal``, or ``None`` for a primary input."""
        if signal in self._input_set:
            return None
        try:
            return self._cells[signal]
        except KeyError:
            raise NetlistError(f"unknown signal {signal!r}") from None

    def cell(self, output: str) -> Cell:
        try:
            return self._cells[output]
        except KeyError:
            raise NetlistError(f"no cell drives signal {output!r}") from None

    def cells(self) -> Iterator[Cell]:
        """All cells, in insertion order."""
        return iter(self._cells.values())

    def dff_cells(self) -> Iterator[Cell]:
        return (c for c in self._cells.values() if c.is_dff)

    def comb_cells(self) -> Iterator[Cell]:
        return (c for c in self._cells.values() if not c.is_dff)

    def signals(self) -> Iterator[str]:
        """All signal names: primary inputs first, then cell outputs."""
        yield from self._inputs
        yield from self._cells

    def fanout_map(self) -> Dict[str, List[Cell]]:
        """Map each signal to the cells that read it (fan-out branches)."""
        fan: Dict[str, List[Cell]] = {s: [] for s in self.signals()}
        for cell in self._cells.values():
            for sig in cell.inputs:
                fan.setdefault(sig, []).append(cell)
        return fan

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, signal: str) -> bool:
        return self.has_signal(signal)

    # ------------------------------------------------------------------
    # validation & analysis
    # ------------------------------------------------------------------
    def validate(self, require_outputs: bool = True) -> None:
        """Check structural sanity; raise :class:`NetlistError` on problems.

        Checks: every cell input and primary output names a driven signal;
        at least one primary input/output (if ``require_outputs``); and the
        combinational core is acyclic (every feedback loop is broken by at
        least one DFF — the premise of the paper's synchronous model).
        """
        if not self._inputs:
            raise NetlistError(f"netlist {self.name!r} has no primary inputs")
        if require_outputs and not self._outputs:
            raise NetlistError(f"netlist {self.name!r} has no primary outputs")
        for cell in self._cells.values():
            for sig in cell.inputs:
                if not self.has_signal(sig):
                    raise NetlistError(
                        f"cell {cell.output!r} reads undriven signal {sig!r}"
                    )
        for sig in self._outputs:
            if not self.has_signal(sig):
                raise NetlistError(f"primary output {sig!r} is not driven")
        cycle = self._find_combinational_cycle()
        if cycle is not None:
            raise NetlistError(
                f"combinational cycle with no DFF: {' -> '.join(cycle)}"
            )

    def _find_combinational_cycle(self) -> Optional[List[str]]:
        """Return one purely combinational cycle as a signal list, else None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}
        parent: Dict[str, str] = {}
        comb = {o: c for o, c in self._cells.items() if not c.is_dff}
        for root in comb:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(comb[root].inputs))]
            color[root] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in comb:
                        continue  # PI or DFF output: breaks the path
                    c = color.get(nxt, WHITE)
                    if c == GRAY:
                        # reconstruct cycle nxt -> ... -> node -> nxt
                        cyc = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cyc.append(cur)
                        cyc.reverse()
                        cyc.append(nxt)
                        return cyc
                    if c == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(comb[nxt].inputs)))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def topological_comb_order(self) -> List[Cell]:
        """Combinational cells in dependency order (inputs before readers).

        DFF outputs and primary inputs are treated as sources.  Raises
        :class:`NetlistError` if the combinational core is cyclic.
        """
        comb = {o: c for o, c in self._cells.items() if not c.is_dff}
        indeg: Dict[str, int] = {}
        readers: Dict[str, List[str]] = {}
        for out, cell in comb.items():
            deg = 0
            for sig in cell.inputs:
                if sig in comb:
                    deg += 1
                    readers.setdefault(sig, []).append(out)
            indeg[out] = deg
        ready = [o for o, d in indeg.items() if d == 0]
        order: List[Cell] = []
        while ready:
            out = ready.pop()
            order.append(comb[out])
            for r in readers.get(out, ()):
                indeg[r] -= 1
                if indeg[r] == 0:
                    ready.append(r)
        if len(order) != len(comb):
            raise NetlistError("combinational core is cyclic; cannot levelize")
        return order

    def stats(self) -> CircuitStats:
        """Statistics in the shape of Table 9 (gates vs. inverters vs. DFFs)."""
        n_dff = n_inv = n_gate = 0
        area = 0
        for cell in self._cells.values():
            area += cell.area_units
            if cell.is_dff:
                n_dff += 1
            elif cell.gtype is GateType.NOT:
                n_inv += 1
            else:
                n_gate += 1
        return CircuitStats(
            name=self.name,
            n_inputs=len(self._inputs),
            n_outputs=len(self._outputs),
            n_dffs=n_dff,
            n_gates=n_gate,
            n_inverters=n_inv,
            area_units=area,
        )

    def area_units(self) -> int:
        """Total estimated circuit area in abstract units."""
        return sum(cell.area_units for cell in self._cells.values())

    # ------------------------------------------------------------------
    # copies
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep-enough copy (cells are immutable, so sharing them is safe)."""
        dup = Netlist(name or self.name)
        dup._inputs = list(self._inputs)
        dup._input_set = set(self._input_set)
        dup._outputs = list(self._outputs)
        dup._cells = dict(self._cells)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<Netlist {self.name!r}: {s.n_inputs} PI, {s.n_outputs} PO, "
            f"{s.n_dffs} DFF, {s.n_gates} gates, {s.n_inverters} INV, "
            f"area {s.area_units}>"
        )
