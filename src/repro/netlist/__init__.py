"""Gate-level netlist substrate: cells, netlists, ISCAS89 I/O, area model."""

from .gates import (
    GateType,
    DFF_AREA_UNITS,
    gate_area_units,
    evaluate_gate,
    parse_gate_type,
)
from .cells import Cell
from .netlist import Netlist, CircuitStats
from .bench import parse_bench, parse_bench_file, write_bench, write_bench_file
from .area import (
    ACELL_AREA_UNITS,
    ACELL_RETIMED_EXTRA_UNITS,
    ACELL_MUXED_AREA_UNITS,
    ACELL_FACTOR,
    ACELL_RETIMED_FACTOR,
    ACELL_MUXED_FACTOR,
    AreaBreakdown,
    area_breakdown,
    area_in_dff,
    circuit_area_units,
)
from .transform import (
    bypass_dff,
    count_dffs_between,
    fresh_signal_name,
    insert_dff_on_net,
    retarget_readers,
)
from .validate import LintReport, lint_netlist
from .verilog import write_verilog, write_verilog_file

__all__ = [
    "GateType",
    "DFF_AREA_UNITS",
    "gate_area_units",
    "evaluate_gate",
    "parse_gate_type",
    "Cell",
    "Netlist",
    "CircuitStats",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "write_bench_file",
    "ACELL_AREA_UNITS",
    "ACELL_RETIMED_EXTRA_UNITS",
    "ACELL_MUXED_AREA_UNITS",
    "ACELL_FACTOR",
    "ACELL_RETIMED_FACTOR",
    "ACELL_MUXED_FACTOR",
    "AreaBreakdown",
    "area_breakdown",
    "area_in_dff",
    "circuit_area_units",
    "bypass_dff",
    "count_dffs_between",
    "fresh_signal_name",
    "insert_dff_on_net",
    "retarget_readers",
    "LintReport",
    "lint_netlist",
    "write_verilog",
    "write_verilog_file",
]
