"""Netlist linting beyond the hard structural checks in ``Netlist.validate``.

``lint_netlist`` reports conditions that are suspicious but not fatal —
dangling cells, unread primary inputs, self-loop DFFs — so benchmark
generators and netlist transformations can be audited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .netlist import Netlist

__all__ = ["LintReport", "lint_netlist"]


@dataclass
class LintReport:
    """Outcome of :func:`lint_netlist`."""

    dangling_cells: List[str] = field(default_factory=list)
    unread_inputs: List[str] = field(default_factory=list)
    self_loop_dffs: List[str] = field(default_factory=list)
    constant_candidates: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.dangling_cells
            or self.unread_inputs
            or self.self_loop_dffs
            or self.constant_candidates
        )

    def summary(self) -> str:
        parts = []
        for label, items in [
            ("dangling cells", self.dangling_cells),
            ("unread inputs", self.unread_inputs),
            ("self-loop DFFs", self.self_loop_dffs),
            ("constant candidates", self.constant_candidates),
        ]:
            if items:
                parts.append(f"{len(items)} {label}")
        return "; ".join(parts) if parts else "clean"


def lint_netlist(netlist: Netlist) -> LintReport:
    """Inspect ``netlist`` for suspicious (non-fatal) structures.

    * *dangling cells* drive neither a primary output nor any other cell;
    * *unread inputs* are primary inputs with no readers;
    * *self-loop DFFs* are DFFs whose data input is their own output
      (legal, but they lock to their initial value and defeat testing);
    * *constant candidates* are gates whose inputs are all the same signal
      (e.g. ``XOR(a, a)`` — a structural constant).
    """
    report = LintReport()
    fan = netlist.fanout_map()
    out_set = set(netlist.outputs)
    for cell in netlist.cells():
        if not fan.get(cell.output) and cell.output not in out_set:
            report.dangling_cells.append(cell.output)
        if cell.is_dff and cell.inputs[0] == cell.output:
            report.self_loop_dffs.append(cell.output)
        if (
            not cell.is_dff
            and len(set(cell.inputs)) == 1
            and len(cell.inputs) > 1
        ):
            report.constant_candidates.append(cell.output)
    for sig in netlist.inputs:
        if not fan.get(sig) and sig not in out_set:
            report.unread_inputs.append(sig)
    return report
