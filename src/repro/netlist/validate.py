"""Netlist linting beyond the hard structural checks in ``Netlist.validate``.

``lint_netlist`` reports conditions that are suspicious but not fatal —
dangling cells, unread primary inputs, self-loop DFFs — so benchmark
generators and netlist transformations can be audited.

Since the :mod:`repro.analysis` subsystem landed, these checks live in
the shared rule catalog as ``NET001``–``NET004``;
:func:`lint_netlist` is a thin back-compat wrapper that runs exactly
those rules and repackages the findings into the original
:class:`LintReport` dataclass.  New code should call
:func:`repro.analysis.lint_circuit` directly for the full catalog and
the structured :class:`~repro.analysis.diagnostics.DiagnosticReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .netlist import Netlist

__all__ = ["LintReport", "lint_netlist"]

#: Which legacy LintReport bucket each rule id fills.
_RULE_BUCKETS = {
    "NET001": "dangling_cells",
    "NET002": "unread_inputs",
    "NET003": "self_loop_dffs",
    "NET004": "constant_candidates",
}


@dataclass
class LintReport:
    """Outcome of :func:`lint_netlist`."""

    dangling_cells: List[str] = field(default_factory=list)
    unread_inputs: List[str] = field(default_factory=list)
    self_loop_dffs: List[str] = field(default_factory=list)
    constant_candidates: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.dangling_cells
            or self.unread_inputs
            or self.self_loop_dffs
            or self.constant_candidates
        )

    def summary(self) -> str:
        parts = []
        for label, items in [
            ("dangling cells", self.dangling_cells),
            ("unread inputs", self.unread_inputs),
            ("self-loop DFFs", self.self_loop_dffs),
            ("constant candidates", self.constant_candidates),
        ]:
            if items:
                parts.append(f"{len(items)} {label}")
        return "; ".join(parts) if parts else "clean"


def lint_netlist(netlist: Netlist) -> LintReport:
    """Inspect ``netlist`` for suspicious (non-fatal) structures.

    * *dangling cells* drive neither a primary output nor any other cell;
    * *unread inputs* are primary inputs with no readers;
    * *self-loop DFFs* are DFFs whose data input is their own output
      (legal, but they lock to their initial value and defeat testing);
    * *constant candidates* are gates whose inputs are all the same signal
      (e.g. ``XOR(a, a)`` — a structural constant).

    Implemented as rules ``NET001``–``NET004`` of
    :func:`repro.analysis.lint_circuit`; this wrapper preserves the
    original return type (signal names per bucket, netlist order).
    """
    # Imported lazily: repro.netlist.__init__ imports this module, and
    # repro.analysis imports repro.netlist.netlist — a module-level
    # import here would cycle during package init.
    from ..analysis.lint import lint_circuit

    report = lint_circuit(
        netlist, rules=tuple(_RULE_BUCKETS), min_severity="info"
    )
    out = LintReport()
    for diag in report.diagnostics:
        getattr(out, _RULE_BUCKETS[diag.rule_id]).append(diag.location)
    return out
