"""ISCAS89 ``.bench`` reader and writer.

The ``.bench`` format (Brglez/Bryan/Kozminski, ISCAS 1989) is line oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G10 = NAND(G0, G5)
    G17 = NOT(G10)

We accept the common alias spellings (``BUFF``, ``INV``), arbitrary spacing,
and blank lines.  The writer emits a canonical form that re-parses to an
identical netlist (round-trip tested).
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import Union

from ..errors import BenchParseError
from .gates import GateType, parse_gate_type
from .netlist import Netlist

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "write_bench_file"]

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^()\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(([^()]*)\)$")


def parse_bench(text: str, name: str = "bench", source: str = "") -> Netlist:
    """Parse ``.bench`` source text into a validated :class:`Netlist`.

    Parse failures raise :class:`~repro.errors.BenchParseError` carrying
    the offending ``source``/line position and chained (``from exc``) to
    the underlying netlist error, so the original cause stays on the
    traceback instead of being swallowed.

    Args:
        text: the ``.bench`` source.
        name: name given to the resulting netlist.
        source: optional origin label (file path) used in error messages.

    >>> nl = parse_bench('''
    ... INPUT(a)
    ... OUTPUT(q)
    ... q = DFF(n)
    ... n = NOT(a)
    ... ''', name="tiny")
    >>> nl.stats().n_dffs
    1
    """
    netlist = Netlist(name)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _IO_RE.match(line)
        if m:
            kind, sig = m.group(1).upper(), m.group(2)
            try:
                if kind == "INPUT":
                    netlist.add_input(sig)
                else:
                    netlist.add_output(sig)
            except Exception as exc:
                raise BenchParseError(
                    str(exc), line_no, raw, source=source
                ) from exc
            continue
        m = _GATE_RE.match(line)
        if m:
            out, func, arg_text = m.group(1), m.group(2), m.group(3)
            args = [a.strip() for a in arg_text.split(",") if a.strip()]
            try:
                gtype = parse_gate_type(func)
                if gtype is GateType.DFF:
                    if len(args) != 1:
                        raise BenchParseError(
                            f"DFF takes exactly one input, got {len(args)}",
                            line_no,
                            raw,
                            source=source,
                        )
                    netlist.add_dff(out, args[0])
                else:
                    netlist.add_gate(out, gtype, args)
            except BenchParseError:
                raise
            except Exception as exc:
                raise BenchParseError(
                    str(exc), line_no, raw, source=source
                ) from exc
            continue
        raise BenchParseError("unrecognized statement", line_no, raw, source=source)
    try:
        netlist.validate()
    except Exception as exc:
        raise BenchParseError(
            f"invalid circuit: {exc}", source=source
        ) from exc
    return netlist


def parse_bench_file(path: Union[str, Path]) -> Netlist:
    """Parse a ``.bench`` file; the netlist is named after the file stem.

    Parse errors report ``file:line`` positions via the ``source``
    channel of :func:`parse_bench`.
    """
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem, source=str(path))


_BENCH_FUNC = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.DFF: "DFF",
    GateType.MUX2: "MUX",
}


def write_bench(netlist: Netlist) -> str:
    """Serialize ``netlist`` to canonical ``.bench`` text."""
    buf = io.StringIO()
    buf.write(f"# {netlist.name}\n")
    s = netlist.stats()
    buf.write(
        f"# {s.n_inputs} inputs, {s.n_outputs} outputs, {s.n_dffs} DFFs, "
        f"{s.n_gates + s.n_inverters} gates\n"
    )
    for sig in netlist.inputs:
        buf.write(f"INPUT({sig})\n")
    for sig in netlist.outputs:
        buf.write(f"OUTPUT({sig})\n")
    buf.write("\n")
    for cell in netlist.cells():
        func = _BENCH_FUNC[cell.gtype]
        buf.write(f"{cell.output} = {func}({', '.join(cell.inputs)})\n")
    return buf.getvalue()


def write_bench_file(netlist: Netlist, path: Union[str, Path]) -> Path:
    """Write ``netlist`` to ``path`` in ``.bench`` format and return the path."""
    path = Path(path)
    path.write_text(write_bench(netlist))
    return path
