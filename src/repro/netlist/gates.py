"""Gate library: types, boolean semantics, and the CMOS area model.

The area numbers follow Section 4 of the paper (and Geiger/Allen/Strader's
CMOS text cited there): 1 unit per inverter, 3 units per 2-input AND, 2 per
2-input NAND, 3 per 2-input OR, 2 per 2-input NOR, 4 per 2-input XOR
(Figure 3), 10 per D flip-flop, and **+1 unit per input beyond the second**
for higher fan-in gates.  A DFF is the area yardstick: 1.0 "DFF equivalent"
equals 10 units.

Boolean evaluation works on *parallel pattern* words: each signal value is a
Python ``int`` whose bit ``i`` carries the value of the signal under pattern
``i``.  Evaluators receive the operand words plus a ``mask`` of the active
pattern bits so complements stay bounded.
"""

from __future__ import annotations

import enum
from functools import reduce
from typing import Callable, Dict, Sequence

from ..errors import NetlistError

__all__ = [
    "GateType",
    "DFF_AREA_UNITS",
    "gate_area_units",
    "evaluate_gate",
    "GATE_EVALUATORS",
    "COMBINATIONAL_TYPES",
    "parse_gate_type",
]

#: Area of a plain (non-self-test) D flip-flop, in abstract CMOS units.
DFF_AREA_UNITS = 10


class GateType(enum.Enum):
    """Primitive cell types understood by the netlist and the simulator.

    The set matches what ISCAS89 ``.bench`` files use, plus ``MUX2`` (needed
    by the self-test hardware of Figure 3(c)).
    """

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    DFF = "DFF"
    MUX2 = "MUX2"

    @property
    def is_sequential(self) -> bool:
        return self is GateType.DFF

    @property
    def is_inverter(self) -> bool:
        return self is GateType.NOT


#: Gate types that are purely combinational.
COMBINATIONAL_TYPES = frozenset(t for t in GateType if not t.is_sequential)

#: Base area (in units) of the 2-input (or 1-input) version of each type.
_BASE_AREA: Dict[GateType, int] = {
    GateType.AND: 3,
    GateType.NAND: 2,
    GateType.OR: 3,
    GateType.NOR: 2,
    GateType.XOR: 4,
    GateType.XNOR: 5,  # XOR + output inverter
    GateType.NOT: 1,
    GateType.BUF: 2,  # two cascaded inverters
    GateType.DFF: DFF_AREA_UNITS,
    GateType.MUX2: 3,  # Figure 3(c): 2-to-1 MUX quoted at 3 units
}

#: Fan-in of the base-area variant (inputs beyond this cost +1 unit each).
_BASE_FANIN: Dict[GateType, int] = {
    GateType.AND: 2,
    GateType.NAND: 2,
    GateType.OR: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.DFF: 1,
    GateType.MUX2: 3,  # data0, data1, select
}

#: Legal fan-in range per type (min, max); ``None`` max means unbounded.
_FANIN_RANGE: Dict[GateType, tuple] = {
    GateType.AND: (2, None),
    GateType.NAND: (2, None),
    GateType.OR: (2, None),
    GateType.NOR: (2, None),
    GateType.XOR: (2, None),
    GateType.XNOR: (2, None),
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.DFF: (1, 1),
    GateType.MUX2: (3, 3),
}


def check_fanin(gtype: GateType, n_inputs: int) -> None:
    """Raise :class:`NetlistError` if ``n_inputs`` is illegal for ``gtype``."""
    lo, hi = _FANIN_RANGE[gtype]
    if n_inputs < lo or (hi is not None and n_inputs > hi):
        raise NetlistError(
            f"{gtype.value} gate cannot have {n_inputs} input(s); "
            f"expected {lo}{'' if hi == lo else f'..{hi if hi is not None else chr(0x221e)}'}"
        )


def gate_area_units(gtype: GateType, n_inputs: int) -> int:
    """Area in abstract units of a ``gtype`` cell with ``n_inputs`` inputs.

    Implements the paper's scaling rule: gates with fan-in above the base
    variant are charged one extra unit per additional input.

    >>> gate_area_units(GateType.NAND, 2)
    2
    >>> gate_area_units(GateType.NAND, 4)
    4
    >>> gate_area_units(GateType.DFF, 1)
    10
    """
    check_fanin(gtype, n_inputs)
    extra = max(0, n_inputs - _BASE_FANIN[gtype])
    return _BASE_AREA[gtype] + extra


def _eval_and(inputs: Sequence[int], mask: int) -> int:
    return reduce(lambda a, b: a & b, inputs)


def _eval_nand(inputs: Sequence[int], mask: int) -> int:
    return ~_eval_and(inputs, mask) & mask


def _eval_or(inputs: Sequence[int], mask: int) -> int:
    return reduce(lambda a, b: a | b, inputs)


def _eval_nor(inputs: Sequence[int], mask: int) -> int:
    return ~_eval_or(inputs, mask) & mask


def _eval_xor(inputs: Sequence[int], mask: int) -> int:
    return reduce(lambda a, b: a ^ b, inputs)


def _eval_xnor(inputs: Sequence[int], mask: int) -> int:
    return ~_eval_xor(inputs, mask) & mask


def _eval_not(inputs: Sequence[int], mask: int) -> int:
    return ~inputs[0] & mask


def _eval_buf(inputs: Sequence[int], mask: int) -> int:
    return inputs[0] & mask


def _eval_mux2(inputs: Sequence[int], mask: int) -> int:
    d0, d1, sel = inputs
    return (d0 & ~sel & mask) | (d1 & sel)


#: Combinational evaluators; DFFs are handled by the sequential simulator.
GATE_EVALUATORS: Dict[GateType, Callable[[Sequence[int], int], int]] = {
    GateType.AND: _eval_and,
    GateType.NAND: _eval_nand,
    GateType.OR: _eval_or,
    GateType.NOR: _eval_nor,
    GateType.XOR: _eval_xor,
    GateType.XNOR: _eval_xnor,
    GateType.NOT: _eval_not,
    GateType.BUF: _eval_buf,
    GateType.MUX2: _eval_mux2,
}


def evaluate_gate(gtype: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate one combinational gate on parallel-pattern words.

    ``mask`` bounds complement operations to the active pattern bits.

    >>> evaluate_gate(GateType.NAND, [0b1100, 0b1010], 0b1111)
    7
    """
    if gtype is GateType.DFF:
        raise NetlistError("DFF has no combinational evaluation; use the sequential simulator")
    check_fanin(gtype, len(inputs))
    return GATE_EVALUATORS[gtype](inputs, mask)


#: Accepted spellings in .bench files (case-insensitive) → canonical type.
_BENCH_ALIASES: Dict[str, GateType] = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "MUX": GateType.MUX2,
    "MUX2": GateType.MUX2,
}


def parse_gate_type(token: str) -> GateType:
    """Map a ``.bench`` function token (e.g. ``"BUFF"``) to a :class:`GateType`."""
    try:
        return _BENCH_ALIASES[token.strip().upper()]
    except KeyError:
        raise NetlistError(f"unknown gate type token {token!r}") from None
