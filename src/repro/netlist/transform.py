"""Structural netlist edits used by retiming and test-hardware insertion.

These helpers keep the :class:`~repro.netlist.netlist.Netlist` consistent
while registers are moved across combinational logic.  They operate on the
signal-centric model: inserting a DFF on a net means introducing a fresh
signal driven by the new DFF and retargeting (a subset of) the net's readers
to it.
"""

from __future__ import annotations

import itertools
from typing import Optional, Set

from ..errors import NetlistError
from .netlist import Netlist

__all__ = [
    "fresh_signal_name",
    "insert_dff_on_net",
    "bypass_dff",
    "retarget_readers",
    "count_dffs_between",
]


def fresh_signal_name(netlist: Netlist, base: str) -> str:
    """Return a signal name derived from ``base`` that is unused in ``netlist``."""
    if not netlist.has_signal(base):
        return base
    for i in itertools.count(1):
        candidate = f"{base}_{i}"
        if not netlist.has_signal(candidate):
            return candidate
    raise AssertionError("unreachable")


def retarget_readers(
    netlist: Netlist,
    old_signal: str,
    new_signal: str,
    only_cells: Optional[Set[str]] = None,
) -> int:
    """Rewire cells reading ``old_signal`` to read ``new_signal`` instead.

    Args:
        only_cells: if given, restrict the rewiring to cells whose output
            name is in this set (supports splitting a multi-pin net).

    Returns:
        Number of input pins rewired.
    """
    if not netlist.has_signal(new_signal):
        raise NetlistError(f"unknown signal {new_signal!r}")
    rewired = 0
    for cell in list(netlist.cells()):
        if old_signal not in cell.inputs:
            continue
        if only_cells is not None and cell.output not in only_cells:
            continue
        new_inputs = tuple(
            new_signal if sig == old_signal else sig for sig in cell.inputs
        )
        netlist.replace_cell(cell.with_inputs(new_inputs))
        rewired += cell.inputs.count(old_signal)
    return rewired


def insert_dff_on_net(
    netlist: Netlist,
    signal: str,
    only_cells: Optional[Set[str]] = None,
    dff_name: Optional[str] = None,
    retarget_outputs: bool = False,
) -> str:
    """Insert a DFF after ``signal`` and move (some) readers behind it.

    Creates ``dff_name = DFF(signal)`` and retargets the readers selected by
    ``only_cells`` (all readers when ``None``) to the new DFF output.  When
    ``retarget_outputs`` is true, primary outputs driven by ``signal`` are
    also moved behind the register.

    Returns:
        The name of the new DFF output signal.
    """
    if not netlist.has_signal(signal):
        raise NetlistError(f"unknown signal {signal!r}")
    name = dff_name or fresh_signal_name(netlist, f"{signal}__r")
    netlist.add_dff(name, signal)
    retarget_readers(netlist, signal, name, only_cells=only_cells)
    if retarget_outputs and signal in netlist.outputs:
        netlist.remove_output(signal)
        netlist.add_output(name)
    return name


def bypass_dff(netlist: Netlist, dff_output: str) -> str:
    """Remove the DFF driving ``dff_output``; readers see its data input.

    This is the elementary backward register move of retiming.  Returns the
    signal the readers were reconnected to.
    """
    cell = netlist.cell(dff_output)
    if not cell.is_dff:
        raise NetlistError(f"{dff_output!r} is not a DFF output")
    source = cell.inputs[0]
    netlist.remove_cell(dff_output)
    retarget_readers(netlist, dff_output, source)
    if dff_output in netlist.outputs:
        netlist.remove_output(dff_output)
        if source not in netlist.outputs:
            netlist.add_output(source)
    return source


def count_dffs_between(netlist: Netlist, chain_head: str) -> int:
    """Length of the pure DFF chain ending at signal ``chain_head``.

    Walks backwards while the driver is a DFF; useful for verifying that
    retiming preserved per-path register counts on simple pipelines.
    """
    count = 0
    sig = chain_head
    seen = set()
    while True:
        if sig in seen:  # cycle of DFFs
            break
        seen.add(sig)
        cell = netlist.driver(sig)
        if cell is None or not cell.is_dff:
            break
        count += 1
        sig = cell.inputs[0]
    return count
