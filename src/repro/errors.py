"""Exception hierarchy for the Merced PPET/retiming toolkit.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetlistError(ReproError):
    """Structural problem in a gate-level netlist (bad connectivity, names, ...)."""


class BenchParseError(NetlistError):
    """An ISCAS89 ``.bench`` file could not be parsed.

    Carries the failure position — ``source`` (file path or stream
    label), ``line_no``, and the offending ``line`` text — and is always
    raised ``from`` the underlying exception (when there is one), so
    tracebacks keep the original cause instead of swallowing it.
    """

    def __init__(
        self, message: str, line_no: int = 0, line: str = "", source: str = ""
    ):
        self.line_no = line_no
        self.line = line
        self.source = source
        if source and line_no:
            message = f"{source}:{line_no}: {message} ({line.strip()!r})"
        elif line_no:
            message = f"line {line_no}: {message} ({line.strip()!r})"
        elif source:
            message = f"{source}: {message}"
        super().__init__(message)


class AnalysisError(ReproError):
    """The static circuit linter found error-severity diagnostics.

    Raised by the entry gate in :meth:`repro.core.merced.Merced.run`
    when structural rules (undriven nets, combinational loops, dangling
    cones, ...) fail.  The rendered report is the exception message and
    the raw diagnostics ride along as ``exc.lint_diagnostics`` (a list
    of :meth:`repro.analysis.Diagnostic.as_dict` payloads) so sweep
    error rows and ``--stats-json`` stay machine-readable.
    """


class GraphError(ReproError):
    """Problem while building or querying the circuit graph."""


class PartitionError(ReproError):
    """The partitioning engine could not satisfy its constraints."""


class InfeasiblePartitionError(PartitionError):
    """No input-constraint partition exists for the requested ``l_k``.

    Raised, e.g., when a primitive cell has more inputs than ``l_k``
    (the paper's feasibility condition for the ``Make_Group`` loop).
    """


class RetimingError(ReproError):
    """A retiming request violates the legal-retiming conditions (Eq. 3/6)."""


class IllegalRetimingError(RetimingError):
    """The requested register placement has no legal retiming solution."""


class CBITError(ReproError):
    """Problem constructing or simulating CBIT/LFSR/MISR hardware."""


class SimulationError(ReproError):
    """Logic- or fault-simulation failure (x-state misuse, bad vector width, ...)."""


class ConfigError(ReproError):
    """Invalid Merced configuration parameter."""


class SweepError(ReproError):
    """A sweep point failed permanently (after the farm's retries).

    Sweeps never *raise* this for individual points — failed points
    surface as degraded :class:`repro.core.sweep.SweepErrorRow` rows so
    one infeasible or crashing configuration cannot sink a whole grid.
    It is raised only for farm-level misuse (e.g. unknown task kinds).
    """


class SweepTimeoutError(SweepError):
    """A sweep task exceeded the farm's per-task wall-clock budget.

    Enforced by :mod:`repro.exec.watchdog` — via ``SIGALRM`` on the main
    thread and an async-exception watchdog on worker threads — so the
    deadline fires no matter which thread runs the attempt.
    """


class ServiceError(ReproError):
    """Failure in the ``merced serve`` compile service or its client."""


class ServiceRejectedError(ServiceError):
    """The compile service refused a submission (HTTP status != 200).

    Raised by :class:`repro.service.client.ServiceClient` for
    backpressure rejections (429, with a ``retry_after`` hint in the
    payload), drain-mode refusals (503), and malformed submissions
    (400).  The raw response rides along as ``status`` / ``payload``.
    """

    def __init__(self, status: int, payload=None):
        self.status = status
        self.payload = payload if payload is not None else {}
        detail = ""
        if isinstance(self.payload, dict) and self.payload.get("error"):
            detail = f": {self.payload['error']}"
        super().__init__(f"service rejected request (HTTP {status}){detail}")
