"""Legality-checked move engine over a live partition.

The refinement tier's working state: a mutable view of an
``Assign_CBIT`` partition supporting **node relocations** between
clusters (the primitive both the annealer's membership swaps and its
cut relocations reduce to), with every proposal checked against the
paper's two feasibility budgets *before* it can be applied:

* **Eq. 5** — ``ι(ϖ) ≤ l_k`` for both touched clusters, floored (like
  the Eq. 6 budgets) at each cluster's own current ι so oversized
  ``assign_cbit`` merges stay movable without ever growing;
* **Eq. 6** — per-SCC cut budgets ``χ(λ) ≤ β·f(λ)``, tracked
  incrementally: a relocation can only flip the cut status of nets
  incident to the moved node, so the per-SCC charge is updated from
  those flips alone (the same accounting rule the BUD prechecks bound
  from below, measured here on the live partition).

Every membership change goes through
:meth:`repro.partition.clusters.Cluster.set_membership`, which refreshes
the cached ``input_count`` — apply and undo both, so the cache can never
go stale mid-refinement (``Partition.validate`` cross-checks it).

Determinism: all order-sensitive state (cut set, cluster table) lives in
insertion-ordered dicts and all exports sort by name, so the engine is
byte-deterministic regardless of ``PYTHONHASHSEED`` or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cbit.types import cbit_cost_for_inputs
from ..errors import PartitionError
from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.scc import SCCIndex
from ..partition.clusters import Cluster, Partition, cluster_input_nets

__all__ = ["MoveEngine", "MoveRecord"]


@dataclass
class MoveRecord:
    """Undo information for one applied relocation."""

    node: str
    from_cid: int
    to_cid: int
    #: (nodes, input_nets) of the source cluster before the move, or
    #: ``None`` when the move emptied and removed it.
    src_before: Tuple[FrozenSet[str], FrozenSet[str]]
    src_removed: bool
    #: (nodes, input_nets) of the target cluster before the move, or
    #: ``None`` when the move created it.
    dst_before: Optional[Tuple[FrozenSet[str], FrozenSet[str]]]
    #: net name → became-cut (True) / became-internal (False)
    flips: Tuple[Tuple[str, bool], ...]
    sigma_delta: float


class MoveEngine:
    """Incremental Eq. 4/5/6 bookkeeping for partition refinement."""

    def __init__(
        self,
        graph: CircuitGraph,
        scc_index: SCCIndex,
        partition: Partition,
        beta: int,
        locked: Optional[Set[str]] = None,
    ):
        self.graph = graph
        self.scc_index = scc_index
        self.lk = partition.lk
        self.beta = beta
        self.locked = frozenset(locked or ())
        # Working copies — the seed partition's clusters are never
        # mutated, so the caller can fall back to them unchanged.
        self.clusters: Dict[int, Cluster] = {}
        self.owner: Dict[str, int] = {}
        for c in partition.clusters:
            cl = Cluster(
                cluster_id=c.cluster_id,
                nodes=c.nodes,
                input_nets=c.input_nets,
            )
            self.clusters[cl.cluster_id] = cl
            for node in cl.nodes:
                self.owner[node] = cl.cluster_id
        self._next_cid = max(self.clusters, default=-1) + 1
        #: hard ι ceiling: moves ratchet per-cluster (max(l_k, current ι)),
        #: so no cluster can ever exceed the worst of l_k and the seed.
        self.iota_ceiling = max(
            [self.lk] + [c.input_count for c in self.clusters.values()]
        )

        #: insertion-ordered set of current cut nets (deterministic
        #: iteration order: seeded by sorted names, then move history).
        self.cut: Dict[str, None] = {}
        for name in sorted(n.name for n in self._candidate_nets()):
            if self._is_cut(name):
                self.cut[name] = None

        # Eq. 6 state: charged cuts per SCC and their budgets.  The
        # budget floors at the seed's own charge so a (rare) seed
        # already at or over β·f(λ) is admissible but can never be
        # worsened by a move.
        self.scc_cuts: Dict[int, int] = {}
        for name in self.cut:
            info = self.scc_index.scc_of_net(name)
            if info is not None:
                self.scc_cuts[info.scc_id] = (
                    self.scc_cuts.get(info.scc_id, 0) + 1
                )
        self.scc_budget: Dict[int, int] = {}
        for info in self.scc_index.sccs():
            self.scc_budget[info.scc_id] = max(
                info.cut_budget(beta), self.scc_cuts.get(info.scc_id, 0)
            )

        self.cluster_cost: Dict[int, float] = {
            cid: cbit_cost_for_inputs(c.input_count)[0]
            for cid, c in self.clusters.items()
        }
        self.sigma: float = sum(self.cluster_cost.values())

    # ------------------------------------------------------------------
    def _candidate_nets(self):
        """Nets that can ever be cut: comb-sourced with ≥ 1 comb sink."""
        for net in self.graph.nets():
            if self.graph.kind(net.source) is not NodeKind.COMB:
                continue
            if any(
                self.graph.kind(s) is NodeKind.COMB for s in net.sinks
            ):
                yield net

    def _is_cut(self, net_name: str) -> bool:
        net = self.graph.net(net_name)
        if self.graph.kind(net.source) is not NodeKind.COMB:
            return False
        src_cid = self.owner.get(net.source)
        for sink in net.sinks:
            if (
                self.graph.kind(sink) is NodeKind.COMB
                and self.owner.get(sink) != src_cid
            ):
                return True
        return False

    def _is_cut_hypo(self, net_name: str, moved: str, to_cid: int) -> bool:
        """Cut status of a net with ``moved`` hypothetically relocated."""
        net = self.graph.net(net_name)
        if self.graph.kind(net.source) is not NodeKind.COMB:
            return False
        src_cid = (
            to_cid if net.source == moved else self.owner.get(net.source)
        )
        for sink in net.sinks:
            if self.graph.kind(sink) is not NodeKind.COMB:
                continue
            cid = to_cid if sink == moved else self.owner.get(sink)
            if cid != src_cid:
                return True
        return False

    # ------------------------------------------------------------------
    @property
    def n_cuts(self) -> int:
        return len(self.cut)

    def movable_nodes(self) -> List[str]:
        """Relocatable nodes: cluster members that are not locked."""
        return sorted(n for n in self.owner if n not in self.locked)

    def new_cluster_id(self) -> int:
        """The id a relocation into a fresh cluster would use."""
        return self._next_cid

    def try_move(self, node: str, to_cid: int) -> Optional[MoveRecord]:
        """Relocate ``node`` to cluster ``to_cid`` if legal.

        ``to_cid == new_cluster_id()`` opens a fresh singleton cluster.
        Returns the applied :class:`MoveRecord` (pass to :meth:`undo`),
        or ``None`` when the move is illegal under Eq. 5/6 or a no-op —
        in which case **no state was modified**.
        """
        if node in self.locked or node not in self.owner:
            return None
        from_cid = self.owner[node]
        if to_cid == from_cid:
            return None
        src = self.clusters[from_cid]
        dst = self.clusters.get(to_cid)
        if dst is None and to_cid != self._next_cid:
            return None

        new_src_nodes = src.nodes - {node}
        new_dst_nodes = (dst.nodes if dst is not None else frozenset()) | {
            node
        }
        new_src_inputs = (
            frozenset(cluster_input_nets(self.graph, new_src_nodes))
            if new_src_nodes
            else frozenset()
        )
        new_dst_inputs = frozenset(
            cluster_input_nets(self.graph, new_dst_nodes)
        )
        # Eq. 5 precheck on the two touched clusters.  Like the Eq. 6
        # budget, the bound floors at the cluster's own current ι:
        # ``assign_cbit`` merges may legitimately exceed l_k (they pay
        # for it through the catalogue), so an oversized seed cluster
        # stays movable — but no move may push any cluster past
        # max(l_k, its ι before the move).
        if len(new_src_inputs) > max(self.lk, src.input_count):
            return None
        dst_cap = self.lk if dst is None else max(self.lk, dst.input_count)
        if len(new_dst_inputs) > dst_cap:
            return None

        # cut flips are confined to nets incident to the moved node
        flips: List[Tuple[str, bool]] = []
        seen: Set[str] = set()
        for net in self.graph.in_nets(node) + self.graph.out_nets(node):
            if net.name in seen:
                continue
            seen.add(net.name)
            was = net.name in self.cut
            now = self._is_cut_hypo(net.name, node, to_cid)
            if was != now:
                flips.append((net.name, now))

        # Eq. 6 precheck: apply the flip deltas to the per-SCC charges
        deltas: Dict[int, int] = {}
        for name, becomes_cut in flips:
            info = self.scc_index.scc_of_net(name)
            if info is not None:
                deltas[info.scc_id] = deltas.get(info.scc_id, 0) + (
                    1 if becomes_cut else -1
                )
        for scc_id, delta in deltas.items():
            if (
                self.scc_cuts.get(scc_id, 0) + delta
                > self.scc_budget[scc_id]
            ):
                return None

        # ---- commit ---------------------------------------------------
        record = MoveRecord(
            node=node,
            from_cid=from_cid,
            to_cid=to_cid,
            src_before=(src.nodes, src.input_nets),
            src_removed=not new_src_nodes,
            dst_before=(
                (dst.nodes, dst.input_nets) if dst is not None else None
            ),
            flips=tuple(flips),
            sigma_delta=0.0,
        )
        old_cost = self.cluster_cost[from_cid] + (
            self.cluster_cost.get(to_cid, 0.0)
        )
        if new_src_nodes:
            src.set_membership(new_src_nodes, new_src_inputs)
            self.cluster_cost[from_cid] = cbit_cost_for_inputs(
                src.input_count
            )[0]
        else:
            del self.clusters[from_cid]
            del self.cluster_cost[from_cid]
        if dst is None:
            dst = Cluster(
                cluster_id=to_cid,
                nodes=new_dst_nodes,
                input_nets=new_dst_inputs,
            )
            self.clusters[to_cid] = dst
            self._next_cid = to_cid + 1
        else:
            dst.set_membership(new_dst_nodes, new_dst_inputs)
        self.cluster_cost[to_cid] = cbit_cost_for_inputs(
            dst.input_count
        )[0]
        self.owner[node] = to_cid
        for name, becomes_cut in flips:
            if becomes_cut:
                self.cut[name] = None
            else:
                del self.cut[name]
        for scc_id, delta in deltas.items():
            self.scc_cuts[scc_id] = self.scc_cuts.get(scc_id, 0) + delta
        new_cost = self.cluster_cost.get(from_cid, 0.0) + (
            self.cluster_cost[to_cid]
        )
        record.sigma_delta = new_cost - old_cost
        self.sigma += record.sigma_delta
        return record

    def undo(self, record: MoveRecord) -> None:
        """Revert an applied move (LIFO with respect to :meth:`try_move`)."""
        node = record.node
        # target side first: shrink or drop the cluster we grew
        dst = self.clusters[record.to_cid]
        if record.dst_before is None:
            del self.clusters[record.to_cid]
            del self.cluster_cost[record.to_cid]
            self._next_cid = record.to_cid
        else:
            dst.set_membership(*record.dst_before)
            self.cluster_cost[record.to_cid] = cbit_cost_for_inputs(
                dst.input_count
            )[0]
        # source side: restore or resurrect
        src = self.clusters.get(record.from_cid)
        if src is None:
            src = Cluster(
                cluster_id=record.from_cid,
                nodes=record.src_before[0],
                input_nets=record.src_before[1],
            )
            self.clusters[record.from_cid] = src
        else:
            src.set_membership(*record.src_before)
        self.cluster_cost[record.from_cid] = cbit_cost_for_inputs(
            src.input_count
        )[0]
        self.owner[node] = record.from_cid
        for name, became_cut in record.flips:
            if became_cut:
                del self.cut[name]
            else:
                self.cut[name] = None
            info = self.scc_index.scc_of_net(name)
            if info is not None:
                self.scc_cuts[info.scc_id] += -1 if became_cut else 1
        self.sigma -= record.sigma_delta

    # ------------------------------------------------------------------
    def cut_nets(self) -> List[str]:
        """Current cut nets, sorted (solver-ready)."""
        return sorted(self.cut)

    def snapshot(self) -> Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]]:
        """Deep-enough copy of the cluster table for best-state tracking."""
        return {
            cid: (c.nodes, c.input_nets)
            for cid, c in self.clusters.items()
        }

    def export_partition(
        self,
        snapshot: Optional[
            Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]]
        ] = None,
        scc_index: Optional[SCCIndex] = None,
    ) -> Partition:
        """Materialise a fresh :class:`Partition` (ids renumbered 0..m-1)."""
        table = snapshot if snapshot is not None else self.snapshot()
        clusters = [
            Cluster(cluster_id=i, nodes=nodes, input_nets=inputs)
            for i, (_cid, (nodes, inputs)) in enumerate(
                sorted(table.items())
            )
        ]
        return Partition(
            self.graph,
            clusters,
            lk=self.lk,
            scc_index=scc_index or self.scc_index,
        )

    def sigma_of(
        self, snapshot: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]]
    ) -> float:
        """Eq. 4 cost of a snapshot (no engine state touched)."""
        return sum(
            cbit_cost_for_inputs(len(inputs))[0]
            for _nodes, inputs in snapshot.values()
        )

    # ------------------------------------------------------------------
    def assert_consistent(self) -> None:
        """Full recount of every incremental invariant (audit hook).

        Recomputes input nets, the cut set, the per-SCC charges, and Σ
        from scratch and compares them against the incremental state;
        also enforces Eq. 5 and the Eq. 6 budgets.  Raises
        :class:`~repro.errors.PartitionError` on the first divergence —
        the hypothesis property suite runs the annealer with this after
        every accepted move.
        """
        for cid, c in self.clusters.items():
            if c.input_count != len(c.input_nets):
                raise PartitionError(
                    f"cluster {cid}: cached input_count {c.input_count} "
                    f"!= {len(c.input_nets)} (stale cache)"
                )
            recount = cluster_input_nets(self.graph, c.nodes)
            if recount != set(c.input_nets):
                raise PartitionError(f"cluster {cid}: input nets stale")
            if c.input_count > self.iota_ceiling:
                raise PartitionError(
                    f"cluster {cid}: ι={c.input_count} > ceiling "
                    f"{self.iota_ceiling} (Eq. 5 ratchet violated)"
                )
        fresh_cuts = {
            n.name for n in self._candidate_nets() if self._is_cut(n.name)
        }
        if fresh_cuts != set(self.cut):
            raise PartitionError("incremental cut set diverged from recount")
        fresh_scc: Dict[int, int] = {}
        for name in fresh_cuts:
            info = self.scc_index.scc_of_net(name)
            if info is not None:
                fresh_scc[info.scc_id] = fresh_scc.get(info.scc_id, 0) + 1
        for scc_id, budget in self.scc_budget.items():
            have = self.scc_cuts.get(scc_id, 0)
            if have != fresh_scc.get(scc_id, 0):
                raise PartitionError(
                    f"SCC {scc_id}: incremental charge {have} != recount "
                    f"{fresh_scc.get(scc_id, 0)}"
                )
            if have > budget:
                raise PartitionError(
                    f"SCC {scc_id}: charge {have} > budget {budget} "
                    "(Eq. 6 violated)"
                )
        fresh_sigma = sum(
            cbit_cost_for_inputs(c.input_count)[0]
            for c in self.clusters.values()
        )
        if abs(fresh_sigma - self.sigma) > 1e-6:
            raise PartitionError(
                f"incremental Σ {self.sigma} != recount {fresh_sigma}"
            )
