"""Simulated-annealing refinement over the greedy partition.

Unlike the from-scratch SA baseline (:mod:`repro.baselines.annealing`,
the paper's reference [4] reimplementation), this pass *starts from the
``Assign_CBIT`` result* and explores legality-preserving perturbations
of it — every proposal is Eq. 5/6-prechecked by the
:class:`~repro.optimize.engine.MoveEngine` before it can be applied, so
the walk never leaves the feasible region the greedy construction
established.

**Move set** (drawn per step from the seeded RNG):

* *boundary move* — the Σ lever: pick a cluster sitting one input above
  a CBIT type boundary (ι ∈ {5, 9, 13, 17, 25, 33}) and relocate one of
  its members so it drops a catalogue type;
* *evict move* — drain one of the smallest clusters into its
  neighbours; the move that empties it deletes its whole ``p_k·n_k``
  term;
* *cut relocation* — pick a (preferably uncovered) cut net and pull its
  source into the sink's cluster or a comb sink into the source's
  cluster, turning the boundary crossing internal;
* *membership swap* — relocate a uniformly random comb node to a
  neighbour's cluster (or, rarely, a fresh singleton — the split move
  that lets two half-empty CBITs replace one big one).

**Acceptance.**  Metropolis on the total DFF-equivalent test area
(:func:`~repro.optimize.refine.refine_cost`); geometric cooling from
``t0 = max(1, Σ_seed/200)`` to ``0.01`` over the deterministic schedule
(:func:`~repro.optimize.refine.schedule_steps`).  The uncovered term
follows the re-retiming contract in :mod:`repro.optimize.refine`:
exact solves at the start, at budgeted checkpoints, and on the final
best state; a pessimistic estimate (unproven cut ⇒ uncovered) in
between.

**Guarantee.**  A state is only recorded as *best* when its Σ does not
exceed the greedy seed's and its total cost improves on the incumbent;
after the final exact solve the result is kept only if its exact cost
is no worse than the seed's, so the returned partition always
satisfies ``Σ_final ≤ Σ_greedy`` (the seed is the fallback).

Seeding goes through :func:`repro.circuits.generator.resolve_seed` —
one ``random.Random`` per call, no module-global RNG — so results are
byte-deterministic for a given ``(netlist, config)`` at any ``--jobs``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set

from ..circuits.generator import resolve_seed
from ..config import MercedConfig
from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.paths import WeightedEdge, register_weighted_edges
from ..graphs.scc import SCCIndex
from ..partition.clusters import Partition
from .engine import MoveEngine
from .refine import (
    OptimizeResult,
    estimate_retime_seconds,
    refine_cost,
    retime_cuts,
    schedule_steps,
    unchanged_result,
)

__all__ = ["anneal_refine"]

#: Cluster input counts one step above a CBIT type boundary — a single
#: shed input drops the cluster a whole catalogue type.
_BOUNDARY_IOTAS = frozenset({5, 9, 13, 17, 25, 33})
#: Probability a swap move opens a fresh singleton cluster instead of
#: targeting a neighbour's cluster.
_P_FRESH_CLUSTER = 0.05
#: Cumulative move-kind thresholds: boundary / evict / cut / swap.
_W_BOUNDARY = 0.30
_W_EVICT = 0.50
_W_CUT = 0.80
_T_END = 0.01
#: At most this many mid-run exact re-solves (plus initial and final).
_MAX_CHECKPOINTS = 6


def anneal_refine(
    graph: CircuitGraph,
    scc_index: SCCIndex,
    partition: Partition,
    config: MercedConfig,
    name: str = "",
    edges: Optional[Sequence[WeightedEdge]] = None,
    locked: Optional[Set[str]] = None,
    solver: str = "auto",
    audit: bool = False,
) -> OptimizeResult:
    """Refine ``partition`` by legality-checked simulated annealing.

    Args:
        graph: the circuit graph the partition lives on.
        scc_index: its SCC index (Eq. 6 budgets).
        partition: the greedy seed (``Assign_CBIT`` output).
        config: supplies ``l_k``, ``beta``, ``seed``, and the
            ``optimize_budget`` driving the schedule length.
        name: circuit name, folded into the seed resolution so
            different circuits explore differently under the default
            seed.
        edges: precomputed ``register_weighted_edges(graph)`` to reuse
            (computed once here otherwise and shared by every re-solve).
        locked: node names the annealer must not relocate.
        solver: retiming backend for the inner re-solves (``"mcf"``
            solutions are verified as legal minimal covers).
        audit: run :meth:`MoveEngine.assert_consistent` after every
            accepted move (the property-test hook; quadratic, tests
            only).
    """
    if edges is None:
        edges = register_weighted_edges(graph)
    engine = MoveEngine(
        graph, scc_index, partition, beta=config.beta, locked=locked
    )
    rng = random.Random(resolve_seed(f"optimize:{name}", config.seed))

    movable = [
        n
        for n in engine.movable_nodes()
        if graph.kind(n) is NodeKind.COMB
    ]
    sigma0 = engine.sigma
    cuts0 = engine.n_cuts
    solution = retime_cuts(graph, engine.cut_nets(), edges, solver)
    uncovered0 = len(solution.dropped_cuts)
    n_retimes = 1
    # nets the last exact solve proved free (covered or unconstrained);
    # everything else in the live cut set is charged as uncovered
    known_ok = set(solution.covered_cuts) | set(solution.unconstrained_cuts)

    # budget split: half for proposals, half for exact re-solves (the
    # initial and final ones are mandatory; extras become checkpoints)
    n_steps = schedule_steps(
        config.optimize_budget / 2.0, len(engine.owner), cuts0
    )
    retime_cost = estimate_retime_seconds(len(edges), cuts0)
    n_checkpoints = max(
        0,
        min(
            _MAX_CHECKPOINTS,
            int(config.optimize_budget / 2.0 / retime_cost) - 2,
        ),
    )
    checkpoint_every = (
        n_steps // (n_checkpoints + 1) if n_checkpoints else n_steps + 1
    )

    def est_uncovered() -> int:
        return sum(1 for net in engine.cut if net not in known_ok)

    current = refine_cost(sigma0, cuts0, uncovered0)
    best_cost = current
    best_snapshot = None  # None ⇒ seed still best

    t0 = max(1.0, sigma0 / 200.0)
    alpha = (_T_END / t0) ** (1.0 / max(1, n_steps - 1))
    temp = t0
    n_proposed = 0
    n_accepted = 0

    for step in range(1, n_steps + 1):
        temp *= alpha
        record = _propose(engine, graph, rng, movable, known_ok)
        if record is not None:
            n_proposed += 1
            candidate = refine_cost(
                engine.sigma, engine.n_cuts, est_uncovered()
            )
            delta = candidate - current
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temp, 1e-9)
            ):
                current = candidate
                n_accepted += 1
                if audit:
                    engine.assert_consistent()
                # Σ-guarded best tracking: never admit a state that
                # trades catalogue area for coverage past the seed.
                if (
                    engine.sigma <= sigma0 + 1e-9
                    and candidate < best_cost - 1e-9
                ):
                    best_cost = candidate
                    best_snapshot = engine.snapshot()
            else:
                engine.undo(record)
        if step % checkpoint_every == 0 and step < n_steps:
            solution = retime_cuts(
                graph, engine.cut_nets(), edges, solver
            )
            n_retimes += 1
            known_ok = set(solution.covered_cuts) | set(
                solution.unconstrained_cuts
            )
            current = refine_cost(
                engine.sigma, engine.n_cuts, len(solution.dropped_cuts)
            )

    if best_snapshot is None:
        return unchanged_result(
            "anneal",
            partition,
            sigma0,
            cuts0,
            uncovered0,
            n_steps,
            n_proposed=n_proposed,
            n_retimes=n_retimes,
        )

    # final exact solve on the best state; keep it only if its exact
    # cost holds up against the seed's
    refined = engine.export_partition(best_snapshot, scc_index)
    final_cuts = refined.cut_nets()
    final_solution = retime_cuts(graph, final_cuts, edges, solver)
    n_retimes += 1
    sigma_best = engine.sigma_of(best_snapshot)
    uncovered_best = len(final_solution.dropped_cuts)
    exact_best = refine_cost(sigma_best, len(final_cuts), uncovered_best)
    if exact_best > refine_cost(sigma0, cuts0, uncovered0) + 1e-9:
        return unchanged_result(
            "anneal",
            partition,
            sigma0,
            cuts0,
            uncovered0,
            n_steps,
            n_proposed=n_proposed,
            n_retimes=n_retimes,
        )
    return OptimizeResult(
        method="anneal",
        partition=refined,
        sigma_before=sigma0,
        sigma_after=sigma_best,
        cuts_before=cuts0,
        cuts_after=len(final_cuts),
        uncovered_before=uncovered0,
        uncovered_after=uncovered_best,
        n_steps=n_steps,
        n_proposed=n_proposed,
        n_accepted=n_accepted,
        n_retimes=n_retimes,
    )


# ----------------------------------------------------------------------
# move proposals


def _propose(engine, graph, rng, movable, known_ok):
    """Draw one move kind and build its proposal (None when infeasible)."""
    roll = rng.random()
    if roll < _W_BOUNDARY:
        return _propose_boundary(engine, graph, rng)
    if roll < _W_EVICT:
        return _propose_evict(engine, graph, rng)
    if roll < _W_CUT and engine.cut:
        return _propose_cut_move(engine, graph, rng, known_ok)
    if movable:
        return _propose_swap(engine, graph, rng, movable)
    return None


def _neighbour_clusters(engine, graph, node) -> List[int]:
    """Clusters adjacent to ``node``, excluding its own (sorted)."""
    own = engine.owner.get(node)
    cids = set()
    for nb in graph.predecessors(node) + graph.successors(node):
        cid = engine.owner.get(nb)
        if cid is not None and cid != own:
            cids.add(cid)
    return sorted(cids)


def _propose_boundary(engine, graph, rng):
    """Shed one input from a cluster one step above a type boundary."""
    cids = sorted(
        cid
        for cid, c in engine.clusters.items()
        if c.input_count in _BOUNDARY_IOTAS
    )
    if not cids:
        return None
    cluster = engine.clusters[cids[rng.randrange(len(cids))]]
    members = sorted(
        n for n in cluster.nodes if graph.kind(n) is NodeKind.COMB
    )
    if not members:
        return None
    node = members[rng.randrange(len(members))]
    targets = _neighbour_clusters(engine, graph, node)
    if not targets:
        return None
    return engine.try_move(node, targets[rng.randrange(len(targets))])


def _propose_evict(engine, graph, rng):
    """Drain a small cluster: relocate one member to a neighbour."""
    by_size = sorted(
        (len(c.nodes), cid) for cid, c in engine.clusters.items()
    )
    if len(by_size) < 2:
        return None
    # one of the three smallest, size-biased toward the smallest
    _size, cid = by_size[rng.randrange(min(3, len(by_size)))]
    members = sorted(
        n
        for n in engine.clusters[cid].nodes
        if graph.kind(n) is NodeKind.COMB
    )
    if not members:
        return None
    node = members[rng.randrange(len(members))]
    targets = _neighbour_clusters(engine, graph, node)
    if not targets:
        return None
    return engine.try_move(node, targets[rng.randrange(len(targets))])


def _propose_cut_move(engine, graph, rng, known_ok):
    """Pull one side of a cut net (uncovered preferred) across."""
    uncovered = [net for net in engine.cut if net not in known_ok]
    pool = uncovered if uncovered else list(engine.cut)
    net = graph.net(pool[rng.randrange(len(pool))])
    src_cid = engine.owner.get(net.source)
    comb_sinks = sorted(
        s
        for s in net.sinks
        if graph.kind(s) is NodeKind.COMB
        and engine.owner.get(s) != src_cid
    )
    if not comb_sinks:
        return None
    sink = comb_sinks[rng.randrange(len(comb_sinks))]
    if rng.random() < 0.5:
        return engine.try_move(net.source, engine.owner[sink])
    if src_cid is None:
        return None
    return engine.try_move(sink, src_cid)


def _propose_swap(engine, graph, rng, movable):
    """Relocate a random comb node to a neighbour's (or fresh) cluster."""
    node = movable[rng.randrange(len(movable))]
    if node not in engine.owner:  # pragma: no cover - defensive
        return None
    if rng.random() < _P_FRESH_CLUSTER:
        return engine.try_move(node, engine.new_cluster_id())
    targets = _neighbour_clusters(engine, graph, node)
    if not targets:
        return None
    return engine.try_move(node, targets[rng.randrange(len(targets))])
