"""Shared plumbing of the refinement tier: cost model, schedules, results.

**Cost.**  The objective both variants minimise is the DFF-equivalent
test-hardware area

    cost = Σ  +  0.01 · |cuts|  +  2.3 · |uncovered cuts|

where Σ = Σ p_k·n_k is the CBIT catalogue cost (Eq. 4).  A *covered*
cut shares a retimed existing DFF, so it costs (almost) nothing — the
ε = 0.01 term only breaks ties inside catalogue plateaus so Σ-neutral
walks don't silently bloat the cut set.  A cut the retiming could
*not* cover pays a full MUXed A_CELL (0.9 + 1.4 = 2.3 DFF
equivalents) — the same per-cell areas the BIST inserter charges.

**Budget → schedule.**  ``optimize_budget`` (seconds) is converted into
a move-schedule length by a fixed calibration formula over the circuit
size only, so the schedule — and therefore the result — is a pure
function of ``(netlist, config)``: byte-identical on any host, at any
``--jobs``, cacheable under :func:`repro.exec.hashing.point_key`.  The
budget is advisory; a slow host overshoots the wall clock instead of
changing the answer.

**Re-retiming contract.**  One exact solve
(:func:`~repro.retiming.solve.solve_cut_retiming` with a precomputed
``register_weighted_edges`` list — the warm-start hook the incremental
solver exposes) runs at the start, at deterministic mid-run
checkpoints the budget can afford (:func:`estimate_retime_seconds`),
and once on the final best state, so every *reported* number is exact.
Between checkpoints the uncovered term is estimated pessimistically:
any current cut the last solve did not prove covered (or
unconstrained) is charged as uncovered, so the walk can only be
surprised favourably.  With ``solver="mcf"`` each solution's drop set
is additionally verified as a legal minimal cover
(:func:`repro.retiming.verify.verify_drop_set`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..errors import RetimingError
from ..graphs.digraph import CircuitGraph
from ..graphs.paths import WeightedEdge
from ..partition.clusters import Partition
from ..retiming.solve import RetimingSolution, solve_cut_retiming
from ..retiming.verify import verify_drop_set

__all__ = [
    "ACELL_DFF",
    "CUT_EPSILON",
    "MUX_PREMIUM_DFF",
    "UNCOVERED_DFF",
    "OptimizeResult",
    "estimate_retime_seconds",
    "refine_cost",
    "schedule_steps",
    "retime_cuts",
]

#: DFF-equivalent area of one A_CELL test register.
ACELL_DFF = 0.9
#: Extra DFF equivalents for the MUXed A_CELL an uncovered cut keeps.
MUX_PREMIUM_DFF = 1.4
#: Full area charge of an uncovered cut (MUXed A_CELL).
UNCOVERED_DFF = ACELL_DFF + MUX_PREMIUM_DFF
#: Plateau tie-breaker per constrained cut (covered cuts are otherwise
#: free — they share a retimed existing DFF).
CUT_EPSILON = 0.01


def refine_cost(sigma: float, n_cuts: int, n_dropped: int) -> float:
    """Total DFF-equivalent test area of a refinement state."""
    return sigma + CUT_EPSILON * n_cuts + UNCOVERED_DFF * n_dropped


def schedule_steps(budget_seconds: float, n_nodes: int, n_cuts: int) -> int:
    """Deterministic move-schedule length for a wall-clock budget.

    Calibrated cost of one proposal on a reference host: two cluster
    input-net recounts plus (amortised) one warm-started re-retime —
    linear in circuit size and cut count.  Clamped so tiny circuits
    still explore and huge ones cannot run away.
    """
    per_move = 2.5e-4 + 1.5e-6 * (n_nodes + 8 * n_cuts)
    return max(64, min(50_000, int(budget_seconds / per_move)))


def estimate_retime_seconds(n_edges: int, n_cuts: int) -> float:
    """Deterministic wall-clock estimate of one cut-retiming solve.

    Calibrated on the bundled ISCAS'89 circuits (s510 ≈ 1.1 s at
    454 edges / 105 cuts, s1423 ≈ 10 s at 1368 / 337): the greedy
    drop loop re-solves feasibility per dropped cut, so cost scales
    with ``edges × cuts``.  Used to decide how many *exact* re-retimes
    the ``optimize_budget`` can afford — the schedule itself stays a
    pure function of circuit size, never of measured time.
    """
    return 2e-5 * n_edges * max(1, n_cuts)


def retime_cuts(
    graph: CircuitGraph,
    cut_nets: Sequence[str],
    edges: Sequence[WeightedEdge],
    solver: str = "auto",
) -> RetimingSolution:
    """One warm-started cut-retiming solve for the refinement loop.

    Raises:
        RetimingError: ``solver="mcf"`` produced a drop set that fails
            the legal-minimal-cover contract (never observed; the check
            is the guard that makes the experimental backend admissible
            inside the anneal loop).
    """
    solution = solve_cut_retiming(
        graph, cut_nets, edges=edges, solver=solver
    )
    if solver == "mcf":
        problem = verify_drop_set(
            graph, cut_nets, solution, edges=edges, minimal=True
        )
        if problem is not None:
            raise RetimingError(
                f"mcf drop set failed verification mid-refinement: {problem}"
            )
    return solution


@dataclass
class OptimizeResult:
    """Outcome of one refinement pass (either variant).

    ``partition`` is the best legal state found — never worse than the
    greedy seed under Σ (the seed itself is the fallback).  All counters
    are deterministic; ``stats()`` is the payload slice the sweep farm
    and the service report.
    """

    method: str
    partition: Partition
    sigma_before: float
    sigma_after: float
    cuts_before: int
    cuts_after: int
    uncovered_before: int
    uncovered_after: int
    n_steps: int
    n_proposed: int
    n_accepted: int
    n_retimes: int

    @property
    def improved(self) -> bool:
        return (
            self.sigma_after < self.sigma_before
            or self.cost_after < self.cost_before
        )

    @property
    def cost_before(self) -> float:
        return refine_cost(
            self.sigma_before, self.cuts_before, self.uncovered_before
        )

    @property
    def cost_after(self) -> float:
        return refine_cost(
            self.sigma_after, self.cuts_after, self.uncovered_after
        )

    def stats(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (no wall-clock times)."""
        return {
            "method": self.method,
            "sigma_before": round(self.sigma_before, 4),
            "sigma_after": round(self.sigma_after, 4),
            "sigma_delta": round(self.sigma_after - self.sigma_before, 4),
            "cuts_before": self.cuts_before,
            "cuts_after": self.cuts_after,
            "uncovered_before": self.uncovered_before,
            "uncovered_after": self.uncovered_after,
            "cost_before": round(self.cost_before, 4),
            "cost_after": round(self.cost_after, 4),
            "n_steps": self.n_steps,
            "n_proposed": self.n_proposed,
            "n_accepted": self.n_accepted,
            "n_retimes": self.n_retimes,
        }


def unchanged_result(
    method: str,
    partition: Partition,
    sigma: float,
    n_cuts: int,
    uncovered: int,
    n_steps: int,
    n_proposed: int = 0,
    n_retimes: int = 1,
) -> OptimizeResult:
    """An :class:`OptimizeResult` reporting the seed state untouched."""
    return OptimizeResult(
        method=method,
        partition=partition,
        sigma_before=sigma,
        sigma_after=sigma,
        cuts_before=n_cuts,
        cuts_after=n_cuts,
        uncovered_before=uncovered,
        uncovered_after=uncovered,
        n_steps=n_steps,
        n_proposed=n_proposed,
        n_accepted=0,
        n_retimes=n_retimes,
    )
