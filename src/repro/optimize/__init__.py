"""Post-``Assign_CBIT`` partition refinement (``--optimize`` tier).

The greedy construction (:func:`repro.partition.assign_cbit`) is a
single forward pass: once a node lands in a cluster it never moves,
even when a later cluster could absorb it and delete a cut (plus its
A_CELL) or shrink a CBIT type.  This package revisits that result with
legality-preserving local search:

* :func:`fast_refine` — deterministic greedy cut-absorption sweeps,
  strictly improving moves only (cheap; no RNG);
* :func:`anneal_refine` — seeded simulated annealing over membership
  swaps and cut relocations with Metropolis acceptance on the total
  DFF-equivalent test area.

Both run on the :class:`MoveEngine`, which prechecks every proposal
against Eq. 5 (ι ≤ l_k) and the Eq. 6 per-SCC cut budgets and keeps
Σ (Eq. 4), the live cut set, and the per-SCC charges incrementally.
Accepted cut-set changes are re-retimed through the warm-started
solver so the uncovered-cut term is exact.  The returned partition is
guaranteed ``Σ ≤ Σ_greedy`` (the seed is the fallback).

Entry point: :func:`optimize_partition`, dispatching on
``config.optimize`` (``"fast"`` / ``"anneal"``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from ..config import ConfigError, MercedConfig
from ..graphs.digraph import CircuitGraph
from ..graphs.paths import WeightedEdge, register_weighted_edges
from ..graphs.scc import SCCIndex
from ..partition.clusters import Partition
from .anneal import anneal_refine
from .engine import MoveEngine, MoveRecord
from .fast import fast_refine
from .refine import (
    ACELL_DFF,
    MUX_PREMIUM_DFF,
    OptimizeResult,
    refine_cost,
    retime_cuts,
    schedule_steps,
)

__all__ = [
    "ACELL_DFF",
    "MUX_PREMIUM_DFF",
    "MoveEngine",
    "MoveRecord",
    "OptimizeResult",
    "anneal_refine",
    "fast_refine",
    "optimize_partition",
    "refine_cost",
    "retime_cuts",
    "schedule_steps",
]

_VARIANTS = {"fast": fast_refine, "anneal": anneal_refine}


def optimize_partition(
    graph: CircuitGraph,
    scc_index: SCCIndex,
    partition: Partition,
    config: MercedConfig,
    name: str = "",
    edges: Optional[Sequence[WeightedEdge]] = None,
    locked: Optional[Set[str]] = None,
    solver: str = "auto",
    audit: bool = False,
) -> OptimizeResult:
    """Run the refinement variant selected by ``config.optimize``.

    Raises:
        ConfigError: ``config.optimize`` is ``None`` or unknown — the
            caller should gate on ``config.optimize`` before calling.
    """
    variant = _VARIANTS.get(config.optimize or "")
    if variant is None:
        raise ConfigError(
            f"optimize_partition called with config.optimize="
            f"{config.optimize!r}; expected one of {sorted(_VARIANTS)}"
        )
    if edges is None:
        edges = register_weighted_edges(graph)
    return variant(
        graph,
        scc_index,
        partition,
        config,
        name=name,
        edges=edges,
        locked=locked,
        solver=solver,
        audit=audit,
    )
