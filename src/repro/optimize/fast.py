"""Timing-aware greedy refinement — the cheap ``--optimize fast`` tier.

No RNG and no hill climbing: deterministic sweeps over the current cut
nets, trying for each the two relocations that could absorb the cut
(pull the source into a comb sink's cluster, or a comb sink into the
source's cluster) and keeping a move only when it *strictly* improves
``(Σ, |cuts|)`` lexicographically.  Illegal or non-improving moves are
undone through the engine, so the state after every sweep is legal
under Eq. 5/6 by construction.

*Timing-aware ordering*: cuts whose net lies inside an SCC are tried
first (smallest Eq. 6 slack first) — those sit on sequential feedback
cycles where an absorbed cut both frees scarce χ(λ) budget and removes
an A_CELL from the cycle's timing path; acyclic cuts follow in name
order.  The proposal budget comes from the same deterministic
:func:`~repro.optimize.refine.schedule_steps` calibration the annealer
uses, and the loop stops early once a full sweep keeps nothing.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from ..config import MercedConfig
from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.paths import WeightedEdge, register_weighted_edges
from ..graphs.scc import SCCIndex
from ..partition.clusters import Partition
from .engine import MoveEngine
from .refine import OptimizeResult, retime_cuts, schedule_steps

__all__ = ["fast_refine"]


def fast_refine(
    graph: CircuitGraph,
    scc_index: SCCIndex,
    partition: Partition,
    config: MercedConfig,
    name: str = "",
    edges: Optional[Sequence[WeightedEdge]] = None,
    locked: Optional[Set[str]] = None,
    solver: str = "auto",
    audit: bool = False,
) -> OptimizeResult:
    """Greedy cut-absorption sweeps; strictly improving moves only.

    Same signature as :func:`~repro.optimize.anneal.anneal_refine` so
    the dispatcher can treat the two variants interchangeably (``name``
    is unused — there is no RNG to seed).
    """
    del name  # no RNG in the fast tier
    if edges is None:
        edges = register_weighted_edges(graph)
    engine = MoveEngine(
        graph, scc_index, partition, beta=config.beta, locked=locked
    )

    sigma0 = engine.sigma
    cuts0 = engine.n_cuts
    solution = retime_cuts(graph, engine.cut_nets(), edges, solver)
    uncovered0 = len(solution.dropped_cuts)
    n_retimes = 1
    max_proposals = schedule_steps(
        config.optimize_budget, len(engine.owner), cuts0
    )

    n_proposed = 0
    n_accepted = 0
    changed_since_retime = False
    while n_proposed < max_proposals:
        kept_this_sweep = 0
        for net_name in _sweep_order(engine, scc_index):
            if n_proposed >= max_proposals:
                break
            for node, to_cid in _absorption_moves(engine, graph, net_name):
                if n_proposed >= max_proposals:
                    break
                before = (engine.sigma, engine.n_cuts)
                record = engine.try_move(node, to_cid)
                n_proposed += 1
                if record is None:
                    continue
                after = (engine.sigma, engine.n_cuts)
                if after < before:
                    n_accepted += 1
                    kept_this_sweep += 1
                    changed_since_retime = changed_since_retime or bool(
                        record.flips
                    )
                    if audit:
                        engine.assert_consistent()
                    break  # cut handled; next cut
                engine.undo(record)
        if kept_this_sweep == 0:
            break

    if changed_since_retime:
        solution = retime_cuts(graph, engine.cut_nets(), edges, solver)
        n_retimes += 1
    refined = engine.export_partition(scc_index=scc_index)
    return OptimizeResult(
        method="fast",
        partition=refined,
        sigma_before=sigma0,
        sigma_after=engine.sigma,
        cuts_before=cuts0,
        cuts_after=engine.n_cuts,
        uncovered_before=uncovered0,
        uncovered_after=len(solution.dropped_cuts),
        n_steps=max_proposals,
        n_proposed=n_proposed,
        n_accepted=n_accepted,
        n_retimes=n_retimes,
    )


def _sweep_order(engine: MoveEngine, scc_index: SCCIndex):
    """Current cuts, SCC-internal first by remaining Eq. 6 slack."""
    on_scc = []
    acyclic = []
    for net_name in engine.cut_nets():
        info = scc_index.scc_of_net(net_name)
        if info is None:
            acyclic.append(net_name)
        else:
            slack = engine.scc_budget[info.scc_id] - engine.scc_cuts.get(
                info.scc_id, 0
            )
            on_scc.append((slack, net_name))
    on_scc.sort()
    return [name for _slack, name in on_scc] + acyclic


def _absorption_moves(engine: MoveEngine, graph: CircuitGraph, net_name: str):
    """Candidate relocations that could make ``net_name`` internal."""
    if net_name not in engine.cut:  # absorbed by an earlier move
        return
    net = graph.net(net_name)
    src_cid = engine.owner.get(net.source)
    comb_sinks = sorted(
        s
        for s in net.sinks
        if graph.kind(s) is NodeKind.COMB
        and engine.owner.get(s) != src_cid
    )
    for sink in comb_sinks:
        yield net.source, engine.owner[sink]
    if src_cid is not None:
        for sink in comb_sinks:
            yield sink, src_cid
