"""Per-stage wall-clock timers and hot-path counters for the Merced pipeline.

The compiler's cost model (Tables 10/11 report CPU seconds) and the
ROADMAP's performance goals both need *observability*: where does a run
spend its time, how many Dijkstra trees did ``Saturate_Network`` grow, how
many edge relaxations did they perform, how many nets were cut, how many
merge candidates did ``Assign_CBIT`` score.  This module provides a small,
dependency-free tracing facility:

* :class:`PerfTrace` — an accumulator of named stages (wall-clock seconds
  + call counts) and named counters, serializable to JSON;
* a module-level *active trace*: instrumented code calls :func:`stage` /
  :func:`count`, which are near-zero-cost no-ops until a trace is
  activated (one ``is None`` check);
* :func:`profiled` — a context manager that activates a fresh trace for
  the duration of a block and hands it back.

Instrumentation convention: hot loops accumulate plain local integers and
report them with **one** :func:`count` call per run, so tracing never
perturbs the inner loops it measures.

Example:
    >>> from repro.perf import profiled
    >>> with profiled("demo") as trace:
    ...     from repro.perf import stage, count
    ...     with stage("work"):
    ...         count("widgets", 3)
    >>> trace.counters["widgets"]
    3
    >>> "work" in trace.to_dict()["stages"]
    True
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "PerfTrace",
    "LatencyHistogram",
    "activate",
    "deactivate",
    "current_trace",
    "profiled",
    "stage",
    "count",
    "current_stage",
    "failed_stage",
    "clear_failed_stage",
]


class PerfTrace:
    """Accumulator of per-stage wall-clock timings and named counters.

    Attributes:
        label: free-form run label (circuit name, bench id, ...).
        stages: stage name → ``{"seconds": float, "calls": int}``.
        counters: counter name → accumulated integer value.
        meta: free-form scalar metadata merged into the JSON trace.
    """

    def __init__(self, label: str = ""):
        self.label = label
        self.stages: Dict[str, Dict[str, float]] = {}
        self.counters: Dict[str, int] = {}
        self.meta: Dict[str, object] = {}
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one pipeline stage; nested/repeated entries accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            slot = self.stages.setdefault(name, {"seconds": 0.0, "calls": 0})
            slot["seconds"] += elapsed
            slot["calls"] += 1

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def add_stage(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold an externally measured duration into stage ``name``.

        The :meth:`stage` context manager times a block in the current
        thread; ``add_stage`` is for callers that measured the interval
        themselves (e.g. the compile service timing a request across an
        executor hop) and just need it accumulated.
        """
        slot = self.stages.setdefault(name, {"seconds": 0.0, "calls": 0})
        slot["seconds"] += seconds
        slot["calls"] += calls

    def set_meta(self, **kwargs) -> None:
        """Attach scalar metadata (circuit name, l_k, seed, ...)."""
        self.meta.update(kwargs)

    def merge(self, data: Dict[str, object]) -> None:
        """Fold another trace's :meth:`to_dict` into this one.

        Stage seconds/call counts and counters accumulate; the other
        trace's label and metadata are ignored.  This is how the sweep
        farm aggregates per-worker traces into the parent process's
        trace, so ``merced sweep --profile`` reports totals across
        processes.

        Example:
            >>> a, b = PerfTrace("a"), PerfTrace("b")
            >>> with b.stage("work"):
            ...     b.count("widgets", 2)
            >>> a.merge(b.to_dict())
            >>> a.counters["widgets"], int(a.stages["work"]["calls"])
            (2, 1)
        """
        for name, slot in data.get("stages", {}).items():
            mine = self.stages.setdefault(name, {"seconds": 0.0, "calls": 0})
            mine["seconds"] += float(slot.get("seconds", 0.0))
            mine["calls"] += int(slot.get("calls", 0))
        for name, value in data.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds since the trace was created."""
        return time.perf_counter() - self._t0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view of the trace (stable key order for JSON)."""
        return {
            "label": self.label,
            "total_seconds": self.total_seconds,
            "stages": {
                name: {
                    "seconds": slot["seconds"],
                    "calls": int(slot["calls"]),
                }
                for name, slot in self.stages.items()
            },
            "counters": dict(self.counters),
            "meta": dict(self.meta),
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path) -> None:
        """Write the JSON trace to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def render(self) -> str:
        """Human-readable one-stage-per-line summary."""
        lines = [f"perf trace {self.label or '(unlabelled)'}:"]
        for name, slot in sorted(
            self.stages.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"  {name:<16} {slot['seconds'] * 1e3:>10.2f} ms"
                f"  ({int(slot['calls'])} call(s))"
            )
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name:<24} {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PerfTrace {self.label!r}: {len(self.stages)} stages, "
            f"{len(self.counters)} counters>"
        )


class LatencyHistogram:
    """Geometric-bucket latency histogram with p50/p99 estimation.

    Buckets grow by a fixed ``growth`` factor from a ``floor_s`` lower
    bound — 48 buckets at the defaults span ~20 µs to ~80 s, plenty for
    a compile service whose responses range from in-memory hot-cache
    splices to multi-second cold compiles.  Percentiles interpolate
    linearly inside the winning bucket, so they are estimates with
    bounded relative error (one ``growth`` step), not exact order
    statistics — the right trade for an always-on service counter.

    Histograms with identical geometry **merge** by bucket-wise
    addition; the fleet router uses this to aggregate per-shard
    ``/metrics`` histograms into one fleet-wide p50/p99.  Callers
    provide thread-safety (the service metrics lock); the class itself
    is plain counters.

    Example:
        >>> h = LatencyHistogram()
        >>> for ms in (1, 1, 2, 100):
        ...     h.observe(ms / 1000.0)
        >>> h.count
        4
        >>> 0.0005 < h.percentile(50) < 0.004
        True
        >>> 0.03 < h.percentile(99) < 0.3
        True
    """

    def __init__(
        self,
        floor_s: float = 2e-5,
        growth: float = 1.6,
        n_buckets: int = 48,
    ):
        if floor_s <= 0 or growth <= 1.0 or n_buckets < 2:
            raise ValueError("invalid histogram geometry")
        self.floor_s = floor_s
        self.growth = growth
        self.n_buckets = n_buckets
        self.buckets: List[int] = [0] * n_buckets
        self.count = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def _bucket_of(self, seconds: float) -> int:
        if seconds <= self.floor_s:
            return 0
        import math

        index = int(math.log(seconds / self.floor_s, self.growth)) + 1
        return min(index, self.n_buckets - 1)

    def _upper_bound(self, index: int) -> float:
        return self.floor_s * (self.growth ** index)

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        self.buckets[self._bucket_of(seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile in seconds (0 with no samples)."""
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index, n in enumerate(self.buckets):
            if not n:
                continue
            if seen + n >= rank:
                lower = self._upper_bound(index - 1) if index else 0.0
                upper = min(self._upper_bound(index), self.max_seconds)
                if upper < lower:
                    upper = lower
                fraction = (rank - seen) / n
                return lower + (upper - lower) * fraction
            seen += n
        return self.max_seconds

    def merge(self, data: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`as_dict` into this one.

        Raises ``ValueError`` on mismatched geometry — merging buckets
        measured on different scales would silently corrupt percentiles.
        """
        geometry = data.get("geometry", {})
        mine = (self.floor_s, self.growth, self.n_buckets)
        theirs = (
            geometry.get("floor_s"),
            geometry.get("growth"),
            geometry.get("n_buckets"),
        )
        if mine != theirs:
            raise ValueError(
                f"histogram geometry mismatch: {mine} != {theirs}"
            )
        for index, n in enumerate(data.get("buckets", [])):
            self.buckets[index] += int(n)
        self.count += int(data.get("count", 0))
        self.sum_seconds += float(data.get("sum_seconds", 0.0))
        self.max_seconds = max(
            self.max_seconds, float(data.get("max_seconds", 0.0))
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: summary percentiles + raw buckets."""
        return {
            "count": self.count,
            "sum_seconds": self.sum_seconds,
            "max_seconds": self.max_seconds,
            "mean_seconds": (
                self.sum_seconds / self.count if self.count else 0.0
            ),
            "p50_seconds": self.percentile(50),
            "p99_seconds": self.percentile(99),
            "buckets": list(self.buckets),
            "geometry": {
                "floor_s": self.floor_s,
                "growth": self.growth,
                "n_buckets": self.n_buckets,
            },
        }


#: The currently active trace (None → instrumentation is a no-op).
_ACTIVE: Optional[PerfTrace] = None


def activate(trace: PerfTrace) -> PerfTrace:
    """Make ``trace`` the active collector for :func:`stage`/:func:`count`."""
    global _ACTIVE
    _ACTIVE = trace
    return trace


def deactivate() -> Optional[PerfTrace]:
    """Stop collecting; returns the trace that was active (if any)."""
    global _ACTIVE
    trace, _ACTIVE = _ACTIVE, None
    return trace


def current_trace() -> Optional[PerfTrace]:
    """The active :class:`PerfTrace`, or ``None`` when tracing is off."""
    return _ACTIVE


@contextmanager
def profiled(label: str = "") -> Iterator[PerfTrace]:
    """Activate a fresh trace for the duration of the block.

    Example:
        >>> with profiled("unit") as t:
        ...     count("things")
        >>> t.counters
        {'things': 1}
    """
    global _ACTIVE
    trace = PerfTrace(label)
    prev = _ACTIVE
    activate(trace)
    try:
        yield trace
    finally:
        _ACTIVE = prev


#: Per-thread stage bookkeeping (maintained even with no trace active,
#: so failure attribution works on untraced runs).  Thread-local because
#: the compile service runs sweep attempts on concurrent executor
#: threads — a shared stack would let one request's unwind steal
#: another's failure attribution.
_STAGE_STATE = threading.local()


def _stage_stack() -> List[str]:
    stack = getattr(_STAGE_STATE, "stack", None)
    if stack is None:
        stack = _STAGE_STATE.stack = []
    return stack


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a stage on the active trace; no-op when tracing is off.

    Independently of tracing, the stage name is pushed on a per-thread
    stack so an exception escaping the block latches the *innermost*
    failing stage (readable via :func:`failed_stage`).  The sweep farm
    uses this to attribute worker failures to a pipeline stage.
    """
    _stage_stack().append(name)
    try:
        trace = _ACTIVE
        if trace is None:
            yield
        else:
            with trace.stage(name):
                yield
    except BaseException:
        if getattr(_STAGE_STATE, "failed", None) is None:
            _STAGE_STATE.failed = name
        raise
    finally:
        _stage_stack().pop()


def current_stage() -> Optional[str]:
    """Name of the innermost open :func:`stage` block, or ``None``."""
    stack = _stage_stack()
    return stack[-1] if stack else None


def failed_stage() -> Optional[str]:
    """Innermost stage open when the last exception unwound, if any.

    Latched on the first unwinding :func:`stage` frame and sticky until
    :func:`clear_failed_stage` — callers clear before the attempt and
    read after catching, so nested stages report the deepest frame.
    Both the latch and the stage stack are per-thread.
    """
    return getattr(_STAGE_STATE, "failed", None)


def clear_failed_stage() -> None:
    """Reset the latched :func:`failed_stage` value (start of an attempt)."""
    _STAGE_STATE.failed = None


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active trace; no-op when tracing is off."""
    trace = _ACTIVE
    if trace is not None:
        trace.counters[name] = trace.counters.get(name, 0) + n
