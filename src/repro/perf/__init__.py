"""Performance instrumentation: stage timers, counters, JSON traces."""

from .trace import (
    PerfTrace,
    activate,
    count,
    current_trace,
    deactivate,
    profiled,
    stage,
)

__all__ = [
    "PerfTrace",
    "activate",
    "count",
    "current_trace",
    "deactivate",
    "profiled",
    "stage",
]
