"""Performance instrumentation: stage timers, counters, JSON traces."""

from .trace import (
    LatencyHistogram,
    PerfTrace,
    activate,
    clear_failed_stage,
    count,
    current_stage,
    current_trace,
    deactivate,
    failed_stage,
    profiled,
    stage,
)

__all__ = [
    "LatencyHistogram",
    "PerfTrace",
    "activate",
    "clear_failed_stage",
    "count",
    "current_stage",
    "current_trace",
    "deactivate",
    "failed_stage",
    "profiled",
    "stage",
]
