"""Circuit-lint entry points: library API, pipeline gate, bench-file path.

* :func:`lint_circuit` — run the circuit rule catalog over a parsed
  :class:`~repro.netlist.netlist.Netlist` and return a
  :class:`~repro.analysis.diagnostics.DiagnosticReport`.
* :func:`lint_gate` — the hard gate ``Merced.run`` executes at entry:
  error findings abort the run with a rendered report (feasibility
  errors keep raising :class:`~repro.errors.InfeasiblePartitionError`
  for sweep-row compatibility; structural errors raise
  :class:`~repro.errors.AnalysisError`), warnings thread into the
  active perf trace as counters.
* :func:`lint_bench_file` / :func:`lint_bench_text` — lint ``.bench``
  sources, surviving parse failures (multiply-driven signals are only
  observable pre-parse; see ``NET006``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from ..config import MercedConfig
from ..errors import AnalysisError, BenchParseError, InfeasiblePartitionError
from ..netlist.netlist import Netlist
from ..perf import count as perf_count
from .diagnostics import Diagnostic, DiagnosticReport
from .rules import RuleContext, rule_catalog, run_rules

__all__ = [
    "lint_circuit",
    "lint_gate",
    "lint_bench_text",
    "lint_bench_file",
    "FEASIBILITY_RULES",
]

#: Error rules that flag (l_k, β)-infeasibility rather than a broken
#: circuit; the gate maps them to InfeasiblePartitionError so sweep
#: error rows keep their historical error_type.
FEASIBILITY_RULES = frozenset({"BUD001", "BUD003"})


def lint_circuit(
    netlist: Netlist,
    config: Optional[MercedConfig] = None,
    *,
    graph=None,
    scc_index=None,
    bench_text: Optional[str] = None,
    locked: Optional[Set[str]] = None,
    rules: Optional[Sequence[str]] = None,
    suppress: Sequence[str] = (),
    min_severity: str = "info",
) -> DiagnosticReport:
    """Run the circuit rule catalog and return the report.

    Args:
        netlist: the circuit under lint.
        config: Merced parameters; the ``BUD``/``SIM`` rules read
            ``l_k``/β from here (defaults used when omitted).
        graph: an existing :class:`~repro.graphs.digraph.CircuitGraph`
            to reuse (``Merced.run`` passes its own so the linter never
            builds a second graph).
        scc_index: an existing SCC index to reuse.
        bench_text: raw ``.bench`` source, enabling the pre-parse
            ``NET006`` multiply-driven scan.
        locked: node names exempt from the feasibility rules (mirrors
            ``make_group``'s locked-cluster exemption).
        rules: restrict the run to these rule ids (default: all).
        suppress: rule ids whose findings are dropped from the report.
        min_severity: findings below this severity are dropped.
    """
    catalog = rule_catalog(rules)
    ctx = RuleContext(
        netlist,
        config=config,
        graph=graph,
        scc_index=scc_index,
        bench_text=bench_text,
        locked=locked,
    )
    diags = run_rules(catalog, ctx)
    report = DiagnosticReport(
        subject=netlist.name,
        diagnostics=tuple(diags),
        rules_checked=tuple(catalog),
    )
    return report.filtered(suppress=suppress, min_severity=min_severity)


def lint_gate(
    netlist: Netlist,
    config: Optional[MercedConfig] = None,
    *,
    graph=None,
    scc_index=None,
    locked: Optional[Set[str]] = None,
) -> DiagnosticReport:
    """Entry gate for ``Merced.run``: abort on errors, count warnings.

    Raises:
        InfeasiblePartitionError: every error finding comes from a
            feasibility rule (:data:`FEASIBILITY_RULES`) — the point is
            doomed for this ``(l_k, β)`` but the circuit is fine.
        AnalysisError: at least one structural error finding.

    Both exception types carry the machine-readable findings as
    ``exc.lint_diagnostics`` (a list of dicts); the message is the
    rendered text report.  Warnings and infos do not abort: they are
    counted into the active perf trace (``lint_warnings``,
    ``lint_info`` and per-rule ``lint.<RULE>`` counters) so
    ``merced --profile`` surfaces them.
    """
    report = lint_circuit(
        netlist,
        config,
        graph=graph,
        scc_index=scc_index,
        locked=locked,
    )
    errors = report.errors
    if errors:
        feasibility_only = all(
            d.rule_id in FEASIBILITY_RULES for d in errors
        )
        exc_cls = (
            InfeasiblePartitionError if feasibility_only else AnalysisError
        )
        exc = exc_cls("circuit lint failed:\n" + report.render_text())
        exc.lint_diagnostics = [d.as_dict() for d in report.diagnostics]
        raise exc
    if report.warnings:
        perf_count("lint_warnings", len(report.warnings))
    if report.infos:
        perf_count("lint_info", len(report.infos))
    for rule_id, n in report.counts_by_rule().items():
        perf_count(f"lint.{rule_id}", n)
    return report


def lint_bench_text(
    bench_text: str,
    config: Optional[MercedConfig] = None,
    name: str = "bench",
    **kwargs,
) -> DiagnosticReport:
    """Lint raw ``.bench`` source text, surviving parse failures.

    When the text parses, this is :func:`lint_circuit` with the source
    attached (so ``NET006`` can scan it).  When parsing fails — which is
    exactly what a multiply-driven signal does — the report carries the
    pre-parse findings plus a ``NET006``-style parse diagnostic instead
    of raising.
    """
    from ..netlist.bench import parse_bench
    from .circuit_rules import scan_bench_drivers

    try:
        netlist = parse_bench(bench_text, name=name)
    except BenchParseError as exc:
        diags = [
            Diagnostic(
                rule_id="NET006",
                severity="error",
                location=sig,
                message=f"signal has {n} drivers in the .bench source",
                fixit_hint="keep a single driver per signal",
            )
            for sig, n in scan_bench_drivers(bench_text).items()
            if n > 1
        ]
        if not diags:
            diags = [
                Diagnostic(
                    rule_id="NET005",
                    severity="error",
                    location=f"line {exc.line_no}" if exc.line_no else name,
                    message=f"bench source does not parse: {exc}",
                    fixit_hint="fix the .bench syntax",
                )
            ]
        return DiagnosticReport(
            subject=name,
            diagnostics=tuple(diags),
            rules_checked=tuple(rule_catalog()),
        ).filtered(
            suppress=kwargs.get("suppress", ()),
            min_severity=kwargs.get("min_severity", "info"),
        )
    return lint_circuit(
        netlist, config, bench_text=bench_text, **kwargs
    )


def lint_bench_file(
    path, config: Optional[MercedConfig] = None, **kwargs
) -> DiagnosticReport:
    """Lint a ``.bench`` file on disk (see :func:`lint_bench_text`)."""
    with open(path) as fh:
        text = fh.read()
    import os

    name = os.path.splitext(os.path.basename(str(path)))[0]
    return lint_bench_text(text, config, name=name, **kwargs)
