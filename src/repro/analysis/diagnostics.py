"""Shared diagnostics model for the static-analysis fronts.

Both linters — the circuit/DFT linter (:mod:`repro.analysis.circuit_rules`)
and the codebase kernel-invariant linter (:mod:`repro.analysis.kernel_lint`)
— emit the same currency: a :class:`Diagnostic` carrying a stable rule id
(``NET005``, ``KRN001``, ...), a severity, a location (signal name, SCC id,
``path:line``, ...), a human message and an optional fix-it hint.  A
:class:`DiagnosticReport` bundles the findings of one lint run together
with the rules that were checked, and renders them as text or JSON with
severity thresholds and per-rule suppression applied uniformly.

Severities are plain strings ordered ``info < warning < error``
(:data:`SEVERITIES`); :func:`severity_at_least` implements threshold
filtering without an enum import at every call site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "severity_at_least",
    "Diagnostic",
    "DiagnosticReport",
    "merge_reports",
]

#: Recognized severities, weakest first.  The index is the ordering.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

_RANK: Dict[str, int] = {s: i for i, s in enumerate(SEVERITIES)}


def severity_at_least(severity: str, threshold: str) -> bool:
    """``True`` when ``severity`` ranks at or above ``threshold``.

    Example:
        >>> severity_at_least("error", "warning")
        True
        >>> severity_at_least("info", "warning")
        False
    """
    try:
        return _RANK[severity] >= _RANK[threshold]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}/{threshold!r}; "
            f"expected one of {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a lint rule.

    Attributes:
        rule_id: stable id of the rule that fired (``NET001``, ``KRN002``).
        severity: one of :data:`SEVERITIES`.
        location: what the finding is about — a signal/cell name, an SCC
            label, a ``path:line`` source position, or ``"config"``.
        message: human-readable description of the problem.
        fixit_hint: optional one-line suggestion for fixing it.
    """

    rule_id: str
    severity: str
    location: str
    message: str
    fixit_hint: str = ""

    def __post_init__(self) -> None:
        """Reject severities outside :data:`SEVERITIES` at construction."""
        if self.severity not in _RANK:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    def as_dict(self) -> Dict[str, str]:
        """JSON-ready plain-dict view (stable key order)."""
        out = {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.fixit_hint:
            out["fixit_hint"] = self.fixit_hint
        return out

    def render(self) -> str:
        """One-line text rendering, ``SEVERITY RULE location: message``."""
        line = (
            f"{self.severity.upper():<7} {self.rule_id:<7} "
            f"{self.location}: {self.message}"
        )
        if self.fixit_hint:
            line += f"\n{'':15} fix: {self.fixit_hint}"
        return line


@dataclass(frozen=True)
class DiagnosticReport:
    """The outcome of one lint run: findings plus the rules checked.

    ``rules_checked`` holds the :class:`~repro.analysis.rules.Rule`
    objects (duck-typed here: anything with ``rule_id``, ``severity``
    and ``title``) that ran, so renderers can show the full catalog —
    including rules that came out clean.
    """

    subject: str
    diagnostics: Tuple[Diagnostic, ...] = ()
    rules_checked: Tuple[object, ...] = field(default=(), repr=False)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """Findings with error severity."""
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        """Findings with warning severity."""
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        """Findings with info severity."""
        return tuple(d for d in self.diagnostics if d.severity == "info")

    @property
    def clean(self) -> bool:
        """``True`` when no finding of any severity was produced."""
        return not self.diagnostics

    @property
    def has_errors(self) -> bool:
        """``True`` when at least one error-severity finding exists."""
        return any(d.severity == "error" for d in self.diagnostics)

    def counts_by_rule(self) -> Dict[str, int]:
        """Findings per rule id, in first-seen order."""
        counts: Dict[str, int] = {}
        for d in self.diagnostics:
            counts[d.rule_id] = counts.get(d.rule_id, 0) + 1
        return counts

    def filtered(
        self,
        suppress: Sequence[str] = (),
        min_severity: str = "info",
    ) -> "DiagnosticReport":
        """Copy with suppressed rules dropped and a severity floor applied.

        Args:
            suppress: rule ids whose findings are discarded entirely.
            min_severity: findings below this severity are discarded.
        """
        drop = {r.strip().upper() for r in suppress if r.strip()}
        kept = tuple(
            d
            for d in self.diagnostics
            if d.rule_id not in drop
            and severity_at_least(d.severity, min_severity)
        )
        return DiagnosticReport(
            subject=self.subject,
            diagnostics=kept,
            rules_checked=self.rules_checked,
        )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line count summary, e.g. ``2 error(s), 1 warning(s)``."""
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s), {len(self.infos)} info"
        )

    def render_text(self, show_clean_rules: bool = True) -> str:
        """Multi-line human-readable report.

        One line per finding, then (optionally) the catalog of rules that
        ran with per-rule hit counts, so a report always names every rule
        id it covered.
        """
        lines = [f"lint report for {self.subject}: {self.summary()}"]
        for d in self.diagnostics:
            lines.append("  " + d.render())
        if show_clean_rules and self.rules_checked:
            counts = self.counts_by_rule()
            lines.append(f"rules checked ({len(self.rules_checked)}):")
            for rule in self.rules_checked:
                n = counts.get(rule.rule_id, 0)
                mark = f"{n} finding(s)" if n else "clean"
                lines.append(
                    f"  {rule.rule_id:<7} [{rule.severity:<7}] "
                    f"{rule.title}: {mark}"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready plain-dict view of the whole report."""
        return {
            "subject": self.subject,
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "n_info": len(self.infos),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "rules_checked": [
                {
                    "rule_id": r.rule_id,
                    "severity": r.severity,
                    "title": r.title,
                    "findings": self.counts_by_rule().get(r.rule_id, 0),
                }
                for r in self.rules_checked
            ],
        }

    def render_json(self, indent: int = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)


def merge_reports(
    subject: str, reports: Iterable[DiagnosticReport]
) -> DiagnosticReport:
    """Concatenate several reports into one (rules deduped by id)."""
    diags: List[Diagnostic] = []
    rules: List[object] = []
    seen = set()
    for rep in reports:
        diags.extend(rep.diagnostics)
        for r in rep.rules_checked:
            if r.rule_id not in seen:
                seen.add(r.rule_id)
                rules.append(r)
    return DiagnosticReport(
        subject=subject,
        diagnostics=tuple(diags),
        rules_checked=tuple(rules),
    )
