"""Pluggable rule registry and the lazy per-run rule context.

A :class:`Rule` pairs a stable id (``NET005``, ``BUD003``, ...) with a
fixed severity, a short title, an optional pointer to the paper equation
it guards, and a check function.  Circuit rules register themselves with
the :func:`rule` decorator (importing :mod:`repro.analysis.circuit_rules`
populates the registry); callers run them through
:func:`repro.analysis.lint.lint_circuit`.

Check functions receive a :class:`RuleContext` and yield
``(location, message, fixit_hint)`` tuples; the runner stamps each with
the rule's id and severity to build :class:`~repro.analysis.diagnostics.
Diagnostic` objects.  The context is *lazy*: the circuit graph, its
:class:`~repro.graphs.csr.CompiledGraph` and the SCC index are built at
most once and only when a rule asks — and they reuse instances the
caller already has (``Merced.run`` passes its cached graph/SCC index, so
the entry gate adds no extra graph build).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..config import MercedConfig
from ..netlist.netlist import Netlist

#: A check yields (location, message, fixit_hint) findings.
Finding = Tuple[str, str, str]

__all__ = [
    "Finding",
    "Rule",
    "RuleContext",
    "rule",
    "rule_catalog",
    "run_rules",
]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule: id, severity, title and check function.

    Attributes:
        rule_id: stable identifier rendered in reports (``NET001``).
        severity: one of ``info``/``warning``/``error`` — fixed per rule.
        title: short human name shown in the rule catalog.
        paper_ref: the paper construct this rule guards (``Eq. 6``), if
            any; surfaces in docs and the DESIGN.md rule table.
        check: generator of findings; ``None`` for metadata-only rules
            (the kernel linter drives its checks through one AST walk).
    """

    rule_id: str
    severity: str
    title: str
    paper_ref: str = ""
    check: Optional[Callable[["RuleContext"], Iterator[Finding]]] = field(
        default=None, repr=False, compare=False
    )


#: Registry of circuit rules in registration order, keyed by rule id.
_CIRCUIT_RULES: "Dict[str, Rule]" = {}


def rule(
    rule_id: str, severity: str, title: str, paper_ref: str = ""
) -> Callable:
    """Decorator registering a circuit-lint check function as a rule.

    Example::

        @rule("NET001", "warning", "dangling cell")
        def _net001(ctx):
            yield ("g3", "cell g3 drives nothing", "remove it")
    """

    def decorate(fn: Callable[["RuleContext"], Iterator[Finding]]):
        if rule_id in _CIRCUIT_RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _CIRCUIT_RULES[rule_id] = Rule(
            rule_id=rule_id,
            severity=severity,
            title=title,
            paper_ref=paper_ref,
            check=fn,
        )
        return fn

    return decorate


def rule_catalog(
    only: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The registered circuit rules, optionally restricted to ``only`` ids.

    Importing this module's sibling :mod:`repro.analysis.circuit_rules`
    fills the registry; this accessor imports it on demand so callers
    never see an empty catalog.
    """
    from . import circuit_rules as _defs  # noqa: F401  (registration)

    if only is None:
        return list(_CIRCUIT_RULES.values())
    unknown = [r for r in only if r not in _CIRCUIT_RULES]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [_CIRCUIT_RULES[r] for r in only]


class RuleContext:
    """Everything a circuit rule may inspect, built lazily and shared.

    Rules must treat the context as read-only.  Graph-level accessors
    (:attr:`graph`, :attr:`cg`, :attr:`scc_index`) return ``None`` when
    the netlist is too broken to build a graph (e.g. undriven signals) —
    rules that need them simply skip, letting the structural rules carry
    the report.
    """

    def __init__(
        self,
        netlist: Netlist,
        config: Optional[MercedConfig] = None,
        graph=None,
        scc_index=None,
        bench_text: Optional[str] = None,
        locked: Optional[Set[str]] = None,
    ):
        self.netlist = netlist
        self.config = config or MercedConfig()
        self.bench_text = bench_text
        self.locked: Set[str] = set(locked or ())
        self._graph = graph
        self._scc_index = scc_index
        self._cg = None
        self._graph_failed = False
        self._fanout = None
        self._output_set = None

    # ------------------------------------------------------------------
    # cheap netlist views
    # ------------------------------------------------------------------
    @property
    def fanout(self) -> Dict[str, list]:
        """``signal → reader cells`` map (built once)."""
        if self._fanout is None:
            self._fanout = self.netlist.fanout_map()
        return self._fanout

    @property
    def output_set(self) -> Set[str]:
        """Primary-output signal names as a set (built once)."""
        if self._output_set is None:
            self._output_set = set(self.netlist.outputs)
        return self._output_set

    # ------------------------------------------------------------------
    # graph views (lazy, failure-tolerant)
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The :class:`~repro.graphs.digraph.CircuitGraph`, or ``None``.

        Built without PO sink nodes (the pipeline's configuration) the
        first time a rule asks; ``None`` when the netlist's structural
        problems make the build impossible.
        """
        if self._graph is None and not self._graph_failed:
            from ..graphs.build import build_circuit_graph

            try:
                self._graph = build_circuit_graph(
                    self.netlist, with_po_nodes=False
                )
            except Exception:
                self._graph_failed = True
        return self._graph

    @property
    def cg(self):
        """The cached :class:`~repro.graphs.csr.CompiledGraph`, or ``None``.

        Uses :func:`~repro.graphs.csr.compile_graph`, which caches on the
        graph keyed by ``topo_version`` — when ``Merced.run`` hands its
        graph over, the linter shares the pipeline's arrays instead of
        building new ones.
        """
        if self._cg is None and self.graph is not None:
            from ..graphs.csr import compile_graph

            self._cg = compile_graph(self.graph)
        return self._cg

    @property
    def scc_index(self):
        """The :class:`~repro.graphs.scc.SCCIndex`, or ``None``."""
        if self._scc_index is None and self.graph is not None:
            from ..graphs.scc import SCCIndex

            self._scc_index = SCCIndex(self.graph)
        return self._scc_index


def run_rules(
    rules: Iterable[Rule], ctx: RuleContext
) -> List["object"]:
    """Run each rule's check over ``ctx``; return stamped Diagnostics."""
    from .diagnostics import Diagnostic

    out: List[Diagnostic] = []
    for r in rules:
        if r.check is None:
            continue
        for location, message, fixit in r.check(ctx):
            out.append(
                Diagnostic(
                    rule_id=r.rule_id,
                    severity=r.severity,
                    location=location,
                    message=message,
                    fixit_hint=fixit,
                )
            )
    return out
