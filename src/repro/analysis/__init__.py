"""Static analysis: circuit/DFT lint rules and kernel-invariant checks.

Two fronts share one diagnostics model (:class:`Diagnostic`,
:class:`DiagnosticReport`, a pluggable :class:`Rule` registry, text and
JSON renderers, severity thresholds, per-rule suppression):

* the **circuit linter** (:func:`lint_circuit`, ``merced lint``) runs
  the ``NET``/``GRF``/``RET``/``BUD``/``SIM`` catalog over a netlist
  and its cached :class:`~repro.graphs.csr.CompiledGraph` before any
  pipeline stage — :func:`lint_gate` is the hard gate inside
  :meth:`repro.core.merced.Merced.run`;
* the **kernel linter** (:func:`lint_paths`,
  ``scripts/lint_kernels.py``) walks the source tree's ASTs and
  enforces the determinism/pairing invariants the compiled kernels
  rely on (``KRN001``–``KRN004``);
* the **concurrency analyzer** (:func:`analyze_paths`,
  ``merced lint-code``) builds per-function CFGs, lock dataflow and
  call-graph blocking summaries over the same parses and checks the
  async/thread/signal hazard rules (``CONC001``–``CONC006``) behind a
  committed-baseline CI gate.
"""

from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    DiagnosticReport,
    merge_reports,
    severity_at_least,
)
from .concurrency import (
    CONC_RULES,
    analyze_paths,
    lint_code_main,
    run_concurrency_rules,
)
from .kernel_lint import (
    HOT_DIRS,
    KERNEL_RULES,
    kernel_lint_main,
    lint_paths,
    lint_source,
)
from .lint import (
    FEASIBILITY_RULES,
    lint_bench_file,
    lint_bench_text,
    lint_circuit,
    lint_gate,
)
from .precheck import SCCBudgetBound, budget_prechecks, scc_cut_lower_bound
from .rules import Rule, RuleContext, rule, rule_catalog

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "DiagnosticReport",
    "merge_reports",
    "severity_at_least",
    "Rule",
    "RuleContext",
    "rule",
    "rule_catalog",
    "lint_circuit",
    "lint_gate",
    "lint_bench_text",
    "lint_bench_file",
    "FEASIBILITY_RULES",
    "SCCBudgetBound",
    "budget_prechecks",
    "scc_cut_lower_bound",
    "HOT_DIRS",
    "KERNEL_RULES",
    "kernel_lint_main",
    "lint_paths",
    "lint_source",
    "CONC_RULES",
    "analyze_paths",
    "run_concurrency_rules",
    "lint_code_main",
]
