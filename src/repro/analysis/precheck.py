"""Eq. 6 budget-feasibility prechecks (rule ``BUD003``).

``Make_Set`` charges every cut of an SCC-internal net against the SCC's
Eq. 6 budget ``χ(λ) ≤ β·f(λ)``; when the budget runs out the remaining
nets are pinned traversable, welding the region into one cluster whose
input count ι can then never drop below ``l_k`` — the run ends in
``InfeasiblePartitionError`` after doing all the work.  This module
derives a *sound lower bound* on the number of charged cuts any legal
partition needs, so provably doomed ``(l_k, β)`` points are rejected
before the pipeline burns a sweep point on them.

The bound, per non-trivial SCC ``λ`` (proof sketch — each step only ever
*underestimates* the true requirement):

1. Build the traversal hypergraph ``H_λ``: vertices are λ's
   combinational nodes; hyperedges are λ-internal, comb-sourced nets,
   connecting the source to its comb sinks inside λ.  Two adjacent
   vertices of an un-cut hyperedge always end in the same cluster
   (``Make_Set`` DFS crosses exactly these nets), and cutting such a net
   is always charged to λ's budget.
2. For each connected component ``C`` of ``H_λ``, let ``b(C)`` be the
   number of distinct boundary signals (primary-input- or DFF-driven
   nets) feeding ``C``'s nodes.  Every one of them is an input of at
   least one cluster containing a ``C`` node, and a cluster holds at
   most ``l_k`` inputs, so ``C``'s nodes must spread over at least
   ``k_min = ⌈b(C)/l_k⌉`` clusters.
3. Splitting ``C`` into ``k_min`` parts requires cutting hyperedges;
   removing one hyperedge with ``s`` in-component comb sinks raises the
   part count by at most ``s``.  Hence at least
   ``⌈(k_min − 1)/max_s(C)⌉`` charged cuts — or no legal partition at
   all when ``C`` has no cuttable net (``min_cuts`` is ``inf``).
4. Components are vertex- and edge-disjoint, so the per-component
   bounds add: ``χ_min(λ) = Σ_C cuts(C)``.  If ``χ_min(λ) > β·f(λ)``
   the point is infeasible for *any* distance assignment — the bound
   never depends on saturation flows.

``tests/analysis/test_budget_precheck.py`` checks the soundness claim
against brute-force enumeration of every cut subset on small circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, inf
from typing import Dict, List, Optional, Sequence, Set

from ..graphs.csr import KIND_COMB, CompiledGraph

__all__ = ["SCCBudgetBound", "scc_cut_lower_bound", "budget_prechecks"]


@dataclass(frozen=True)
class SCCBudgetBound:
    """Eq. 6 feasibility verdict for one SCC ``λ``.

    Attributes:
        scc_id: the SCC's id in the :class:`~repro.graphs.scc.SCCIndex`.
        register_count: ``f(λ)`` — registers available to retiming.
        min_cuts: sound lower bound on charged cuts (``inf`` when some
            component cannot be split at all but must be).
        n_components: connected components of the traversal hypergraph.
        max_boundary_inputs: largest ``b(C)`` over the components.
    """

    scc_id: int
    register_count: int
    min_cuts: float
    n_components: int
    max_boundary_inputs: int

    def budget(self, beta: int) -> int:
        """The Eq. 6 budget ``β·f(λ)`` for this SCC."""
        return beta * self.register_count

    def feasible(self, beta: int) -> bool:
        """``True`` unless ``min_cuts`` provably exceeds the budget."""
        return self.min_cuts <= self.budget(beta)


def _find(parent: List[int], x: int) -> int:
    root = x
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:
        parent[x], x = root, parent[x]
    return root


def scc_cut_lower_bound(
    cg: CompiledGraph, scc_nodes: Sequence[str], lk: int, scc_id: int = 0
) -> SCCBudgetBound:
    """Compute the charged-cut lower bound for one SCC.

    Args:
        cg: the circuit's :class:`~repro.graphs.csr.CompiledGraph`
            (shared with the pipeline — nothing is rebuilt here).
        scc_nodes: the SCC's node names (``SCCInfo.nodes``).
        lk: the cluster input limit ``l_k``.
        scc_id: id stamped into the returned bound (reporting only).
    """
    node_id = cg.node_id
    kind = cg.kind
    in_start = cg.in_start
    in_net_ids = cg.in_net_ids
    out_start = cg.out_start
    out_net_ids = cg.out_net_ids
    sink_start = cg.sink_start
    sink_ids = cg.sink_ids
    boundary_net = cg.boundary_net
    node_ep = cg.node_ep
    ep = cg.next_epoch()

    member_ids = [node_id[n] for n in scc_nodes]
    n_regs = 0
    comb_ids: List[int] = []
    for i in member_ids:
        node_ep[i] = ep
        if kind[i] == KIND_COMB:
            comb_ids.append(i)
        else:
            n_regs += 1

    if not comb_ids:
        return SCCBudgetBound(scc_id, n_regs, 0.0, 0, 0)

    local = {i: k for k, i in enumerate(comb_ids)}
    parent = list(range(len(comb_ids)))

    # Hyperedges: comb-sourced nets of comb members with >=1 comb sink
    # inside the SCC.  (A net sourced inside the SCC is internal iff it
    # has a sink inside; restricting to comb sinks keeps exactly the
    # nets the Make_Set DFS can cross.)
    edges: List[tuple] = []  # (source_local, [sink_locals])
    for i in comb_ids:
        src_local = local[i]
        for p in range(out_start[i], out_start[i + 1]):
            ni = out_net_ids[p]
            comb_sinks: List[int] = []
            for q in range(sink_start[ni], sink_start[ni + 1]):
                s = sink_ids[q]
                if node_ep[s] == ep and kind[s] == KIND_COMB:
                    comb_sinks.append(local[s])
            if not comb_sinks:
                continue
            edges.append((src_local, comb_sinks))
            for s_local in comb_sinks:
                ra, rb = _find(parent, src_local), _find(parent, s_local)
                if ra != rb:
                    parent[rb] = ra

    # Per-component boundary-input sets and max cut arity.
    b_inputs: Dict[int, Set[int]] = {}
    max_arity: Dict[int, int] = {}
    for i in comb_ids:
        comp = _find(parent, local[i])
        bucket = b_inputs.setdefault(comp, set())
        for p in range(in_start[i], in_start[i + 1]):
            ni = in_net_ids[p]
            if boundary_net[ni]:
                bucket.add(ni)
    for src_local, comb_sinks in edges:
        comp = _find(parent, src_local)
        # removing the net splits off at most len(comb_sinks) extra parts
        arity = len(comb_sinks)
        if arity > max_arity.get(comp, 0):
            max_arity[comp] = arity

    total: float = 0.0
    max_b = 0
    for comp, bucket in b_inputs.items():
        b = len(bucket)
        if b > max_b:
            max_b = b
        k_min = -(-b // lk) if lk > 0 else (2 if b else 1)
        if k_min <= 1:
            continue
        arity = max_arity.get(comp, 0)
        if arity == 0:
            total = inf
            break
        total += ceil((k_min - 1) / arity)

    return SCCBudgetBound(
        scc_id=scc_id,
        register_count=n_regs,
        min_cuts=total,
        n_components=len(b_inputs),
        max_boundary_inputs=max_b,
    )


def budget_prechecks(
    cg: CompiledGraph,
    scc_index,
    lk: int,
    locked: Optional[Set[str]] = None,
) -> List[SCCBudgetBound]:
    """Lower bounds for every non-trivial SCC of the circuit.

    SCCs containing locked nodes are skipped — ``make_group`` exempts
    locked clusters from the feasibility check, so no budget verdict can
    be drawn for them statically.
    """
    out: List[SCCBudgetBound] = []
    for info in scc_index.sccs():
        if locked and locked.intersection(info.nodes):
            continue
        out.append(
            scc_cut_lower_bound(cg, info.nodes, lk, scc_id=info.scc_id)
        )
    return out
