"""AST-based codebase linter for the compiled-kernel invariants (``KRN``).

The compiled CSR kernels (PR 3) rest on three repo-wide invariants that
plain tests cannot guard statically:

* **Determinism of iteration** — the hot paths under ``graphs/``,
  ``partition/``, ``retiming/`` and ``flow/`` must never let an
  unordered ``set`` feed an ordered construct (a ``for`` loop, a list,
  an ``enumerate``); compiled/reference bit-identity depends on it
  (``KRN001``).
* **Determinism of randomness** — every RNG must be an explicitly
  seeded ``random.Random(seed)``; the module-level ``random.*``
  functions and unseeded ``Random()`` instances are banned outside
  ``flow/rng.py`` (``KRN002``).
* **The compiled/reference pairing contract** — a kernel module with a
  ``use_compiled`` switch must keep a reachable ``*_reference`` twin
  (``KRN003``), and every ``*_reference`` definition must be exercised
  somewhere under ``tests/`` (``KRN004``).

Findings use the shared :class:`~repro.analysis.diagnostics.Diagnostic`
model with ``path:line`` locations.  Inline suppression: put
``# lint: disable=KRN001`` (comma-separated ids, or ``all``) on the
flagged line.  The CLI wrapper is ``scripts/lint_kernels.py``.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, DiagnosticReport
from .rules import Rule

__all__ = [
    "KERNEL_RULES",
    "HOT_DIRS",
    "lint_source",
    "lint_tree",
    "lint_paths",
    "cross_check_references",
    "kernel_lint_main",
]

#: Directories whose modules are deterministic hot paths (KRN001/KRN003).
HOT_DIRS = ("graphs", "partition", "retiming", "flow")

#: The kernel-linter rule catalog (metadata only; one AST walk drives
#: all checks).
KERNEL_RULES: Tuple[Rule, ...] = (
    Rule(
        "KRN001",
        "error",
        "unordered set iteration in a hot path",
        paper_ref="compiled/reference bit-identity",
    ),
    Rule("KRN002", "error", "unseeded random usage"),
    Rule(
        "KRN003",
        "error",
        "use_compiled without a *_reference twin",
        paper_ref="compiled/reference pairing contract",
    ),
    Rule(
        "KRN004",
        "error",
        "*_reference twin not exercised by tests",
        paper_ref="compiled/reference pairing contract",
    ),
)

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}
_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "betavariate",
    "gauss",
    "getrandbits",
    "seed",
}
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate"}
#: numpy's module-level (global-RNG) sampling functions — the numpy
#: twin of :data:`_RANDOM_FUNCS` (KRN002 extension).
_NP_RANDOM_FUNCS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "shuffle",
    "permutation",
    "choice",
    "seed",
    "uniform",
    "normal",
}
#: numpy RNG constructors that are nondeterministic when called with
#: no seed argument.
_NP_RNG_CTORS = {"default_rng", "RandomState"}


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactic check: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_expr(func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_hot_path(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(p in HOT_DIRS for p in parts)


def _suppressed(lines: Sequence[str], lineno: int, rule_id: str) -> bool:
    """True when the flagged source line opts out of ``rule_id``."""
    if not 1 <= lineno <= len(lines):
        return False
    line = lines[lineno - 1]
    marker = "lint: disable="
    idx = line.find(marker)
    if idx < 0:
        return False
    ids = {
        token.strip().upper()
        for token in line[idx + len(marker) :].split(",")
    }
    return "ALL" in ids or rule_id.upper() in ids


class _KernelVisitor(ast.NodeVisitor):
    """One walk collecting KRN001/KRN002 hits and pairing-contract facts."""

    def __init__(self, hot: bool, check_random: bool):
        self.hot = hot
        self.check_random = check_random
        self.hits: List[Tuple[str, int, str, str]] = []
        self.uses_use_compiled_at: Optional[int] = None
        self.reference_defs: List[Tuple[str, int]] = []
        self.reference_mentions: Set[str] = set()
        # KRN002 numpy extension: local names bound to the numpy package
        # / the numpy.random module / its unseeded RNG constructors.
        self._np_aliases: Set[str] = set()
        self._npr_aliases: Set[str] = set()
        self._np_ctor_names: Set[str] = set()

    # -- KRN001 -------------------------------------------------------
    def _flag_set_iter(self, node: ast.AST, context: str) -> None:
        self.hits.append(
            (
                "KRN001",
                node.lineno,
                f"iterating a set {context} makes the result order "
                "depend on hash seeds",
                "sort first (sorted(...)) or iterate an ordered source",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self.hot and _is_set_expr(node.iter):
            self._flag_set_iter(node.iter, "in a for loop")
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        if self.hot:
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    self._flag_set_iter(gen.iter, "in a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- KRN001 (ordered consumers) + KRN002 --------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self.hot and node.args and _is_set_expr(node.args[0]):
            if isinstance(func, ast.Name) and func.id in _ORDERED_CONSUMERS:
                self._flag_set_iter(node, f"through {func.id}(...)")
            elif isinstance(func, ast.Attribute) and func.attr in (
                "join",
                "extend",
            ):
                self._flag_set_iter(node, f"through .{func.attr}(...)")
        if self.check_random:
            self._np_random_call(node)
        if self.check_random and isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id == "random"
                and value.id not in self._npr_aliases
            ):
                if func.attr in _RANDOM_FUNCS:
                    self.hits.append(
                        (
                            "KRN002",
                            node.lineno,
                            f"module-level random.{func.attr}() uses the "
                            "shared global RNG (unseeded, process-wide)",
                            "use a seeded random.Random(seed) instance",
                        )
                    )
                elif func.attr == "Random" and not (
                    node.args or node.keywords
                ):
                    self.hits.append(
                        (
                            "KRN002",
                            node.lineno,
                            "random.Random() without a seed is "
                            "nondeterministic",
                            "pass an explicit seed",
                        )
                    )
        self.generic_visit(node)

    def _flag_np_random(self, lineno: int, what: str) -> None:
        self.hits.append(
            (
                "KRN002",
                lineno,
                f"{what} uses numpy's shared global RNG "
                "(unseeded, process-wide)",
                "use numpy.random.default_rng(seed) (see flow/rng.py)",
            )
        )

    def _np_random_call(self, node: ast.Call) -> None:
        """KRN002 numpy extension: global-RNG and unseeded-ctor calls."""
        func = node.func
        leaf: Optional[str] = None
        if isinstance(func, ast.Attribute):
            parts = []
            cur: ast.AST = func
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if not isinstance(cur, ast.Name):
                return
            parts.append(cur.id)
            parts.reverse()
            if (
                len(parts) == 3
                and parts[0] in self._np_aliases
                and parts[1] == "random"
            ):
                leaf = parts[2]
            elif len(parts) == 2 and parts[0] in self._npr_aliases:
                leaf = parts[1]
        elif isinstance(func, ast.Name) and func.id in self._np_ctor_names:
            leaf = func.id
        if leaf is None:
            return
        if leaf in _NP_RANDOM_FUNCS:
            self._flag_np_random(
                node.lineno, f"module-level numpy.random.{leaf}()"
            )
        elif leaf in _NP_RNG_CTORS and not (node.args or node.keywords):
            self._flag_np_random(
                node.lineno, f"numpy.random.{leaf}() without a seed"
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self._np_aliases.add(alias.asname or "numpy")
            elif alias.name.startswith("numpy.") and not alias.asname:
                self._np_aliases.add("numpy")
            elif alias.name == "numpy.random" and alias.asname:
                self._npr_aliases.add(alias.asname)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.check_random and node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._npr_aliases.add(alias.asname or "random")
        if self.check_random and node.module == "numpy.random":
            for alias in node.names:
                if alias.name in _NP_RANDOM_FUNCS or alias.name == "*":
                    self._flag_np_random(
                        node.lineno,
                        f"'from numpy.random import {alias.name}'",
                    )
                elif alias.name in _NP_RNG_CTORS:
                    self._np_ctor_names.add(alias.asname or alias.name)
        if self.check_random and node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_FUNCS or alias.name == "*":
                    self.hits.append(
                        (
                            "KRN002",
                            node.lineno,
                            f"'from random import {alias.name}' pulls in "
                            "the shared global RNG",
                            "use a seeded random.Random(seed) instance",
                        )
                    )
        self.generic_visit(node)

    # -- KRN003/KRN004 facts ------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "use_compiled" and self.uses_use_compiled_at is None:
            self.uses_use_compiled_at = node.lineno
        if node.id.endswith("_reference"):
            self.reference_mentions.add(node.id)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.arg == "use_compiled" and self.uses_use_compiled_at is None:
            self.uses_use_compiled_at = node.lineno

    def _visit_def(self, node) -> None:
        if node.name.endswith("_reference"):
            self.reference_defs.append((node.name, node.lineno))
            self.reference_mentions.add(node.name)
        self.generic_visit(node)

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id.endswith(
                "_reference"
            ):
                self.reference_defs.append((target.id, target.lineno))
                self.reference_mentions.add(target.id)
        self.generic_visit(node)


def lint_source(
    code: str, path: str
) -> Tuple[List[Diagnostic], List[Tuple[str, int]]]:
    """Lint one module's source; returns (diagnostics, reference defs).

    Parses ``code`` and hands the tree to :func:`lint_tree` — use that
    directly when the caller (the shared engine in
    :mod:`repro.analysis.concurrency.engine`) already holds a parse.
    """
    tree = ast.parse(code, filename=path)
    return lint_tree(tree, code, path)


def lint_tree(
    tree: ast.Module, code: str, path: str
) -> Tuple[List[Diagnostic], List[Tuple[str, int]]]:
    """Lint one already-parsed module; returns (diagnostics, ref defs).

    ``path`` decides rule applicability: KRN001/KRN003 apply only under
    the :data:`HOT_DIRS`, KRN002 everywhere except ``flow/rng.py``.
    The returned reference definitions feed the cross-file ``KRN004``
    check in :func:`cross_check_references`.
    """
    lines = code.splitlines()
    hot = _is_hot_path(path)
    is_rng_home = os.path.normpath(path).endswith(
        os.path.join("flow", "rng.py")
    )
    visitor = _KernelVisitor(hot=hot, check_random=not is_rng_home)
    visitor.visit(tree)

    hits = list(visitor.hits)
    if (
        hot
        and visitor.uses_use_compiled_at is not None
        and not visitor.reference_mentions
    ):
        hits.append(
            (
                "KRN003",
                visitor.uses_use_compiled_at,
                "module switches on use_compiled but references no "
                "*_reference twin",
                "keep the reference kernel alongside the compiled one",
            )
        )

    diags = [
        Diagnostic(
            rule_id=rule_id,
            severity="error",
            location=f"{path}:{lineno}",
            message=message,
            fixit_hint=fixit,
        )
        for rule_id, lineno, message, fixit in hits
        if not _suppressed(lines, lineno, rule_id)
    ]
    ref_defs = [
        (name, lineno)
        for name, lineno in visitor.reference_defs
        if not _suppressed(lines, lineno, "KRN004")
    ]
    return diags, ref_defs


def _iter_py_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
    return files


def cross_check_references(
    all_refs: Sequence[Tuple[str, str, int]],
    tests_dir: Optional[str],
) -> List[Diagnostic]:
    """The cross-file KRN004 pass: every ``*_reference`` definition
    found in the scanned sources must be mentioned somewhere under
    ``tests_dir`` — the static half of the "exercised by an equivalence
    test" contract.  ``all_refs`` holds ``(name, path, lineno)``.
    """
    diags: List[Diagnostic] = []
    if not (tests_dir and os.path.isdir(tests_dir) and all_refs):
        return diags
    corpus = []
    for path in _iter_py_files([tests_dir]):
        with open(path) as fh:
            corpus.append(fh.read())
    tests_text = "\n".join(corpus)
    for name, path, lineno in all_refs:
        if name not in tests_text:
            diags.append(
                Diagnostic(
                    rule_id="KRN004",
                    severity="error",
                    location=f"{path}:{lineno}",
                    message=f"reference twin {name} is never "
                    f"exercised under {tests_dir}",
                    fixit_hint="add an equivalence test against the "
                    "compiled path",
                )
            )
    return diags


def lint_paths(
    paths: Sequence[str],
    tests_dir: Optional[str] = None,
) -> DiagnosticReport:
    """Lint every ``.py`` file under ``paths``; cross-check tests.

    A thin façade over the shared analysis engine restricted to the
    ``KRN`` family (one parse per file, shared with the concurrency
    rules when both families run through ``merced lint-code``).
    """
    from .concurrency.engine import analyze_paths

    return analyze_paths(paths, tests_dir=tests_dir, families=("KRN",))


def kernel_lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI driver behind ``scripts/lint_kernels.py``.

    Exit status 0 when no error-severity finding survives filtering,
    1 otherwise.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint_kernels",
        description="Lint kernel determinism invariants (KRN001-KRN004).",
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to lint"
    )
    parser.add_argument(
        "--tests-dir",
        default=None,
        help="tests directory for the KRN004 cross-check "
        "(default: ./tests when it exists)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="RULE[,RULE...]",
        help="drop findings of these rule ids",
    )
    args = parser.parse_args(argv)

    tests_dir = args.tests_dir
    if tests_dir is None and os.path.isdir("tests"):
        tests_dir = "tests"
    suppress = [
        r for chunk in args.suppress for r in chunk.split(",") if r
    ]
    report = lint_paths(args.paths, tests_dir=tests_dir).filtered(
        suppress=suppress
    )
    print(report.render_json() if args.json else report.render_text())
    return 1 if report.has_errors else 0
