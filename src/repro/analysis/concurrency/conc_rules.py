"""The CONC rule family: concurrency hazards over the compile fabric.

Each check consumes the :class:`~repro.analysis.concurrency.summaries.
ProjectIndex` (CFGs, locks-held facts, call-graph blocking summaries)
and yields raw findings ``(rule_id, severity, path, lineno, message,
fixit)``; the engine (:mod:`repro.analysis.concurrency.engine`) applies
``# lint: disable=`` suppression and stamps them into
:class:`~repro.analysis.diagnostics.Diagnostic` objects.

The catalog (severities are fixed per rule; CONC002 splits by access
kind):

========  ========  ====================================================
CONC001   error     blocking call reachable inside ``async def``
CONC002   error     unguarded write to a lock-guarded shared attribute
          warning   unguarded *read* of a lock-guarded shared attribute
CONC003   error     lock-acquisition-order cycle (deadlock potential)
CONC004   error     coroutine / Task created but never awaited or stored
CONC005   warning   non-async-signal-safe work in a ``signal.signal``
                    handler
CONC006   warning   ``fork``-start-method hazard after threads may exist
========  ========  ====================================================
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..rules import Rule
from .cfg import (
    CFG,
    CFGNode,
    expr_name,
    is_lockish,
    scope_nodes,
    _with_locks,
)
from .dataflow import forward_dataflow
from .summaries import FunctionInfo, ModuleIndex, ProjectIndex

__all__ = ["CONC_RULES", "RawFinding", "run_concurrency_rules"]

#: ``(rule_id, severity, path, lineno, message, fixit_hint)``.
RawFinding = Tuple[str, str, str, int, str, str]

#: The concurrency rule catalog (metadata only — the checks below are
#: driven off the shared project index, not per-rule contexts).
CONC_RULES: Tuple[Rule, ...] = (
    Rule(
        "CONC001",
        "error",
        "blocking call inside async def",
        paper_ref="event-loop latency",
    ),
    Rule(
        "CONC002",
        "error",
        "shared attribute access without its lock",
        paper_ref="torn reads/lost updates",
    ),
    Rule(
        "CONC003",
        "error",
        "lock-acquisition-order cycle",
        paper_ref="deadlock",
    ),
    Rule("CONC004", "error", "unawaited coroutine / dropped Task"),
    Rule(
        "CONC005",
        "warning",
        "non-async-signal-safe signal handler",
    ),
    Rule(
        "CONC006",
        "warning",
        "fork start method after threads may exist",
    ),
)

_CTOR_EXEMPT = {"__init__", "__post_init__", "__new__", "__del__"}

_TASK_FACTORIES = {"asyncio.create_task", "asyncio.ensure_future"}


def _own_expr_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """AST nodes of one statement, excluding child statements/scopes.

    A CFG node owns its statement's *expressions* only — the bodies of
    an ``if``/``for``/``with`` are separate CFG nodes, and nested
    ``def``/``lambda`` bodies are separate scopes.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt) or isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                ),
            ):
                continue
            stack.append(child)


def _self_attr_base(target: ast.AST) -> Optional[str]:
    """The ``self`` attribute a write target mutates, if any.

    ``self.X = ...`` → ``X``; ``self.X.Y = ...`` → ``X``;
    ``self.X[k] = ...`` → ``X``.
    """
    if isinstance(target, ast.Subscript):
        return _self_attr_base(target.value)
    if isinstance(target, ast.Attribute):
        value = target.value
        if isinstance(value, ast.Name) and value.id == "self":
            return target.attr
        return _self_attr_base(value)
    return None


def _node_writes(node: CFGNode) -> Set[str]:
    """Self-attributes written by this CFG node's statement."""
    stmt = node.stmt
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.For):
        targets = [stmt.target]
    out: Set[str] = set()
    for target in targets:
        for t in ast.walk(target) if isinstance(
            target, (ast.Tuple, ast.List)
        ) else [target]:
            base = _self_attr_base(t)
            if base:
                out.add(base)
    return out


def _node_reads(node: CFGNode) -> Set[str]:
    """Self-attributes read in this CFG node's own expressions."""
    out: Set[str] = set()
    for n in _own_expr_nodes(node.stmt):
        if (
            isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and n.value.id == "self"
        ):
            out.add(n.attr)
    return out


def _fmt(fn: FunctionInfo) -> str:
    return f"{fn.module.dotted}.{fn.qualname}"


def _module_external(
    module: ModuleIndex, func_expr: ast.AST
) -> Optional[str]:
    """Resolve a call target to its dotted external name via imports."""
    chain = expr_name(func_expr)
    if not chain:
        return None
    parts = chain.split(".")
    if parts[0] in module.import_aliases:
        return ".".join([module.import_aliases[parts[0]]] + parts[1:])
    if parts[0] in module.from_imports:
        return ".".join([module.from_imports[parts[0]]] + parts[1:])
    return None


# ----------------------------------------------------------------------
# CONC001 — blocking call inside async def
# ----------------------------------------------------------------------
def _check_conc001(project: ProjectIndex) -> Iterator[RawFinding]:
    for fn in project.all_functions():
        if not fn.is_async:
            continue
        path = fn.module.path
        awaited = project.awaited_calls(fn)
        bindings = project._local_bindings(fn)
        for node in scope_nodes(fn.node):
            if isinstance(node, (ast.With,)) and not isinstance(
                node, ast.AsyncWith
            ):
                locks = _with_locks(node)
                if locks:
                    yield (
                        "CONC001",
                        "warning",
                        path,
                        node.lineno,
                        f"async '{fn.qualname}' takes thread lock "
                        f"'{locks[0]}' with a sync 'with' — the event "
                        "loop stalls while the lock is contended",
                        "keep the critical section tiny, or move the "
                        "locked work into an executor",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            if id(node) in awaited:
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and is_lockish(expr_name(func.value))
            ):
                yield (
                    "CONC001",
                    "error",
                    path,
                    node.lineno,
                    f"async '{fn.qualname}' calls "
                    f"{expr_name(func.value)}.acquire() — a blocked "
                    "acquire freezes the whole event loop",
                    "use asyncio.Lock, or offload the locked section "
                    "with loop.run_in_executor",
                )
                continue
            reason = project.direct_blocking_reason(node, fn, bindings)
            if reason is not None:
                yield (
                    "CONC001",
                    "error",
                    path,
                    node.lineno,
                    f"async '{fn.qualname}' makes a blocking call: "
                    f"{reason}",
                    "await loop.run_in_executor(None, ...) or use an "
                    "async equivalent",
                )
                continue
            targets, _, _ = project.classify_call(node, fn, bindings)
            for target in targets:
                if target.is_async:
                    continue
                chain = project.blocking.get(target.key)
                if chain is not None:
                    yield (
                        "CONC001",
                        "error",
                        path,
                        node.lineno,
                        f"async '{fn.qualname}' calls blocking "
                        f"'{_fmt(target)}' ({chain})",
                        "await loop.run_in_executor(None, ...) or use "
                        "an async equivalent",
                    )
                    break


# ----------------------------------------------------------------------
# CONC002 — shared attribute access without the class lock
# ----------------------------------------------------------------------
def _class_methods(
    project: ProjectIndex, module: ModuleIndex, cls
) -> List[FunctionInfo]:
    return [
        module.functions[qual]
        for name, qual in sorted(cls.methods.items())
        if name not in _CTOR_EXEMPT
    ]


def _check_conc002(project: ProjectIndex) -> Iterator[RawFinding]:
    for module in project.modules.values():
        for _, cls in sorted(module.classes.items()):
            if not cls.lock_attrs:
                continue
            lock_names = frozenset(f"self.{a}" for a in cls.lock_attrs)
            methods = _class_methods(project, module, cls)
            guarded: Set[str] = set()
            for fn in methods:
                cfg = project.cfg_of(fn)
                held = project.locks_of(fn)
                for node in cfg.stmt_nodes():
                    if node.kind == "with-exit":
                        continue
                    if held.get(node.index, frozenset()) & lock_names:
                        guarded |= _node_writes(node)
            guarded -= cls.lock_attrs
            if not guarded:
                continue
            for fn in methods:
                cfg = project.cfg_of(fn)
                held = project.locks_of(fn)
                for node in cfg.stmt_nodes():
                    if node.kind == "with-exit":
                        continue
                    if held.get(node.index, frozenset()) & lock_names:
                        continue
                    writes = _node_writes(node) & guarded
                    reads = (_node_reads(node) & guarded) - writes
                    for attr in sorted(writes):
                        yield (
                            "CONC002",
                            "error",
                            module.path,
                            node.lineno,
                            f"'{cls.name}.{fn.name}' writes shared "
                            f"attribute 'self.{attr}' without holding "
                            f"the class lock that guards it elsewhere",
                            f"wrap the access in 'with self."
                            f"{sorted(cls.lock_attrs)[0]}:'",
                        )
                    for attr in sorted(reads):
                        yield (
                            "CONC002",
                            "warning",
                            module.path,
                            node.lineno,
                            f"'{cls.name}.{fn.name}' reads shared "
                            f"attribute 'self.{attr}' without the lock "
                            "that guards its writers (torn-read risk)",
                            f"snapshot under 'with self."
                            f"{sorted(cls.lock_attrs)[0]}:'",
                        )


# ----------------------------------------------------------------------
# CONC003 — lock-acquisition-order cycles
# ----------------------------------------------------------------------
def _normalize_lock(name: str, fn: FunctionInfo) -> str:
    if name.startswith("self.") and fn.class_name:
        return f"{fn.class_name}{name[4:]}"
    if "." not in name:
        return f"{fn.module.dotted}:{name}"
    return name


def _check_conc003(project: ProjectIndex) -> Iterator[RawFinding]:
    #: (held, acquired) → first (path, lineno) exhibiting the edge.
    edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for fn in project.all_functions():
        cfg = project.cfg_of(fn)
        held_map = project.locks_of(fn)
        for node in cfg.nodes:
            if not node.acquires:
                continue
            held = held_map.get(node.index)
            if not held:
                continue
            for acquired in node.acquires:
                acq = _normalize_lock(acquired, fn)
                for h in held:
                    hn = _normalize_lock(h, fn)
                    if hn == acq:
                        continue
                    edges.setdefault(
                        (hn, acq), (fn.module.path, node.lineno)
                    )
    # Cycle detection over the lock-order graph (tiny: DFS per node).
    adjacency: Dict[str, List[str]] = {}
    for (src, dst) in edges:
        adjacency.setdefault(src, []).append(dst)
    for targets in adjacency.values():
        targets.sort()
    reported: Set[FrozenSet[str]] = set()
    for start in sorted(adjacency):
        stack = [(start, [start])]
        while stack:
            current, trail = stack.pop()
            for nxt in adjacency.get(current, ()):  # sorted
                if nxt == start:
                    cycle = frozenset(trail)
                    if cycle in reported:
                        continue
                    reported.add(cycle)
                    path, lineno = edges[(current, start)]
                    order = " → ".join(trail + [start])
                    yield (
                        "CONC003",
                        "error",
                        path,
                        lineno,
                        f"lock-acquisition-order cycle: {order} — two "
                        "threads taking these locks in opposite order "
                        "deadlock",
                        "impose a global lock ordering (always acquire "
                        f"'{min(cycle)}' first)",
                    )
                elif nxt not in trail:
                    stack.append((nxt, trail + [nxt]))


# ----------------------------------------------------------------------
# CONC004 — unawaited coroutine / dropped Task
# ----------------------------------------------------------------------
def _is_coroutine_call(
    project: ProjectIndex,
    call: ast.Call,
    fn: FunctionInfo,
    bindings: Dict[str, str],
) -> bool:
    targets, external, leaf = project.classify_call(call, fn, bindings)
    if any(t.is_async for t in targets):
        return True
    if external in _TASK_FACTORIES:
        return True
    return leaf in ("create_task", "ensure_future")


def _check_conc004(project: ProjectIndex) -> Iterator[RawFinding]:
    for fn in project.all_functions():
        path = fn.module.path
        bindings = project._local_bindings(fn)
        cfg = project.cfg_of(fn)
        gens: Dict[int, FrozenSet[Tuple[str, int]]] = {}
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and _is_coroutine_call(project, stmt.value, fn, bindings)
            ):
                name = expr_name(stmt.value.func) or "<coroutine>"
                yield (
                    "CONC004",
                    "error",
                    path,
                    stmt.lineno,
                    f"'{fn.qualname}' creates a coroutine/Task via "
                    f"'{name}(...)' and immediately drops it — it "
                    "never runs (or dies unobserved)",
                    "await it, or keep a reference and await/cancel "
                    "it later",
                )
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and _is_coroutine_call(project, stmt.value, fn, bindings)
            ):
                gens[node.index] = frozenset(
                    [(stmt.targets[0].id, stmt.lineno)]
                )
        if not gens:
            continue

        def transfer(
            node: CFGNode, fact: FrozenSet[Tuple[str, int]]
        ) -> FrozenSet[Tuple[str, int]]:
            if fact and node.stmt is not None:
                mentioned = {
                    n.id
                    for n in _own_expr_nodes(node.stmt)
                    if isinstance(n, ast.Name)
                }
                if mentioned:
                    fact = frozenset(
                        f for f in fact if f[0] not in mentioned
                    )
            return fact | gens.get(node.index, frozenset())

        def join(
            a: FrozenSet[Tuple[str, int]], b: FrozenSet[Tuple[str, int]]
        ) -> FrozenSet[Tuple[str, int]]:
            return a | b  # may: pending on any path

        in_facts, _ = forward_dataflow(cfg, frozenset(), transfer, join)
        for var, lineno in sorted(
            in_facts.get(cfg.exit, frozenset()), key=lambda f: f[1]
        ):
            yield (
                "CONC004",
                "error",
                path,
                lineno,
                f"coroutine/Task assigned to '{var}' in "
                f"'{fn.qualname}' can reach the function exit without "
                "being awaited, stored, or cancelled",
                "await it (or gather/store it) on every path",
            )


# ----------------------------------------------------------------------
# CONC005 — non-async-signal-safe signal handlers
# ----------------------------------------------------------------------
def _resolve_handler(
    module: ModuleIndex, handler: ast.AST
) -> Optional[ast.AST]:
    """The function body registered as a signal handler, if findable."""
    if isinstance(handler, ast.Lambda):
        return handler
    if isinstance(handler, ast.Name):
        qual = module.module_funcs.get(handler.id)
        if qual:
            return module.functions[qual].node
        for qual in sorted(module.functions):
            if module.functions[qual].name == handler.id:
                return module.functions[qual].node
        return None
    if isinstance(handler, ast.Attribute):
        for qual in sorted(module.functions):
            if module.functions[qual].name == handler.attr:
                return module.functions[qual].node
    return None


def _handler_hazard(
    project: ProjectIndex, module: ModuleIndex, body: ast.AST
) -> Optional[str]:
    """The first async-signal-unsafe thing this handler does, if any."""
    fn = _owning_function(module, body)
    for node in scope_nodes(body):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locks = _with_locks(node)
            if locks:
                return (
                    f"takes lock '{locks[0]}' (a handler interrupting "
                    "the lock holder deadlocks)"
                )
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            if is_lockish(expr_name(func.value)):
                return (
                    f"acquires '{expr_name(func.value)}' (a handler "
                    "interrupting the lock holder deadlocks)"
                )
        if fn is not None:
            reason = project.direct_blocking_reason(node, fn)
            if reason is not None:
                return f"does blocking work ({reason})"
            targets, _, _ = project.classify_call(node, fn)
            for target in targets:
                chain = project.blocking.get(target.key)
                if chain is not None:
                    return (
                        f"calls blocking '{_fmt(target)}' ({chain})"
                    )
    return None


def _owning_function(
    module: ModuleIndex, body: ast.AST
) -> Optional[FunctionInfo]:
    for info in module.functions.values():
        if info.node is body:
            return info
    # Lambda handlers: borrow any module-level function's context for
    # import resolution (classify_call only reads module tables then).
    for qual in sorted(module.functions):
        return module.functions[qual]
    return None


def _check_conc005(project: ProjectIndex) -> Iterator[RawFinding]:
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _module_external(module, node.func) != "signal.signal":
                continue
            if len(node.args) < 2:
                continue
            handler = node.args[1]
            body = _resolve_handler(module, handler)
            if body is None:
                continue
            hazard = _handler_hazard(project, module, body)
            if hazard is None:
                continue
            name = expr_name(handler) or "<lambda>"
            yield (
                "CONC005",
                "warning",
                module.path,
                node.lineno,
                f"signal handler '{name}' {hazard}; handlers may run "
                "at any bytecode boundary and must stay "
                "async-signal-safe",
                "set a flag / raise, and do the real work on the main "
                "control path (or use loop.add_signal_handler)",
            )


# ----------------------------------------------------------------------
# CONC006 — fork-after-threads hazards
# ----------------------------------------------------------------------
def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _check_conc006(project: ProjectIndex) -> Iterator[RawFinding]:
    fixit = (
        "use the 'spawn' (or 'forkserver') start method when threads "
        "may already be running"
    )
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            external = _module_external(module, node.func)
            if external is None:
                continue
            if external in (
                "multiprocessing.get_context",
                "multiprocessing.set_start_method",
            ):
                method = _const_str(node.args[0]) if node.args else None
                if method == "fork":
                    yield (
                        "CONC006",
                        "warning",
                        module.path,
                        node.lineno,
                        "explicit 'fork' start method: forking a "
                        "process with live threads copies held locks "
                        "into the child, which can deadlock instantly",
                        fixit,
                    )
            elif external.endswith(".ProcessPoolExecutor"):
                kwargs = {k.arg for k in node.keywords}
                if "mp_context" not in kwargs:
                    yield (
                        "CONC006",
                        "warning",
                        module.path,
                        node.lineno,
                        "ProcessPoolExecutor without mp_context "
                        "defaults to 'fork' on Linux — unsafe once any "
                        "thread (service executor, watchdog) is "
                        "running",
                        fixit,
                    )
            elif external in (
                "multiprocessing.Pool",
                "multiprocessing.Process",
            ):
                yield (
                    "CONC006",
                    "warning",
                    module.path,
                    node.lineno,
                    f"bare {external}() inherits the default 'fork' "
                    "start method on Linux — unsafe once threads are "
                    "running",
                    fixit,
                )


def run_concurrency_rules(project: ProjectIndex) -> List[RawFinding]:
    """Run every CONC check; findings sorted by (path, line, rule)."""
    findings: List[RawFinding] = []
    for check in (
        _check_conc001,
        _check_conc002,
        _check_conc003,
        _check_conc004,
        _check_conc005,
        _check_conc006,
    ):
        findings.extend(check(project))
    findings.sort(key=lambda f: (f[2], f[3], f[0], f[4]))
    return findings
