"""Forward dataflow solvers over the statement-level CFG.

Two analyses drive the CONC rules:

* :func:`locks_held` — a *must* analysis (meet = intersection): the set
  of locks provably held when each node executes.  Seeded by the
  ``acquires``/``releases`` annotations the CFG builder attaches to
  ``with``-enter/exit nodes and explicit ``.acquire()``/``.release()``
  statements.  CONC002 uses it for "is this shared-attribute access
  dominated by the class lock", CONC003 for "which locks were held when
  this one was acquired".
* :func:`forward_dataflow` — the generic worklist engine, also used
  directly by CONC004's *may* analysis ("a coroutine object may reach
  the exit un-awaited"; meet = union).

Facts are ``frozenset`` values; transfer functions are pure.  The
worklist iterates to a fixpoint, which terminates because both fact
lattices here are finite (locks / pending variables mentioned in the
function).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from .cfg import CFG, CFGNode

__all__ = ["forward_dataflow", "locks_held"]

#: A transfer function maps (node, in-fact) to the node's out-fact.
Transfer = Callable[[CFGNode, FrozenSet], FrozenSet]

#: A join merges two facts arriving at a node (meet of the lattice).
Join = Callable[[FrozenSet, FrozenSet], FrozenSet]

_MISSING = object()


def forward_dataflow(
    cfg: CFG,
    init: FrozenSet,
    transfer: Transfer,
    join: Join,
) -> Tuple[Dict[int, FrozenSet], Dict[int, FrozenSet]]:
    """Solve a forward dataflow problem; returns ``(in_facts, out_facts)``.

    ``init`` is the fact at the entry node.  Unreached nodes are absent
    from the returned maps (treat as "no information").
    """
    in_facts: Dict[int, FrozenSet] = {cfg.entry: init}
    out_facts: Dict[int, FrozenSet] = {}
    worklist = [cfg.entry]
    while worklist:
        index = worklist.pop()
        node = cfg.nodes[index]
        out = transfer(node, in_facts[index])
        out_facts[index] = out
        for succ in node.succs:
            prev = in_facts.get(succ, _MISSING)
            merged = out if prev is _MISSING else join(prev, out)
            if prev is _MISSING or merged != prev:
                in_facts[succ] = merged
                worklist.append(succ)
    return in_facts, out_facts


def locks_held(cfg: CFG) -> Dict[int, FrozenSet[str]]:
    """Locks provably held *when each node executes* (must analysis).

    Returns node index → frozenset of lock names (the CFG's syntactic
    identities, e.g. ``"self._lock"``).  A node inside
    ``with self._lock:`` maps to a set containing ``"self._lock"``;
    the ``with`` header node itself does not (the lock is taken *by*
    it, not before it).
    """

    def transfer(node: CFGNode, fact: FrozenSet[str]) -> FrozenSet[str]:
        if node.releases:
            fact = fact - frozenset(node.releases)
        if node.acquires:
            fact = fact | frozenset(node.acquires)
        return fact

    def join(a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a & b  # must: held only if held on every path

    in_facts, _ = forward_dataflow(cfg, frozenset(), transfer, join)
    return in_facts
