"""Statement-level control-flow graphs over Python function ASTs.

The concurrency analyzer (CONC rules) needs to reason about *paths*
through a function — "is this attribute write dominated by a lock
acquisition?", "can this coroutine object reach the function exit
without being awaited?" — which a flat AST walk cannot answer.  This
module builds a small, conservative CFG per function:

* one node per statement, plus synthetic ``entry``/``exit`` nodes;
* ``if``/``while``/``for`` contribute branch and loop back edges
  (``break``/``continue``/``return``/``raise`` cut the fall-through);
* ``try`` bodies conservatively edge every contained statement to every
  handler head (an exception may surface anywhere), handlers and
  ``finally`` chain as written;
* ``with`` blocks contribute a *enter*/*exit* node pair annotated with
  the locks they acquire and release, which is what the locks-held
  dataflow (:mod:`repro.analysis.concurrency.dataflow`) keys on.
  Explicit ``lock.acquire()`` / ``lock.release()`` expression
  statements are annotated the same way.

Lock identity is syntactic: the dotted expression text
(``self._lock``, ``_STATS_LOCK``) of anything whose trailing name
looks lock-like (:func:`is_lockish`).  That is exactly the seed the
ISSUE calls for — ``with self._lock:`` patterns as used by
:class:`repro.exec.cache.HotCache` — and it keeps the analysis
dependency-free and fast.

Nested ``def``/``async def``/``lambda``/``class`` bodies are *not*
descended into: they execute in their own scope at their own time, so
each function gets its own CFG (see
:meth:`~repro.analysis.concurrency.summaries.ProjectIndex`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CFGNode",
    "CFG",
    "build_cfg",
    "expr_name",
    "is_lockish",
    "scope_statements",
    "scope_nodes",
]


def expr_name(node: ast.AST) -> Optional[str]:
    """Dotted rendering of a ``Name``/``Attribute`` chain, else ``None``.

    >>> import ast
    >>> expr_name(ast.parse("self._lock", mode="eval").body)
    'self._lock'
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = expr_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def is_lockish(name: Optional[str]) -> bool:
    """Heuristic: does this dotted name denote a mutual-exclusion object?

    Matches when the trailing component contains ``lock`` or ``mutex``
    (``self._lock``, ``_STATS_LOCK``, ``cache_mutex``) — the naming
    convention this repo (and most Python code) follows.  ``block`` is
    carved out first so ``block_size``/``blocking`` don't match.
    """
    if not name:
        return False
    leaf = name.rsplit(".", 1)[-1].lower()
    return "mutex" in leaf or "lock" in leaf.replace("block", "")


def _with_locks(stmt: ast.AST) -> Tuple[str, ...]:
    """Lock names acquired by a ``with``/``async with`` statement."""
    locks = []
    for item in getattr(stmt, "items", ()):
        name = expr_name(item.context_expr)
        if is_lockish(name):
            locks.append(name)
    return tuple(locks)


def _expr_lock_op(stmt: ast.stmt) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """``(acquires, releases)`` of an explicit acquire()/release() stmt."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return (), ()
    func = stmt.value.func
    if not isinstance(func, ast.Attribute):
        return (), ()
    name = expr_name(func.value)
    if not is_lockish(name):
        return (), ()
    if func.attr == "acquire":
        return (name,), ()
    if func.attr == "release":
        return (), (name,)
    return (), ()


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic entry/exit marker.

    Attributes:
        index: position in ``CFG.nodes``.
        kind: ``entry``/``exit``/``stmt``/``with-enter``/``with-exit``/
            ``except-entry``.
        stmt: the underlying AST statement (``None`` for entry/exit).
        acquires: lock names this node acquires (``with`` enter,
            explicit ``.acquire()``).
        releases: lock names this node releases.
    """

    index: int
    kind: str
    stmt: Optional[ast.AST] = None
    acquires: Tuple[str, ...] = ()
    releases: Tuple[str, ...] = ()
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        """Source line of the underlying statement (0 for synthetic)."""
        return getattr(self.stmt, "lineno", 0)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    func: ast.AST
    nodes: List[CFGNode] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def add_edge(self, src: int, dst: int) -> None:
        """Add ``src -> dst`` (idempotent)."""
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def stmt_nodes(self) -> Iterator[CFGNode]:
        """The non-synthetic nodes, in creation (≈ source) order."""
        for node in self.nodes:
            if node.stmt is not None:
                yield node


class _Builder:
    """Single-pass recursive CFG construction over a statement list."""

    def __init__(self, func: ast.AST):
        self.cfg = CFG(func=func)
        self.cfg.nodes.append(CFGNode(0, "entry"))
        self.cfg.nodes.append(CFGNode(1, "exit"))
        # (loop_head_index, break_sink_list) innermost-last.
        self._loops: List[Tuple[int, List[int]]] = []
        # Active handler-entry node groups of enclosing try statements.
        self._handlers: List[List[int]] = []

    def _new_node(
        self,
        kind: str,
        stmt: Optional[ast.AST],
        acquires: Tuple[str, ...] = (),
        releases: Tuple[str, ...] = (),
        reaches_handlers: bool = True,
    ) -> int:
        node = CFGNode(
            len(self.cfg.nodes),
            kind,
            stmt=stmt,
            acquires=acquires,
            releases=releases,
        )
        self.cfg.nodes.append(node)
        if reaches_handlers:
            # Any statement inside a try body may raise: edge to every
            # enclosing handler head (conservative).
            for group in self._handlers:
                for handler_entry in group:
                    self.cfg.add_edge(node.index, handler_entry)
        return node.index

    def _connect(self, frontier: Sequence[int], target: int) -> None:
        for src in frontier:
            self.cfg.add_edge(src, target)

    def build(self, body: Sequence[ast.stmt]) -> None:
        frontier = self._block(body, [self.cfg.entry])
        self._connect(frontier, self.cfg.exit)

    # ------------------------------------------------------------------
    def _block(
        self, stmts: Sequence[ast.stmt], frontier: List[int]
    ) -> List[int]:
        for stmt in stmts:
            frontier = self._statement(stmt, frontier)
        return frontier

    def _statement(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            cond = self._new_node("stmt", stmt)
            self._connect(frontier, cond)
            then_out = self._block(stmt.body, [cond])
            else_out = (
                self._block(stmt.orelse, [cond]) if stmt.orelse else [cond]
            )
            return then_out + [n for n in else_out if n not in then_out]

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new_node("stmt", stmt)
            self._connect(frontier, head)
            breaks: List[int] = []
            self._loops.append((head, breaks))
            body_out = self._block(stmt.body, [head])
            self._loops.pop()
            self._connect(body_out, head)  # loop back edge
            out = (
                self._block(stmt.orelse, [head]) if stmt.orelse else [head]
            )
            return out + [n for n in breaks if n not in out]

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locks = _with_locks(stmt)
            enter = self._new_node("with-enter", stmt, acquires=locks)
            self._connect(frontier, enter)
            body_out = self._block(stmt.body, [enter])
            leave = self._new_node("with-exit", stmt, releases=locks)
            self._connect(body_out, leave)
            return [leave]

        if isinstance(stmt, ast.Try) or type(stmt).__name__ == "TryStar":
            entries = [
                self._new_node("except-entry", h, reaches_handlers=False)
                for h in stmt.handlers
            ]
            self._handlers.append(entries)
            body_out = self._block(stmt.body, frontier)
            self._handlers.pop()
            if stmt.orelse:
                body_out = self._block(stmt.orelse, body_out)
            handler_outs: List[int] = []
            for h, entry in zip(stmt.handlers, entries):
                handler_outs.extend(self._block(h.body, [entry]))
            outs = body_out + handler_outs
            if stmt.finalbody:
                return self._block(stmt.finalbody, outs)
            return outs

        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self._new_node("stmt", stmt)
            self._connect(frontier, node)
            if isinstance(stmt, ast.Raise) and self._handlers:
                pass  # edge to handlers already added by _new_node
            else:
                self.cfg.add_edge(node, self.cfg.exit)
            return []

        if isinstance(stmt, ast.Break):
            node = self._new_node("stmt", stmt)
            self._connect(frontier, node)
            if self._loops:
                self._loops[-1][1].append(node)
            return []

        if isinstance(stmt, ast.Continue):
            node = self._new_node("stmt", stmt)
            self._connect(frontier, node)
            if self._loops:
                self.cfg.add_edge(node, self._loops[-1][0])
            return []

        # Simple statement (incl. nested def/class, which are opaque
        # here — each function gets its own CFG).
        acquires, releases = _expr_lock_op(stmt)
        node = self._new_node(
            "stmt", stmt, acquires=acquires, releases=releases
        )
        self._connect(frontier, node)
        return [node]


def build_cfg(func: ast.AST) -> CFG:
    """Build the statement-level CFG of one function definition.

    ``func`` is an ``ast.FunctionDef``/``AsyncFunctionDef`` (or a
    ``Lambda``, whose single expression becomes one node).
    """
    builder = _Builder(func)
    if isinstance(func, ast.Lambda):
        node = builder._new_node("stmt", func.body)
        builder.cfg.add_edge(builder.cfg.entry, node)
        builder.cfg.add_edge(node, builder.cfg.exit)
    else:
        builder.build(func.body)
    return builder.cfg


def scope_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Statements of ``func``'s own scope (no nested def/class bodies)."""
    for stmt in getattr(func, "body", ()):
        yield from _own_statements(stmt)


def _own_statements(stmt: ast.stmt) -> Iterator[ast.stmt]:
    yield stmt
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return  # separate scope
    for block in ("body", "orelse", "finalbody"):
        for child in getattr(stmt, block, ()):
            yield from _own_statements(child)
    for handler in getattr(stmt, "handlers", ()):
        for child in handler.body:
            yield from _own_statements(child)


def scope_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` restricted to ``root``'s own scope.

    Descends expressions and control flow but stops at nested
    ``def``/``async def``/``lambda``/``class`` boundaries, so a
    blocking call inside an executor-offloaded closure is *not*
    attributed to the enclosing function.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                ),
            ):
                continue
            stack.append(child)
