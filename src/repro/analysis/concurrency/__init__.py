"""Concurrency static analysis: CFG/dataflow engine + CONC rules.

The compile fabric is genuinely concurrent — an asyncio router over
shard processes, thread-pool executors with an async-exception
watchdog, signal-driven drain, lock-guarded caches — and its hazard
classes (blocking the event loop, unguarded shared mutation,
lock-order inversion, unsafe signal handlers, fork-after-threads) are
invisible to tests that happen not to lose the race.  This package
catches them statically:

* :mod:`~repro.analysis.concurrency.cfg` — statement-level CFGs with
  branch/loop/try edges and lock acquire/release annotations;
* :mod:`~repro.analysis.concurrency.dataflow` — the forward worklist
  solver and the locks-held must-analysis;
* :mod:`~repro.analysis.concurrency.summaries` — module/project
  indexing, call resolution, and call-graph blocking-ness summaries;
* :mod:`~repro.analysis.concurrency.conc_rules` — the CONC001–CONC006
  hazard rules;
* :mod:`~repro.analysis.concurrency.engine` — the shared KRN+CONC
  engine behind ``merced lint-code`` and its baseline gate.
"""

from .cfg import CFG, CFGNode, build_cfg, expr_name, is_lockish
from .conc_rules import CONC_RULES, run_concurrency_rules
from .dataflow import forward_dataflow, locks_held
from .engine import (
    DEFAULT_BASELINE,
    analyze_paths,
    finding_fingerprint,
    lint_code_main,
    load_baseline,
    write_baseline,
)
from .summaries import (
    BLOCKING_ATTRS,
    BLOCKING_CALLS,
    ClassInfo,
    FunctionInfo,
    ModuleIndex,
    ProjectIndex,
)

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "expr_name",
    "is_lockish",
    "forward_dataflow",
    "locks_held",
    "BLOCKING_ATTRS",
    "BLOCKING_CALLS",
    "ModuleIndex",
    "ProjectIndex",
    "FunctionInfo",
    "ClassInfo",
    "CONC_RULES",
    "run_concurrency_rules",
    "analyze_paths",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
    "lint_code_main",
    "DEFAULT_BASELINE",
]
