"""Module indexing and call-graph blocking-ness summaries.

The CONC rules need three things a single-function walk cannot give:

* **Function inventory** — every ``def``/``async def`` in the analyzed
  file set, including class methods and nested functions, each with its
  own scope (:class:`FunctionInfo`).
* **Name resolution** — enough import/alias/attribute tracking to turn
  a call site into either a *dotted external name* (``time.sleep``,
  ``multiprocessing.get_context``) or a set of *analyzed targets*
  (``self.cache.flush`` → ``ResultCache.flush`` via the
  ``self.cache = ResultCache(...)`` binding in ``__init__``).
* **Blocking-ness propagation** — a module-level fixpoint over the
  resolved call graph: a function is *blocking* if it directly calls a
  known blocking root (:data:`BLOCKING_CALLS`, :data:`BLOCKING_ATTRS`)
  or any resolved callee is blocking.  Each blocking function carries a
  human-readable reason chain
  (``ResultCache.flush → .unlink() [blocking file I/O]``) that CONC001
  findings surface verbatim.

Resolution is deliberately *under*-approximate: an unresolvable call
contributes nothing, so the analyzer errs toward silence rather than
noise.  The one over-approximation is :data:`BLOCKING_ATTRS` — method
names (``.result``, ``.unlink``, ``.read_text`` ...) that on *any*
plausible receiver (``Future``, ``Path``, file objects) mean blocking
I/O; receivers the index can resolve to an analyzed class are exempted
from it and go through their real summary instead.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .cfg import CFG, build_cfg, expr_name, scope_nodes
from .dataflow import locks_held

__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_ATTRS",
    "FunctionInfo",
    "ClassInfo",
    "ModuleIndex",
    "ProjectIndex",
    "module_name_for",
]

#: Dotted call roots that block the calling thread (never safe on an
#: event loop).  Values are the reason text surfaced in findings.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "time.sleep() blocks the thread",
    "open": "open() is blocking file I/O",
    "input": "input() blocks on stdin",
    "subprocess.run": "subprocess.run() blocks until the child exits",
    "subprocess.call": "subprocess.call() blocks until the child exits",
    "subprocess.check_call": "subprocess.check_call() blocks",
    "subprocess.check_output": "subprocess.check_output() blocks",
    "subprocess.getoutput": "subprocess.getoutput() blocks",
    "subprocess.Popen": "subprocess.Popen() forks/execs synchronously",
    "os.system": "os.system() blocks until the command exits",
    "os.replace": "os.replace() is blocking file I/O",
    "os.rename": "os.rename() is blocking file I/O",
    "os.unlink": "os.unlink() is blocking file I/O",
    "os.remove": "os.remove() is blocking file I/O",
    "os.stat": "os.stat() is blocking file I/O",
    "os.listdir": "os.listdir() is blocking file I/O",
    "os.scandir": "os.scandir() is blocking file I/O",
    "os.walk": "os.walk() is blocking file I/O",
    "os.makedirs": "os.makedirs() is blocking file I/O",
    "os.mkdir": "os.mkdir() is blocking file I/O",
    "os.rmdir": "os.rmdir() is blocking file I/O",
    "os.fdopen": "os.fdopen() opens blocking file I/O",
    "shutil.copy": "shutil.copy() is blocking file I/O",
    "shutil.copy2": "shutil.copy2() is blocking file I/O",
    "shutil.copyfile": "shutil.copyfile() is blocking file I/O",
    "shutil.copytree": "shutil.copytree() is blocking file I/O",
    "shutil.move": "shutil.move() is blocking file I/O",
    "shutil.rmtree": "shutil.rmtree() is blocking file I/O",
    "socket.create_connection": "socket.create_connection() blocks",
    "socket.getaddrinfo": "socket.getaddrinfo() does blocking DNS",
    "socket.gethostbyname": "socket.gethostbyname() does blocking DNS",
    "urllib.request.urlopen": "urlopen() is blocking network I/O",
    "tempfile.mkstemp": "tempfile.mkstemp() is blocking file I/O",
    "tempfile.mkdtemp": "tempfile.mkdtemp() is blocking file I/O",
    "tempfile.NamedTemporaryFile": "NamedTemporaryFile() opens blocking "
    "file I/O",
    "tempfile.TemporaryDirectory": "TemporaryDirectory() is blocking "
    "file I/O",
}

#: Method names that mean blocking I/O on any plausible receiver —
#: ``Future.result``, ``Path.unlink``/``.glob``/``.stat``/``.mkdir``,
#: text/bytes file helpers.  Applied only when the receiver does NOT
#: resolve to an analyzed class (those use their real summary).
BLOCKING_ATTRS: Dict[str, str] = {
    "result": ".result() blocks on a Future",
    "read_text": ".read_text() is blocking file I/O",
    "write_text": ".write_text() is blocking file I/O",
    "read_bytes": ".read_bytes() is blocking file I/O",
    "write_bytes": ".write_bytes() is blocking file I/O",
    "unlink": ".unlink() is blocking file I/O",
    "stat": ".stat() is blocking file I/O",
    "glob": ".glob() is blocking directory I/O",
    "rglob": ".rglob() is blocking directory I/O",
    "iterdir": ".iterdir() is blocking directory I/O",
    "mkdir": ".mkdir() is blocking file I/O",
    "rmdir": ".rmdir() is blocking file I/O",
    "touch": ".touch() is blocking file I/O",
}


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, found by walking up ``__init__.py``.

    ``src/repro/service/server.py`` → ``repro.service.server``; a file
    outside any package keeps its bare stem (which is how ad-hoc test
    fixtures in a flat temp directory resolve each other's imports).
    """
    path = os.path.normpath(os.path.abspath(path))
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.insert(0, pkg)
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One analyzed ``def``/``async def`` (module, class, or nested)."""

    qualname: str
    name: str
    node: ast.AST
    is_async: bool
    module: "ModuleIndex"
    class_name: Optional[str] = None
    local_funcs: Dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        """Project-wide identity: ``(module path, qualname)``."""
        return (self.module.path, self.qualname)

    @property
    def display(self) -> str:
        """Short human name used in reason chains."""
        return self.qualname


@dataclass
class ClassInfo:
    """Per-class facts: methods, lock attrs, self-attribute bindings."""

    name: str
    node: ast.ClassDef
    module: "ModuleIndex"
    methods: Dict[str, str] = field(default_factory=dict)  # name → qualname
    #: self attrs that hold locks (``_lock`` for ``self._lock = Lock()``
    #: or any lock-named attribute assigned in the class).
    lock_attrs: Set[str] = field(default_factory=set)
    #: ``self.X = ClassName(...)`` bindings (bare class name).
    self_attr_types: Dict[str, str] = field(default_factory=dict)


class _IndexWalker:
    """Recursive walk of one module building its function/class tables."""

    def __init__(self, index: "ModuleIndex"):
        self.index = index

    def walk_module(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._statement(stmt, prefix="", cls=None, parent=None)

    def _statement(
        self,
        stmt: ast.stmt,
        prefix: str,
        cls: Optional[ClassInfo],
        parent: Optional[FunctionInfo],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{stmt.name}"
            if qualname in self.index.functions:  # redefinition: keep last
                qualname = f"{qualname}@{stmt.lineno}"
            info = FunctionInfo(
                qualname=qualname,
                name=stmt.name,
                node=stmt,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
                module=self.index,
                class_name=cls.name if cls else None,
            )
            self.index.functions[qualname] = info
            if cls is not None and prefix == f"{cls.name}.":
                cls.methods[stmt.name] = qualname
            elif parent is not None:
                parent.local_funcs[stmt.name] = qualname
            else:
                self.index.module_funcs[stmt.name] = qualname
            for child in stmt.body:
                self._statement(
                    child, prefix=f"{qualname}.", cls=None, parent=info
                )
            if cls is not None:
                self._collect_class_facts(cls, stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            info = ClassInfo(name=stmt.name, node=stmt, module=self.index)
            self.index.classes[stmt.name] = info
            for child in stmt.body:
                self._statement(
                    child, prefix=f"{stmt.name}.", cls=info, parent=None
                )
            return
        # Compound statements may hide defs (e.g. under `if TYPE_CHECKING`).
        for block in ("body", "orelse", "finalbody"):
            for child in getattr(stmt, block, ()):
                self._statement(child, prefix=prefix, cls=cls, parent=parent)
        for handler in getattr(stmt, "handlers", ()):
            for child in handler.body:
                self._statement(child, prefix=prefix, cls=cls, parent=parent)

    def _collect_class_facts(self, cls: ClassInfo, method: ast.AST) -> None:
        """Harvest ``self.X = ...`` lock and type bindings from a method."""
        for node in scope_nodes(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if _is_lock_ctor(node.value) or (
                    ("lock" in attr.lower() or "mutex" in attr.lower())
                ):
                    if _is_lock_ctor(node.value):
                        cls.lock_attrs.add(attr)
                    elif "lock" in attr.lower() or "mutex" in attr.lower():
                        cls.lock_attrs.add(attr)
                bound = _class_of_expr(node.value)
                if bound:
                    cls.self_attr_types[attr] = bound
        # Dataclass field annotations: `stats: CacheStats = field(...)`
        # contribute type bindings too.
        if method is cls.node:  # pragma: no cover - not reached via walk
            return


def _is_lock_ctor(expr: ast.AST) -> bool:
    """Is this expression a ``threading.Lock()``-style constructor call?"""
    if isinstance(expr, ast.IfExp):
        return _is_lock_ctor(expr.body) or _is_lock_ctor(expr.orelse)
    if not isinstance(expr, ast.Call):
        return False
    name = expr_name(expr.func) or ""
    leaf = name.rsplit(".", 1)[-1]
    return leaf in ("Lock", "RLock", "Condition", "Semaphore",
                    "BoundedSemaphore")


def _class_of_expr(expr: ast.AST) -> Optional[str]:
    """Bare class name when ``expr`` is (conditionally) ``ClassName(...)``.

    Handles the ``X(...) if cond else None`` conditional-binding idiom
    (``CompileService.__init__`` binds ``self.cache``/``self.hot`` that
    way).
    """
    if isinstance(expr, ast.IfExp):
        return _class_of_expr(expr.body) or _class_of_expr(expr.orelse)
    if isinstance(expr, ast.Call):
        name = expr_name(expr.func)
        if name:
            leaf = name.rsplit(".", 1)[-1]
            if leaf[:1].isupper():
                return leaf
    return None


class ModuleIndex:
    """Everything the analyzer knows about one parsed module."""

    def __init__(self, path: str, code: str, tree: ast.Module):
        self.path = path
        self.code = code
        self.tree = tree
        self.lines = code.splitlines()
        self.dotted = module_name_for(path)
        self.package = self.dotted.rsplit(".", 1)[0] if "." in self.dotted else ""
        #: ``import X [as Y]`` → local name → dotted module.
        self.import_aliases: Dict[str, str] = {}
        #: ``from M import X [as Y]`` → local name → dotted full name.
        self.from_imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.module_funcs: Dict[str, str] = {}
        self._collect_imports()
        _IndexWalker(self).walk_module(tree)
        # Dataclass-style annotated class attributes contribute type
        # bindings: `stats: CacheStats = field(default_factory=CacheStats)`.
        for cls in self.classes.values():
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    annotation = stmt.annotation
                    name = expr_name(annotation)
                    if name:
                        leaf = name.rsplit(".", 1)[-1]
                        if leaf[:1].isupper():
                            cls.self_attr_types.setdefault(
                                stmt.target.id, leaf
                            )

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        self.import_aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{base}.{alias.name}"

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if not node.level:
            return node.module
        parts = self.package.split(".") if self.package else []
        drop = node.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[: len(parts) - drop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None


class ProjectIndex:
    """The cross-module index + blocking-ness summaries of one analysis run."""

    def __init__(self, modules: Sequence[ModuleIndex]):
        self.modules: Dict[str, ModuleIndex] = {
            m.path: m for m in sorted(modules, key=lambda m: m.path)
        }
        self.by_dotted: Dict[str, ModuleIndex] = {}
        for m in self.modules.values():
            self.by_dotted.setdefault(m.dotted, m)
        #: Bare class name → ClassInfo (first module in path order wins).
        self.class_registry: Dict[str, ClassInfo] = {}
        for m in self.modules.values():
            for cls in m.classes.values():
                self.class_registry.setdefault(cls.name, cls)
        self._cfg_cache: Dict[Tuple[str, str], CFG] = {}
        self._locks_cache: Dict[Tuple[str, str], Dict[int, frozenset]] = {}
        self._awaited_cache: Dict[Tuple[str, str], Set[int]] = {}
        #: (path, qualname) → blocking reason chain.
        self.blocking: Dict[Tuple[str, str], str] = {}
        self._compute_blocking()

    # ------------------------------------------------------------------
    # per-function caches
    # ------------------------------------------------------------------
    def all_functions(self) -> List[FunctionInfo]:
        """Every indexed function, in deterministic (path, line) order."""
        out: List[FunctionInfo] = []
        for m in self.modules.values():
            out.extend(
                sorted(
                    m.functions.values(), key=lambda f: f.node.lineno
                )
            )
        return out

    def cfg_of(self, fn: FunctionInfo) -> CFG:
        """The (cached) CFG of ``fn``."""
        if fn.key not in self._cfg_cache:
            self._cfg_cache[fn.key] = build_cfg(fn.node)
        return self._cfg_cache[fn.key]

    def locks_of(self, fn: FunctionInfo) -> Dict[int, frozenset]:
        """The (cached) locks-held facts of ``fn``."""
        if fn.key not in self._locks_cache:
            self._locks_cache[fn.key] = locks_held(self.cfg_of(fn))
        return self._locks_cache[fn.key]

    def awaited_calls(self, fn: FunctionInfo) -> Set[int]:
        """``id()`` of every Call node directly under an ``await``."""
        if fn.key not in self._awaited_cache:
            awaited: Set[int] = set()
            for node in scope_nodes(fn.node):
                if isinstance(node, ast.Await) and isinstance(
                    node.value, ast.Call
                ):
                    awaited.add(id(node.value))
            self._awaited_cache[fn.key] = awaited
        return self._awaited_cache[fn.key]

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_class(self, name: Optional[str]) -> Optional[ClassInfo]:
        """Project-wide class lookup by bare name."""
        if not name:
            return None
        return self.class_registry.get(name)

    def _class_targets(self, cls: Optional[ClassInfo]) -> List[FunctionInfo]:
        """Constructor summary targets: ``__init__`` + ``__post_init__``."""
        if cls is None:
            return []
        out = []
        for ctor in ("__init__", "__post_init__"):
            qual = cls.methods.get(ctor)
            if qual:
                out.append(cls.module.functions[qual])
        return out

    def _local_bindings(self, fn: FunctionInfo) -> Dict[str, str]:
        """``var = ClassName(...)`` bindings local to ``fn``'s scope."""
        bindings: Dict[str, str] = {}
        for node in scope_nodes(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    bound = _class_of_expr(node.value)
                    if bound:
                        bindings[target.id] = bound
        return bindings

    def classify_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        local_bindings: Optional[Dict[str, str]] = None,
    ) -> Tuple[List[FunctionInfo], Optional[str], Optional[str]]:
        """Resolve one call site.

        Returns ``(targets, external, attr_leaf)``:

        * ``targets`` — analyzed functions this call may invoke (empty
          when unresolvable);
        * ``external`` — the dotted external name when the callee maps
          through imports to an un-analyzed module (``"time.sleep"``),
          or a bare builtin name (``"open"``);
        * ``attr_leaf`` — the trailing attribute name of an otherwise
          unresolvable method call (``"unlink"`` for ``path.unlink()``),
          for :data:`BLOCKING_ATTRS` matching.
        """
        module = fn.module
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in fn.local_funcs:
                return [module.functions[fn.local_funcs[name]]], None, None
            if name in module.classes:
                return self._class_targets(module.classes[name]), None, None
            if name in module.module_funcs:
                return (
                    [module.functions[module.module_funcs[name]]],
                    None,
                    None,
                )
            if name in module.from_imports:
                dotted = module.from_imports[name]
                target = self._dotted_function(dotted)
                if target is not None:
                    return [target], None, None
                cls = self._dotted_class(dotted)
                if cls is not None:
                    return self._class_targets(cls), None, None
                return [], dotted, None
            if name in module.import_aliases:
                return [], module.import_aliases[name], None
            if name in ("open", "input"):
                return [], name, None
            return [], None, None

        if isinstance(func, ast.Attribute):
            chain = expr_name(func)
            leaf = func.attr
            if chain is None:
                # e.g. Path(self.directory).glob(...) — receiver is an
                # expression; only the method name is known.
                return [], None, leaf
            parts = chain.split(".")
            if parts[0] == "self" and fn.class_name:
                cls = fn.module.classes.get(fn.class_name)
                if cls is not None and len(parts) == 2:
                    qual = cls.methods.get(leaf)
                    if qual:
                        return [fn.module.functions[qual]], None, None
                    return [], None, None  # unknown own-method: stay quiet
                if cls is not None and len(parts) == 3:
                    bound = self.resolve_class(
                        cls.self_attr_types.get(parts[1])
                    )
                    if bound is not None:
                        qual = bound.methods.get(leaf)
                        if qual:
                            return (
                                [bound.module.functions[qual]],
                                None,
                                None,
                            )
                        return [], None, None
                return [], None, leaf
            if parts[0] in module.import_aliases:
                dotted = ".".join(
                    [module.import_aliases[parts[0]]] + parts[1:]
                )
                target = self._dotted_function(dotted)
                if target is not None:
                    return [target], None, None
                return [], dotted, None
            if parts[0] in module.from_imports:
                dotted = ".".join(
                    [module.from_imports[parts[0]]] + parts[1:]
                )
                target = self._dotted_function(dotted)
                if target is not None:
                    return [target], None, None
                return [], dotted, None
            bindings = (
                local_bindings
                if local_bindings is not None
                else self._local_bindings(fn)
            )
            if parts[0] in bindings and len(parts) == 2:
                cls = self.resolve_class(bindings[parts[0]])
                if cls is not None:
                    qual = cls.methods.get(leaf)
                    if qual:
                        return [cls.module.functions[qual]], None, None
                    return [], None, None
            return [], None, leaf

        return [], None, None

    def _dotted_function(self, dotted: str) -> Optional[FunctionInfo]:
        """An analyzed function behind a fully dotted name, if any."""
        if "." not in dotted:
            return None
        mod, leaf = dotted.rsplit(".", 1)
        module = self.by_dotted.get(mod)
        if module is None:
            return None
        qual = module.module_funcs.get(leaf)
        return module.functions[qual] if qual else None

    def _dotted_class(self, dotted: str) -> Optional[ClassInfo]:
        """An analyzed class behind a fully dotted name, if any."""
        if "." not in dotted:
            return None
        mod, leaf = dotted.rsplit(".", 1)
        module = self.by_dotted.get(mod)
        if module is None:
            return None
        return module.classes.get(leaf)

    # ------------------------------------------------------------------
    # blocking-ness fixpoint
    # ------------------------------------------------------------------
    def direct_blocking_reason(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        local_bindings: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """The blocking-root reason of this call site, if it is one."""
        targets, external, leaf = self.classify_call(
            call, fn, local_bindings
        )
        if targets:
            return None  # resolved calls go through summaries
        if external is not None and external in BLOCKING_CALLS:
            return BLOCKING_CALLS[external]
        if leaf is not None and leaf in BLOCKING_ATTRS:
            return BLOCKING_ATTRS[leaf]
        return None

    def _compute_blocking(self) -> None:
        """Seed direct roots, then propagate over resolved call edges."""
        edges: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        order: List[FunctionInfo] = self.all_functions()
        for fn in order:
            awaited = self.awaited_calls(fn)
            bindings = self._local_bindings(fn)
            callees: List[FunctionInfo] = []
            for node in scope_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if id(node) in awaited:
                    continue  # awaited calls are coroutines, not blockers
                reason = self.direct_blocking_reason(node, fn, bindings)
                if reason is not None and fn.key not in self.blocking:
                    self.blocking[fn.key] = reason
                callees.extend(
                    self.classify_call(node, fn, bindings)[0]
                )
            edges[fn.key] = callees
        changed = True
        while changed:
            changed = False
            for fn in order:
                if fn.key in self.blocking:
                    continue
                for callee in edges[fn.key]:
                    if callee.is_async:
                        continue  # calling an async fn just makes a coroutine
                    reason = self.blocking.get(callee.key)
                    if reason is not None:
                        self.blocking[fn.key] = (
                            f"{callee.display} → {reason}"
                        )
                        changed = True
                        break
