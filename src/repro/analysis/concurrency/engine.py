"""The code-lint engine: one parse, two rule families, one report.

:func:`analyze_paths` parses every ``.py`` file once and drives both
AST rule families over the shared trees:

* **KRN** — the kernel determinism/pairing invariants
  (:mod:`repro.analysis.kernel_lint` supplies the per-tree check and
  the cross-file KRN004 test-mention pass);
* **CONC** — the concurrency hazard rules
  (:mod:`repro.analysis.concurrency.conc_rules` over the
  :class:`~repro.analysis.concurrency.summaries.ProjectIndex`).

``merced lint-code`` (:func:`lint_code_main`) adds the **baseline
gate**: a committed JSON file of fingerprinted findings that are
tolerated (pre-existing debt); anything not in the baseline fails the
run, warnings included — so CI starts hard the day the analyzer lands.
Fingerprints hash ``rule|path|message`` (not line numbers), surviving
unrelated edits to the same file.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, DiagnosticReport, severity_at_least
from ..kernel_lint import (
    KERNEL_RULES,
    _iter_py_files,
    _suppressed,
    cross_check_references,
    lint_tree,
)
from .conc_rules import CONC_RULES, run_concurrency_rules
from .summaries import ModuleIndex, ProjectIndex

__all__ = [
    "analyze_paths",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
    "lint_code_main",
    "DEFAULT_BASELINE",
]

DEFAULT_BASELINE = "lint_code_baseline.json"


def _parse_files(
    paths: Sequence[str],
) -> Tuple[List[ModuleIndex], List[Diagnostic]]:
    """Parse every ``.py`` under ``paths`` once; collect parse errors."""
    import ast

    modules: List[ModuleIndex] = []
    errors: List[Diagnostic] = []
    for path in _iter_py_files(paths):
        with open(path) as fh:
            code = fh.read()
        try:
            tree = ast.parse(code, filename=path)
        except SyntaxError as exc:
            errors.append(
                Diagnostic(
                    rule_id="KRN001",
                    severity="error",
                    location=f"{path}:{exc.lineno or 0}",
                    message=f"file does not parse: {exc.msg}",
                    fixit_hint="",
                )
            )
            continue
        modules.append(ModuleIndex(path, code, tree))
    return modules, errors


def analyze_paths(
    paths: Sequence[str],
    tests_dir: Optional[str] = None,
    families: Sequence[str] = ("KRN", "CONC"),
) -> DiagnosticReport:
    """Run the selected rule families over every ``.py`` under ``paths``.

    Each file is parsed exactly once; the KRN checks reuse the same
    trees the concurrency index is built from.  ``tests_dir`` feeds the
    KRN004 reference-twin cross-check (KRN family only).
    """
    modules, diags = _parse_files(paths)
    if "KRN" in families:
        all_refs: List[Tuple[str, str, int]] = []
        for module in modules:
            file_diags, refs = lint_tree(
                module.tree, module.code, module.path
            )
            diags.extend(file_diags)
            all_refs.extend(
                (name, module.path, lineno) for name, lineno in refs
            )
        diags.extend(cross_check_references(all_refs, tests_dir))
    if "CONC" in families:
        project = ProjectIndex(modules)
        lines_of: Dict[str, List[str]] = {
            m.path: m.lines for m in modules
        }
        for rule_id, severity, path, lineno, message, fixit in (
            run_concurrency_rules(project)
        ):
            if _suppressed(lines_of.get(path, ()), lineno, rule_id):
                continue
            diags.append(
                Diagnostic(
                    rule_id=rule_id,
                    severity=severity,
                    location=f"{path}:{lineno}",
                    message=message,
                    fixit_hint=fixit,
                )
            )
    rules: Tuple = ()
    if "KRN" in families:
        rules += KERNEL_RULES
    if "CONC" in families:
        rules += CONC_RULES
    diags.sort(key=_diag_sort_key)
    return DiagnosticReport(
        subject=", ".join(paths),
        diagnostics=tuple(diags),
        rules_checked=rules,
    )


def _diag_sort_key(diag: Diagnostic) -> Tuple[str, int, str, str]:
    path, _, line = diag.location.rpartition(":")
    try:
        return (path, int(line), diag.rule_id, diag.message)
    except ValueError:
        return (diag.location, 0, diag.rule_id, diag.message)


def finding_fingerprint(diag: Diagnostic) -> str:
    """Line-number-independent identity of a finding for baselining."""
    path = os.path.normpath(diag.location.rsplit(":", 1)[0])
    raw = f"{diag.rule_id}|{path}|{diag.message}"
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


def load_baseline(path: str) -> Set[str]:
    """The fingerprints a committed baseline file tolerates."""
    with open(path) as fh:
        data = json.load(fh)
    return {entry["fingerprint"] for entry in data.get("findings", ())}


def write_baseline(report: DiagnosticReport, path: str) -> int:
    """Write ``report``'s findings as the new baseline; returns count."""
    findings = [
        {
            "fingerprint": finding_fingerprint(d),
            "rule_id": d.rule_id,
            "location": d.location,
            "message": d.message,
        }
        for d in report.diagnostics
    ]
    findings.sort(key=lambda f: (f["location"], f["rule_id"]))
    payload = {"version": 1, "findings": findings}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(findings)


def _drop_baselined(
    report: DiagnosticReport, baseline: Set[str]
) -> DiagnosticReport:
    kept = tuple(
        d
        for d in report.diagnostics
        if finding_fingerprint(d) not in baseline
    )
    return DiagnosticReport(
        subject=report.subject,
        diagnostics=kept,
        rules_checked=report.rules_checked,
    )


def lint_code_main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI driver behind ``merced lint-code``.

    Exit status 0 only when no warning-or-worse finding survives the
    baseline and the filters — warnings are fatal by design (the CI
    gate starts hard; use the baseline file for tolerated debt).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="merced lint-code",
        description="Static concurrency + kernel-invariant analysis "
        "(KRN001-004, CONC001-006) over Python sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--min-severity",
        default=None,
        choices=["info", "warning", "error"],
        help="drop findings below this severity",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="RULE[,RULE...]",
        help="drop findings of these rule ids",
    )
    parser.add_argument(
        "--tests-dir",
        default=None,
        help="tests directory for the KRN004 cross-check "
        "(default: ./tests when it exists)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of tolerated findings "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file even if present",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    args = parser.parse_args(argv)

    tests_dir = args.tests_dir
    if tests_dir is None and os.path.isdir("tests"):
        tests_dir = "tests"
    suppress = [
        r for chunk in args.suppress for r in chunk.split(",") if r
    ]

    report = analyze_paths(args.paths, tests_dir=tests_dir)
    report = report.filtered(
        suppress=suppress, min_severity=args.min_severity or "info"
    )

    if args.write_baseline:
        count = write_baseline(report, args.baseline)
        print(f"wrote {count} finding(s) to {args.baseline}")
        return 0

    if not args.no_baseline and os.path.isfile(args.baseline):
        report = _drop_baselined(report, load_baseline(args.baseline))

    print(report.render_json() if args.json else report.render_text())
    fatal = sum(
        1
        for d in report.diagnostics
        if severity_at_least(d.severity, "warning")
    )
    return 1 if fatal else 0
