"""The circuit/DFT rule catalog (``NET``/``GRF``/``RET``/``BUD``/``SIM``).

Rule families and the paper constructs they guard:

* ``NET00x`` — netlist hygiene (Table 1's structural assumptions):
  dangling cells, unread inputs, self-loop DFFs, structural constants,
  undriven signals, multiply-driven signals, empty PI/PO interface.
* ``GRF00x`` — graph preconditions for ``G`` (Table 2, STEP 1):
  combinational loops (Tarjan on the register-free subgraph) and cones
  unreachable from any primary output.
* ``RET00x`` — retiming-legality preconditions (Corollary 2): an SCC
  with ``f(λ) = 0`` registers admits no legal retiming at all, and a
  candidate-cut count above ``f(λ)`` predicts MUXed A_CELL sharing.
* ``BUD00x`` — Eq. 5/6 feasibility: per-cell boundary fan-in above
  ``l_k`` (no partition can help), total fan-in above ``l_k``
  (heads-up), and the :mod:`~repro.analysis.precheck` charged-cut lower
  bound ``χ_min(λ) > β·f(λ)``.
* ``SIM00x`` — bit-parallel simulability assumptions from
  :mod:`repro.netlist.gates` / :mod:`repro.netlist.cells`.

All checks yield ``(location, message, fixit_hint)``; severities are
fixed per rule (see the registrations below).  Registration happens at
import time; :func:`repro.analysis.rules.rule_catalog` imports this
module on first use.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..netlist.gates import GATE_EVALUATORS
from .rules import Finding, RuleContext, rule

__all__ = ["scan_bench_drivers"]

#: Upper l_k beyond which 2^l_k pseudo-exhaustive patterns per cone stop
#: being practical for the bit-parallel session (2^26 ≈ 67M vectors).
MAX_PRACTICAL_LK = 26


# ----------------------------------------------------------------------
# NET: netlist hygiene
# ----------------------------------------------------------------------
@rule("NET001", "warning", "dangling cell")
def _net001(ctx: RuleContext) -> Iterator[Finding]:
    fan = ctx.fanout
    outs = ctx.output_set
    for cell in ctx.netlist.cells():
        if not fan.get(cell.output) and cell.output not in outs:
            yield (
                cell.output,
                "cell drives neither a primary output nor any other cell",
                "remove the cell or add a reader/primary output",
            )


@rule("NET002", "warning", "unread primary input")
def _net002(ctx: RuleContext) -> Iterator[Finding]:
    fan = ctx.fanout
    outs = ctx.output_set
    for sig in ctx.netlist.inputs:
        if not fan.get(sig) and sig not in outs:
            yield (
                sig,
                "primary input is never read",
                "drop the input or wire it into the logic",
            )


@rule("NET003", "warning", "self-loop DFF")
def _net003(ctx: RuleContext) -> Iterator[Finding]:
    for cell in ctx.netlist.cells():
        if cell.is_dff and cell.inputs[0] == cell.output:
            yield (
                cell.output,
                "DFF feeds its own data input; it locks to its initial "
                "value and defeats testing",
                "break the loop with combinational logic",
            )


@rule("NET004", "warning", "structural constant")
def _net004(ctx: RuleContext) -> Iterator[Finding]:
    for cell in ctx.netlist.cells():
        if (
            not cell.is_dff
            and len(set(cell.inputs)) == 1
            and len(cell.inputs) > 1
        ):
            yield (
                cell.output,
                f"{cell.gtype.name} gate reads the same signal on every "
                "input (structural constant or pass-through)",
                "collapse the gate or diversify its inputs",
            )


@rule("NET005", "error", "undriven signal")
def _net005(ctx: RuleContext) -> Iterator[Finding]:
    net = ctx.netlist
    seen: Set[str] = set()
    for cell in net.cells():
        for sig in cell.inputs:
            if sig not in seen and not net.has_signal(sig):
                seen.add(sig)
                yield (
                    sig,
                    f"signal is read by {cell.output} but never driven",
                    "add a driver (INPUT(...) or a gate) for the signal",
                )
    for sig in net.outputs:
        if sig not in seen and not net.has_signal(sig):
            seen.add(sig)
            yield (
                sig,
                "primary output is never driven",
                "add a driver (INPUT(...) or a gate) for the signal",
            )


@rule("NET006", "error", "multiply-driven signal")
def _net006(ctx: RuleContext) -> Iterator[Finding]:
    if not ctx.bench_text:
        return
    for sig, count in scan_bench_drivers(ctx.bench_text).items():
        if count > 1:
            yield (
                sig,
                f"signal has {count} drivers in the .bench source",
                "keep a single driver per signal",
            )


@rule("NET007", "error", "empty interface")
def _net007(ctx: RuleContext) -> Iterator[Finding]:
    if not ctx.netlist.inputs:
        yield (
            "circuit",
            "circuit has no primary inputs",
            "declare at least one INPUT(...)",
        )
    if not ctx.netlist.outputs:
        yield (
            "circuit",
            "circuit has no primary outputs",
            "declare at least one OUTPUT(...)",
        )


def scan_bench_drivers(bench_text: str) -> Dict[str, int]:
    """Driver counts per signal from raw ``.bench`` source text.

    The :class:`~repro.netlist.netlist.Netlist` container structurally
    rejects a second driver at ``add_cell`` time, so multiply-driven
    signals can only be observed on the source text *before* parsing —
    which is why ``NET006`` needs this pre-scan.

    Example:
        >>> scan_bench_drivers("INPUT(a)\\nx = NOT(a)\\nx = BUF(a)\\n")["x"]
        2
    """
    counts: Dict[str, int] = {}
    for raw in bench_text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("INPUT(") or upper.startswith("INPUT ("):
            sig = line[line.index("(") + 1 :].rstrip(")").strip()
            counts[sig] = counts.get(sig, 0) + 1
        elif "=" in line and not upper.startswith("OUTPUT"):
            sig = line.split("=", 1)[0].strip()
            if sig:
                counts[sig] = counts.get(sig, 0) + 1
    return counts


# ----------------------------------------------------------------------
# GRF: graph preconditions
# ----------------------------------------------------------------------
@rule("GRF001", "error", "combinational loop", paper_ref="Table 2 STEP 1")
def _grf001(ctx: RuleContext) -> Iterator[Finding]:
    net = ctx.netlist
    fan = ctx.fanout
    comb = [c.output for c in net.cells() if not c.is_dff]
    comb_set = set(comb)
    adj: Dict[str, List[str]] = {}
    for out in comb:
        succs = [
            r.output
            for r in fan.get(out, ())
            if not r.is_dff and r.output in comb_set
        ]
        adj[out] = succs

    # Iterative Tarjan over the register-free cell graph.
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = 0
    for root in comb:
        if root in index:
            continue
        work = [(root, iter(adj[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adj[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1 or node in adj[node]:
                    shown = ", ".join(sorted(comp)[:8])
                    more = "" if len(comp) <= 8 else f", +{len(comp) - 8}"
                    yield (
                        min(comp),
                        f"combinational loop through {len(comp)} "
                        f"gate(s): {shown}{more}",
                        "insert a DFF on the loop or fix the feedback",
                    )


@rule("GRF002", "warning", "dangling cone", paper_ref="Table 2 STEP 1")
def _grf002(ctx: RuleContext) -> Iterator[Finding]:
    net = ctx.netlist
    if not net.outputs:
        return  # NET007 carries this case
    fan = ctx.fanout
    live: Set[str] = set()
    stack = [
        net.driver(sig).output
        for sig in net.outputs
        if net.has_signal(sig) and net.driver(sig) is not None
    ]
    while stack:
        out = stack.pop()
        if out in live:
            continue
        live.add(out)
        cell = net.cell(out)
        for sig in cell.inputs:
            if net.has_signal(sig) and not net.is_input(sig):
                drv = net.driver(sig)
                if drv is not None and drv.output not in live:
                    stack.append(drv.output)
    for cell in net.cells():
        if cell.output in live:
            continue
        if fan.get(cell.output):  # dangling singletons are NET001
            yield (
                cell.output,
                "cell lies in a cone unreachable from any primary "
                "output (dead logic)",
                "add an observation point or prune the cone",
            )


# ----------------------------------------------------------------------
# RET: retiming-legality preconditions
# ----------------------------------------------------------------------
@rule("RET001", "error", "register-free SCC", paper_ref="Corollary 2")
def _ret001(ctx: RuleContext) -> Iterator[Finding]:
    scc_index = ctx.scc_index
    if scc_index is None:
        return
    for info in scc_index.sccs():
        if info.register_count == 0:
            yield (
                f"scc{info.scc_id}",
                f"cycle of {info.size} node(s) carries no register; "
                "retiming preserves cycle register counts (Corollary 2) "
                "so no legal retiming exists",
                "break the loop or register it",
            )


@rule(
    "RET002",
    "info",
    "cut candidates exceed f(λ)",
    paper_ref="Corollary 2 / Eq. 6",
)
def _ret002(ctx: RuleContext) -> Iterator[Finding]:
    scc_index = ctx.scc_index
    if scc_index is None:
        return
    for info in scc_index.sccs():
        n_candidates = len(info.internal_nets)
        if info.register_count > 0 and n_candidates > info.register_count:
            yield (
                f"scc{info.scc_id}",
                f"{n_candidates} candidate cut nets but only "
                f"f(λ)={info.register_count} register(s); if more than "
                f"f(λ) cuts are taken the Bellman–Ford solver must "
                "reject some (negative-weight cycle) and those cuts "
                "fall back to MUX-shared A_CELLs",
                "",
            )


# ----------------------------------------------------------------------
# BUD: Eq. 5/6 budget feasibility
# ----------------------------------------------------------------------
@rule("BUD001", "error", "cell boundary fan-in above l_k", paper_ref="Eq. 5")
def _bud001(ctx: RuleContext) -> Iterator[Finding]:
    net = ctx.netlist
    lk = ctx.config.lk
    for cell in net.cells():
        if cell.is_dff or cell.output in ctx.locked:
            continue
        boundary = set()
        for sig in set(cell.inputs):
            if not net.has_signal(sig):
                continue
            if net.is_input(sig):
                boundary.add(sig)
            else:
                drv = net.driver(sig)
                if drv is not None and drv.is_dff:
                    boundary.add(sig)
        if len(boundary) > lk:
            yield (
                cell.output,
                f"cell reads {len(boundary)} distinct PI/DFF signals; "
                f"they are inputs of any cluster containing it, so "
                f"ι ≥ {len(boundary)} > l_k={lk} for every partition",
                f"raise l_k to ≥ {len(boundary)}",
            )


@rule("BUD002", "warning", "cell fan-in above l_k", paper_ref="Eq. 5")
def _bud002(ctx: RuleContext) -> Iterator[Finding]:
    net = ctx.netlist
    lk = ctx.config.lk
    for cell in net.cells():
        if cell.is_dff or cell.output in ctx.locked:
            continue
        distinct = {s for s in cell.inputs if net.has_signal(s)}
        boundary = {
            s
            for s in distinct
            if net.is_input(s)
            or (net.driver(s) is not None and net.driver(s).is_dff)
        }
        if len(distinct) > lk >= len(boundary):
            yield (
                cell.output,
                f"cell reads {len(distinct)} distinct signals "
                f"(l_k={lk}); it only fits a cluster that absorbs "
                f"{len(distinct) - lk}+ of its drivers",
                "",
            )


@rule(
    "BUD003",
    "error",
    "Eq. 6 cut budget unsatisfiable",
    paper_ref="Eq. 6",
)
def _bud003(ctx: RuleContext) -> Iterator[Finding]:
    scc_index = ctx.scc_index
    cg = ctx.cg
    if scc_index is None or cg is None:
        return
    from .precheck import budget_prechecks

    beta = ctx.config.beta
    for bound in budget_prechecks(
        cg, scc_index, ctx.config.lk, locked=ctx.locked
    ):
        if bound.feasible(beta):
            continue
        need = (
            "unsplittable component"
            if bound.min_cuts == float("inf")
            else f"≥ {int(bound.min_cuts)} charged cut(s)"
        )
        yield (
            f"scc{bound.scc_id}",
            f"SCC needs {need} to reach ι ≤ l_k={ctx.config.lk} "
            f"(max b(C)={bound.max_boundary_inputs} over "
            f"{bound.n_components} component(s)) but Eq. 6 allows only "
            f"β·f(λ) = {beta}×{bound.register_count} = "
            f"{bound.budget(beta)}",
            "raise β or l_k",
        )


# ----------------------------------------------------------------------
# SIM: bit-parallel simulability
# ----------------------------------------------------------------------
@rule("SIM001", "error", "unsupported cell type")
def _sim001(ctx: RuleContext) -> Iterator[Finding]:
    for cell in ctx.netlist.cells():
        if cell.is_dff:
            continue
        if cell.gtype not in GATE_EVALUATORS:
            yield (
                cell.output,
                f"gate type {getattr(cell.gtype, 'name', cell.gtype)} "
                "has no bit-parallel evaluator",
                "map the cell onto supported primitives",
            )


@rule("SIM002", "warning", "l_k too wide for pseudo-exhaustive test")
def _sim002(ctx: RuleContext) -> Iterator[Finding]:
    lk = ctx.config.lk
    if lk > MAX_PRACTICAL_LK:
        yield (
            "config",
            f"l_k={lk} implies 2^{lk} patterns per cone "
            f"(> 2^{MAX_PRACTICAL_LK}); test application time is "
            "impractical for the bit-parallel session",
            f"keep l_k ≤ {MAX_PRACTICAL_LK}",
        )
