"""repro — Merced: area-efficient pipelined pseudo-exhaustive testing with retiming.

Reproduction of Liou, Lin & Cheng, *Area Efficient Pipelined
Pseudo-Exhaustive Testing with Retiming*, DAC 1996.

Quick start::

    from repro import load_circuit, Merced, MercedConfig

    circuit = load_circuit("s27")
    report = Merced(MercedConfig(lk=3)).run(circuit)
    print(report.render())
"""

from .config import DEFAULT_CONFIG, MercedConfig
from .errors import (
    AnalysisError,
    BenchParseError,
    CBITError,
    ConfigError,
    GraphError,
    IllegalRetimingError,
    InfeasiblePartitionError,
    NetlistError,
    PartitionError,
    ReproError,
    RetimingError,
    SimulationError,
)
from .circuits import available_circuits, load_circuit, s27_netlist
from .netlist import GateType, Netlist, parse_bench, parse_bench_file, write_bench

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "MercedConfig",
    "AnalysisError",
    "BenchParseError",
    "CBITError",
    "ConfigError",
    "GraphError",
    "IllegalRetimingError",
    "InfeasiblePartitionError",
    "NetlistError",
    "PartitionError",
    "ReproError",
    "RetimingError",
    "SimulationError",
    "available_circuits",
    "load_circuit",
    "s27_netlist",
    "GateType",
    "Netlist",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "Merced",
    "__version__",
]


def __getattr__(name):
    # Lazy import of the top-level compiler to avoid import cycles while
    # the core package pulls in every subsystem.
    if name == "Merced":
        from .core.merced import Merced

        return Merced
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
