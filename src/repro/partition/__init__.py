"""Flow-driven input-constraint partitioning (Tables 4–8 of the paper)."""

from .clusters import Cluster, Partition, cluster_input_count, cluster_input_nets
from .make_set import CutState, make_set, make_set_reference
from .make_group import MakeGroupResult, make_group
from .assign_cbit import (
    AssignCBITResult,
    MergeGain,
    assign_cbit,
    merge_gain,
    merged_input_nets,
)
from .pic import PICViolation, assert_pic, check_pic

__all__ = [
    "Cluster",
    "Partition",
    "cluster_input_count",
    "cluster_input_nets",
    "CutState",
    "make_set",
    "make_set_reference",
    "MakeGroupResult",
    "make_group",
    "AssignCBITResult",
    "MergeGain",
    "assign_cbit",
    "merge_gain",
    "merged_input_nets",
    "PICViolation",
    "assert_pic",
    "check_pic",
]
