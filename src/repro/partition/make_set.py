"""``Make_Set`` and the modified DFS (Tables 5, 6, 7 of the paper).

``Make_Set`` groups a node list into clusters by depth-first search over
*traversable* nets.  A net is traversable unless it is a cut: nets whose
congestion distance reaches the current ``boundary`` are cut, **subject to
the per-SCC budget of Eq. 6** — once an SCC ``λ`` has absorbed
``β × f(λ)`` cuts, its remaining nets are pinned traversable by zeroing
their distance (Table 7, STEP 2.1.2.1), which welds the rest of the SCC
into a single cluster.

Deviations from the literal pseudo-code, per DESIGN.md:

* traversal is undirected (clusters are connected components), so the
  grouping is independent of seed choice;
* nets sourced by primary inputs or DFFs are *permanent free boundaries*:
  never traversed, never charged as cuts — a register already sits there.

The DFS runs on :class:`~repro.graphs.csr.CompiledGraph` integer arrays
with epoch-stamped membership/visited flags, so repeated splits of the
same region never rebuild Python sets.  :func:`make_set_reference` keeps
the original string-keyed implementation as the equivalence oracle
(``tests/partition/test_kernel_equiv.py`` holds the two bit-identical).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..graphs.csr import KIND_INPUT, compile_graph
from ..graphs.digraph import CircuitGraph, Net, NodeKind
from ..graphs.scc import SCCIndex
from ..perf import count as perf_count

__all__ = ["CutState", "make_set", "make_set_reference"]


class CutState:
    """Mutable cut bookkeeping shared across ``Make_Set`` invocations.

    Tracks the explicit cut registry ``χ``, the per-SCC charge counters
    ``c(λ)`` and the nets pinned traversable after a budget exhaustion.
    The name sets ``cut``/``forced`` stay authoritative for callers; the
    parallel per-net-id byte flags are what the compiled kernels test.
    """

    def __init__(self, graph: CircuitGraph, scc_index: SCCIndex, beta: int):
        self.graph = graph
        self.scc_index = scc_index
        self.beta = beta
        self.cut: Set[str] = set()
        self.forced: Set[str] = set()
        self.budget_exhaustions = 0
        scc_index.reset_cut_counts()
        # compiled mirrors -------------------------------------------------
        cg = compile_graph(graph)
        self.cg = cg
        cg.reload_dist()
        m = cg.n_nets
        self.cut_b = bytearray(m)
        self.forced_b = bytearray(m)
        infos = list(scc_index.sccs())
        self._scc_infos = infos
        self._budget = [info.cut_budget(beta) for info in infos]
        #: per-net SCC index into ``_scc_infos`` (-1 = not on any SCC)
        self.net_scc: List[int] = [-1] * m
        for k, info in enumerate(infos):
            net_id = cg.net_id
            for name in info.internal_nets:
                self.net_scc[net_id[name]] = k

    # ------------------------------------------------------------------
    def is_boundary_net(self, net: Net) -> bool:
        """True for nets that are free register boundaries (PI/DFF source)."""
        return self.graph.kind(net.source) is not NodeKind.COMB

    def sync_dist(self) -> None:
        """Refresh the compiled distance mirror from the live nets."""
        self.cg.reload_dist()

    def traversable(self, net: Net, boundary: float) -> bool:
        """Decide (and record) whether DFS may cross ``net``.

        Implements Table 7 STEP 2: at or above the boundary the net is cut
        if its SCC still has budget (or it is not on an SCC); otherwise the
        SCC's remaining nets are pinned traversable.
        """
        i = self.cg.net_id[net.name]
        # callers may rewrite Net.dist between calls; keep the mirror honest
        self.cg.dist[i] = net.dist
        return self.traversable_id(i, boundary)

    def traversable_id(self, i: int, boundary: float) -> bool:
        """Compiled :meth:`traversable` on a net id (mirror assumed fresh)."""
        cg = self.cg
        if cg.boundary_net[i]:
            return False  # free boundary: cluster ends here, no cut charged
        if self.cut_b[i]:
            return False
        if self.forced_b[i]:
            return True
        d = cg.dist[i]
        if d < boundary or d <= 0.0:
            return True
        k = self.net_scc[i]
        if k < 0:
            self.cut_b[i] = 1
            self.cut.add(cg.net_names[i])
            return False
        info = self._scc_infos[k]
        if info.cut_count < self._budget[k]:
            info.cut_count += 1
            self.cut_b[i] = 1
            self.cut.add(cg.net_names[i])
            return False
        # Budget exhausted: pin the SCC's remaining nets traversable
        # (Table 7 STEP 2.1.2.1 sets their distance to an insignificant 0).
        self.budget_exhaustions += 1
        net_id = cg.net_id
        dist = cg.dist
        nets = cg.nets
        for name in info.internal_nets:
            j = net_id[name]
            if not self.cut_b[j]:
                self.forced_b[j] = 1
                self.forced.add(name)
                dist[j] = 0.0
                nets[j].dist = 0.0  # write-through: Net.dist is authoritative
        return True

    def n_cuts(self) -> int:
        return len(self.cut)


def make_set(
    graph: CircuitGraph,
    nodes: Iterable[str],
    boundary: float,
    state: CutState,
    locked: Optional[Set[str]] = None,
) -> List[Set[str]]:
    """Group ``nodes`` into clusters below the congestion ``boundary``.

    Args:
        graph: the saturated circuit graph.
        nodes: candidate members (register/combinational nodes). Primary
            inputs are ignored if present.
        boundary: current distance threshold (Table 4's Extract_Max value).
        state: shared :class:`CutState`.
        locked: nodes Merced must not touch (Table 5, STEP 2.1); they are
            returned each as their own singleton cluster.

    Returns:
        Disjoint node sets (connected components over traversable nets),
        in discovery order.  Bit-identical to :func:`make_set_reference`
        (same groups, same order, same cut/forced side effects).
    """
    if state.cg.graph is not graph:
        # state compiled against a different graph instance: stay exact
        return make_set_reference(graph, nodes, boundary, state, locked)
    locked = locked or set()
    cg = state.cg
    state.sync_dist()
    kind = cg.kind
    node_id = cg.node_id
    node_names = cg.node_names
    name_rank = cg.name_rank
    out_start = cg.out_start
    out_net_ids = cg.out_net_ids
    in_start = cg.in_start
    in_net_ids = cg.in_net_ids
    net_src = cg.net_src
    sink_start = cg.sink_start
    sink_ids = cg.sink_ids
    member_ep = cg.node_ep  # stamped = eligible member
    assigned_ep = cg.node_ep2  # stamped = already claimed by a group
    ep = cg.next_epoch()

    member_ids: List[int] = []
    for n in nodes:
        i = node_id[n]
        if kind[i] != KIND_INPUT and n not in locked:
            if member_ep[i] != ep:
                member_ep[i] = ep
                member_ids.append(i)
    # Deterministic seed order: str hashing is salted per process, so raw
    # set iteration would make cluster numbering (and SCC budget charging
    # order) vary between runs.  Sorting ids by name rank reproduces
    # sorted(names) exactly.
    member_ids.sort(key=name_rank.__getitem__)

    traversable_id = state.traversable_id
    groups: List[Set[str]] = []
    visits = 0
    for seed in member_ids:
        if assigned_ep[seed] == ep:
            continue
        group_ids: List[int] = []
        stack = [seed]
        assigned_ep[seed] = ep
        while stack:
            node = stack.pop()
            group_ids.append(node)
            visits += 1
            for p in range(out_start[node], out_start[node + 1]):
                ni = out_net_ids[p]
                if not traversable_id(ni, boundary):
                    continue
                s = net_src[ni]
                if member_ep[s] == ep and assigned_ep[s] != ep:
                    assigned_ep[s] = ep
                    stack.append(s)
                for q in range(sink_start[ni], sink_start[ni + 1]):
                    s = sink_ids[q]
                    if member_ep[s] == ep and assigned_ep[s] != ep:
                        assigned_ep[s] = ep
                        stack.append(s)
            for p in range(in_start[node], in_start[node + 1]):
                ni = in_net_ids[p]
                if not traversable_id(ni, boundary):
                    continue
                s = net_src[ni]
                if member_ep[s] == ep and assigned_ep[s] != ep:
                    assigned_ep[s] = ep
                    stack.append(s)
                for q in range(sink_start[ni], sink_start[ni + 1]):
                    s = sink_ids[q]
                    if member_ep[s] == ep and assigned_ep[s] != ep:
                        assigned_ep[s] = ep
                        stack.append(s)
        groups.append({node_names[i] for i in group_ids})
    perf_count("dfs_visits", visits)
    for node in sorted(locked):
        if node in set(nodes):
            groups.append({node})
    return groups


def make_set_reference(
    graph: CircuitGraph,
    nodes: Iterable[str],
    boundary: float,
    state: CutState,
    locked: Optional[Set[str]] = None,
) -> List[Set[str]]:
    """Original string-keyed ``Make_Set``, kept as the equivalence oracle."""
    locked = locked or set()
    members = {
        n
        for n in nodes
        if graph.kind(n) is not NodeKind.INPUT and n not in locked
    }
    assigned: Set[str] = set()
    groups: List[Set[str]] = []
    for seed in sorted(members):
        if seed in assigned:
            continue
        group: Set[str] = set()
        stack = [seed]
        assigned.add(seed)
        while stack:
            node = stack.pop()
            group.add(node)
            for net in graph.out_nets(node) + graph.in_nets(node):
                if not state.traversable(net, boundary):
                    continue
                for neighbor in (net.source,) + net.sinks:
                    if (
                        neighbor in members
                        and neighbor not in assigned
                    ):
                        assigned.add(neighbor)
                        stack.append(neighbor)
        groups.append(group)
    for node in sorted(locked):
        if node in set(nodes):
            groups.append({node})
    return groups
