"""``Make_Set`` and the modified DFS (Tables 5, 6, 7 of the paper).

``Make_Set`` groups a node list into clusters by depth-first search over
*traversable* nets.  A net is traversable unless it is a cut: nets whose
congestion distance reaches the current ``boundary`` are cut, **subject to
the per-SCC budget of Eq. 6** — once an SCC ``λ`` has absorbed
``β × f(λ)`` cuts, its remaining nets are pinned traversable by zeroing
their distance (Table 7, STEP 2.1.2.1), which welds the rest of the SCC
into a single cluster.

Deviations from the literal pseudo-code, per DESIGN.md:

* traversal is undirected (clusters are connected components), so the
  grouping is independent of seed choice;
* nets sourced by primary inputs or DFFs are *permanent free boundaries*:
  never traversed, never charged as cuts — a register already sits there.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..graphs.digraph import CircuitGraph, Net, NodeKind
from ..graphs.scc import SCCIndex

__all__ = ["CutState", "make_set"]


class CutState:
    """Mutable cut bookkeeping shared across ``Make_Set`` invocations.

    Tracks the explicit cut registry ``χ``, the per-SCC charge counters
    ``c(λ)`` and the nets pinned traversable after a budget exhaustion.
    """

    def __init__(self, graph: CircuitGraph, scc_index: SCCIndex, beta: int):
        self.graph = graph
        self.scc_index = scc_index
        self.beta = beta
        self.cut: Set[str] = set()
        self.forced: Set[str] = set()
        self.budget_exhaustions = 0
        scc_index.reset_cut_counts()

    # ------------------------------------------------------------------
    def is_boundary_net(self, net: Net) -> bool:
        """True for nets that are free register boundaries (PI/DFF source)."""
        return self.graph.kind(net.source) is not NodeKind.COMB

    def traversable(self, net: Net, boundary: float) -> bool:
        """Decide (and record) whether DFS may cross ``net``.

        Implements Table 7 STEP 2: at or above the boundary the net is cut
        if its SCC still has budget (or it is not on an SCC); otherwise the
        SCC's remaining nets are pinned traversable.
        """
        if self.is_boundary_net(net):
            return False  # free boundary: cluster ends here, no cut charged
        if net.name in self.cut:
            return False
        if net.name in self.forced:
            return True
        if net.dist < boundary or net.dist <= 0.0:
            return True
        scc = self.scc_index.scc_of_net(net.name)
        if scc is None:
            self.cut.add(net.name)
            return False
        if scc.cut_count < scc.cut_budget(self.beta):
            scc.cut_count += 1
            self.cut.add(net.name)
            return False
        # Budget exhausted: pin the SCC's remaining nets traversable
        # (Table 7 STEP 2.1.2.1 sets their distance to an insignificant 0).
        self.budget_exhaustions += 1
        for name in scc.internal_nets:
            if name not in self.cut:
                self.forced.add(name)
                self.graph.net(name).dist = 0.0
        return True

    def n_cuts(self) -> int:
        return len(self.cut)


def make_set(
    graph: CircuitGraph,
    nodes: Iterable[str],
    boundary: float,
    state: CutState,
    locked: Optional[Set[str]] = None,
) -> List[Set[str]]:
    """Group ``nodes`` into clusters below the congestion ``boundary``.

    Args:
        graph: the saturated circuit graph.
        nodes: candidate members (register/combinational nodes). Primary
            inputs are ignored if present.
        boundary: current distance threshold (Table 4's Extract_Max value).
        state: shared :class:`CutState`.
        locked: nodes Merced must not touch (Table 5, STEP 2.1); they are
            returned each as their own singleton cluster.

    Returns:
        Disjoint node sets (connected components over traversable nets),
        in discovery order.
    """
    locked = locked or set()
    members = {
        n
        for n in nodes
        if graph.kind(n) is not NodeKind.INPUT and n not in locked
    }
    assigned: Set[str] = set()
    groups: List[Set[str]] = []
    # Deterministic seed order: str hashing is salted per process, so raw
    # set iteration would make cluster numbering (and SCC budget charging
    # order) vary between runs.
    for seed in sorted(members):
        if seed in assigned:
            continue
        group: Set[str] = set()
        stack = [seed]
        assigned.add(seed)
        while stack:
            node = stack.pop()
            group.add(node)
            for net in graph.out_nets(node) + graph.in_nets(node):
                if not state.traversable(net, boundary):
                    continue
                for neighbor in (net.source,) + net.sinks:
                    if (
                        neighbor in members
                        and neighbor not in assigned
                    ):
                        assigned.add(neighbor)
                        stack.append(neighbor)
        groups.append(group)
    for node in sorted(locked):
        if node in set(nodes):
            groups.append({node})
    return groups
