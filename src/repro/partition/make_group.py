"""``Make_Group`` (Table 4): congestion-ordered clustering under Eq. 5/6.

The procedure saturates the network, then repeatedly splits the cluster
with the largest input count by lowering the congestion boundary until
every cluster satisfies ``ι(ϖ) ≤ l_k``.

Efficiency note (documented in DESIGN.md): instead of popping the global
sorted distance stack one value at a time — most of which would not touch
the oversized cluster — each split jumps directly to the highest distance
still present among the cluster's uncut internal nets.  The net-removal
*order* (most congested first) is identical; only no-op boundary pops are
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..config import MercedConfig
from ..errors import InfeasiblePartitionError
from ..flow.saturate import SaturationResult, saturate_network
from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.scc import SCCIndex
from .clusters import Cluster, Partition
from .make_set import CutState, make_set

__all__ = ["MakeGroupResult", "make_group"]


@dataclass
class MakeGroupResult:
    """Outcome of :func:`make_group`."""

    partition: Partition
    cut_state: CutState
    saturation: SaturationResult
    n_splits: int
    infeasible_clusters: List[Cluster]

    @property
    def feasible(self) -> bool:
        return not self.infeasible_clusters


def _next_boundary(
    graph: CircuitGraph, state: CutState, nodes: Set[str]
) -> Optional[float]:
    """Highest distance among the cluster's still-traversable comb nets."""
    best: Optional[float] = None
    for node in nodes:
        if graph.kind(node) is not NodeKind.COMB:
            continue
        for net in graph.out_nets(node):
            if (
                net.name in state.cut
                or net.name in state.forced
                or net.dist <= 0.0
            ):
                continue
            # only nets that DFS could actually cross inside this cluster
            if not any(s in nodes for s in net.sinks):
                continue
            if best is None or net.dist > best:
                best = net.dist
    return best


def make_group(
    graph: CircuitGraph,
    scc_index: Optional[SCCIndex] = None,
    config: Optional[MercedConfig] = None,
    locked: Optional[Set[str]] = None,
    presaturated: bool = False,
    strict: bool = True,
) -> MakeGroupResult:
    """Partition ``graph`` into clusters with ``ι(ϖ) ≤ l_k``.

    Args:
        graph: the circuit graph (mutated: flow state and cut flags).
        scc_index: precomputed SCC index; built here if omitted.
        config: Merced parameters (``l_k``, β, and the saturation knobs).
        locked: node names Merced must not regroup (kept as singletons).
        presaturated: skip ``Saturate_Network`` and reuse the distances
            already on the graph (used by parameter-sweep ablations).
        strict: raise on clusters that cannot meet ``l_k`` (default);
            ``False`` returns them in ``infeasible_clusters`` instead —
            the paper's β-vs-testing-time trade-off means a tight β can
            legitimately force an oversized cluster (it then needs a
            longer-than-2^l_k test or a wider CBIT).

    Returns:
        A :class:`MakeGroupResult`; ``result.partition.clusters`` is sorted
        from max ι to min (Table 4, STEP 6).

    Raises:
        InfeasiblePartitionError: a cluster cannot be reduced below
            ``l_k`` inputs (a cell's fan-in exceeds ``l_k``, or an SCC cut
            budget welded an oversized region together) — unless the
            infeasibility is due to locked nodes, which are exempt.
    """
    config = config or MercedConfig()
    scc_index = scc_index or SCCIndex(graph)
    if presaturated:
        saturation = SaturationResult(
            n_sources=0,
            total_flow=sum(n.flow for n in graph.nets()),
            max_flow=max((n.flow for n in graph.nets()), default=0.0),
            max_dist=max((n.dist for n in graph.nets()), default=0.0),
            visit={},
        )
    else:
        saturation = saturate_network(graph, config)

    state = CutState(graph, scc_index, config.beta)
    members = [
        n for n in graph.nodes() if graph.kind(n) is not NodeKind.INPUT
    ]
    # First grouping cuts nothing (boundary above every distance): when the
    # register-bounded regions already satisfy Eq. 5 the minimal cut set is
    # empty.  Oversized clusters then walk down the distance stack, most
    # congested nets first (Table 4, STEPs 4-5).
    first_boundary = float("inf")
    groups = make_set(graph, members, first_boundary, state, locked=locked)
    clusters = [
        Cluster.from_nodes(i, graph, g) for i, g in enumerate(groups)
    ]

    n_splits = 0
    next_id = len(clusters)
    infeasible: List[Cluster] = []
    work = [c for c in clusters if c.input_count > config.lk]
    live = {c.cluster_id: c for c in clusters}
    while work:
        work.sort(key=lambda c: (c.input_count, c.cluster_id))
        big = work.pop()  # largest ι first
        boundary = _next_boundary(graph, state, set(big.nodes))
        if boundary is None:
            infeasible.append(big)
            continue
        subgroups = make_set(graph, big.nodes, boundary, state, locked=locked)
        n_splits += 1
        del live[big.cluster_id]
        for g in subgroups:
            cl = Cluster.from_nodes(next_id, graph, g)
            next_id += 1
            live[cl.cluster_id] = cl
            if cl.input_count > config.lk:
                work.append(cl)

    final = sorted(
        live.values(), key=lambda c: (-c.input_count, c.cluster_id)
    )
    # re-number for stable downstream ids
    final = [
        Cluster(cluster_id=i, nodes=c.nodes, input_nets=c.input_nets)
        for i, c in enumerate(final)
    ]
    partition = Partition(graph, final, lk=config.lk, scc_index=scc_index)
    hard_infeasible = [
        c for c in infeasible if not (locked and c.nodes & locked)
    ]
    if hard_infeasible and strict:
        worst = max(c.input_count for c in hard_infeasible)
        raise InfeasiblePartitionError(
            f"{len(hard_infeasible)} cluster(s) cannot meet l_k={config.lk} "
            f"(worst ι={worst}); raise l_k or β"
        )
    return MakeGroupResult(
        partition=partition,
        cut_state=state,
        saturation=saturation,
        n_splits=n_splits,
        infeasible_clusters=infeasible,
    )
