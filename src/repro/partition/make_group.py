"""``Make_Group`` (Table 4): congestion-ordered clustering under Eq. 5/6.

The procedure saturates the network, then repeatedly splits the cluster
with the largest input count by lowering the congestion boundary until
every cluster satisfies ``ι(ϖ) ≤ l_k``.

Efficiency note (documented in DESIGN.md): instead of popping the global
sorted distance stack one value at a time — most of which would not touch
the oversized cluster — each split jumps directly to the highest distance
still present among the cluster's uncut internal nets.  The net-removal
*order* (most congested first) is identical; only no-op boundary pops are
skipped.

The compiled path (default) keeps a lazy max-heap of candidate boundary
distances per cluster, built fused with the cluster's input-net scan on
the :class:`~repro.graphs.csr.CompiledGraph` arrays.  Heap entries are
validated on pop against the cut/forced flags — the only ways a
candidate can die, since distances are frozen after saturation except for
budget-exhaustion pinning — so the popped maximum equals the reference
full rescan (``_next_boundary``) exactly.  ``use_compiled=False`` runs
the original rescan + set-based ``Make_Set`` for equivalence tests and
benchmarks.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..config import MercedConfig
from ..errors import InfeasiblePartitionError
from ..flow.saturate import SaturationResult, saturate_network
from ..graphs.csr import KIND_COMB, CompiledGraph, compile_graph
from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.scc import SCCIndex
from ..perf import count as perf_count
from .clusters import Cluster, Partition
from .make_set import CutState, make_set, make_set_reference

__all__ = ["MakeGroupResult", "make_group"]


@dataclass
class MakeGroupResult:
    """Outcome of :func:`make_group`."""

    partition: Partition
    cut_state: CutState
    saturation: SaturationResult
    n_splits: int
    infeasible_clusters: List[Cluster]

    @property
    def feasible(self) -> bool:
        return not self.infeasible_clusters


def _next_boundary(
    graph: CircuitGraph, state: CutState, nodes: Set[str]
) -> Optional[float]:
    """Highest distance among the cluster's still-traversable comb nets."""
    best: Optional[float] = None
    for node in nodes:
        if graph.kind(node) is not NodeKind.COMB:
            continue
        for net in graph.out_nets(node):
            if (
                net.name in state.cut
                or net.name in state.forced
                or net.dist <= 0.0
            ):
                continue
            # only nets that DFS could actually cross inside this cluster
            if not any(s in nodes for s in net.sinks):
                continue
            if best is None or net.dist > best:
                best = net.dist
    return best


def _cluster_with_heap(
    cg: CompiledGraph, state: CutState, cluster_id: int, names: Set[str]
) -> Tuple[Cluster, List[Tuple[float, int]]]:
    """Build a cluster and its boundary-candidate heap in one pass.

    The input-net scan reproduces
    :func:`~repro.partition.clusters.cluster_input_nets` on ids; the heap
    holds ``(-dist, net_id)`` for every comb-sourced member net with at
    least one member sink that is still cut-eligible right now.  Sticky
    monotonicity of ``cut``/``forced`` (they only grow; distances only
    change by forcing to 0) makes pop-time validation sufficient.
    """
    node_id = cg.node_id
    kind = cg.kind
    net_src = cg.net_src
    in_start = cg.in_start
    in_net_ids = cg.in_net_ids
    out_start = cg.out_start
    out_net_ids = cg.out_net_ids
    sink_start = cg.sink_start
    sink_ids = cg.sink_ids
    node_ep = cg.node_ep
    net_ep = cg.net_ep
    cut_b = state.cut_b
    forced_b = state.forced_b
    dist = cg.dist

    ids = [node_id[n] for n in names]
    ep = cg.next_epoch()
    for i in ids:
        node_ep[i] = ep

    input_ids: List[int] = []
    heap: List[Tuple[float, int]] = []
    for i in ids:
        if kind[i] != KIND_COMB:
            continue
        for p in range(in_start[i], in_start[i + 1]):
            ni = in_net_ids[p]
            if net_ep[ni] == ep:
                continue  # already recorded as an input
            src = net_src[ni]
            if kind[src] != KIND_COMB or node_ep[src] != ep:
                net_ep[ni] = ep
                input_ids.append(ni)
        for p in range(out_start[i], out_start[i + 1]):
            ni = out_net_ids[p]
            if cut_b[ni] or forced_b[ni]:
                continue
            d = dist[ni]
            if d <= 0.0:
                continue
            for q in range(sink_start[ni], sink_start[ni + 1]):
                if node_ep[sink_ids[q]] == ep:
                    heap.append((-d, ni))
                    break
    heapq.heapify(heap)
    net_names = cg.net_names
    cluster = Cluster(
        cluster_id=cluster_id,
        nodes=frozenset(names),
        input_nets=frozenset(net_names[ni] for ni in input_ids),
    )
    return cluster, heap


def _heap_boundary(
    state: CutState, heap: List[Tuple[float, int]]
) -> Tuple[Optional[float], int]:
    """Pop dead candidates; return (max surviving distance, examined).

    The count covers every candidate looked at — stale entries popped
    plus the surviving peek — so the ``boundary_pops`` perf counter
    tracks boundary-query work (one per split at minimum) rather than
    staying at zero when no candidate happens to be stale.
    """
    cut_b = state.cut_b
    forced_b = state.forced_b
    pops = 0
    while heap:
        d, ni = heap[0]
        if cut_b[ni] or forced_b[ni]:
            heapq.heappop(heap)
            pops += 1
            continue
        return -d, pops + 1
    return None, pops


def make_group(
    graph: CircuitGraph,
    scc_index: Optional[SCCIndex] = None,
    config: Optional[MercedConfig] = None,
    locked: Optional[Set[str]] = None,
    presaturated: bool = False,
    strict: bool = True,
    use_compiled: bool = True,
) -> MakeGroupResult:
    """Partition ``graph`` into clusters with ``ι(ϖ) ≤ l_k``.

    Args:
        graph: the circuit graph (mutated: flow state and cut flags).
        scc_index: precomputed SCC index; built here if omitted.
        config: Merced parameters (``l_k``, β, and the saturation knobs).
        locked: node names Merced must not regroup (kept as singletons).
        presaturated: skip ``Saturate_Network`` and reuse the distances
            already on the graph (used by parameter-sweep ablations).
        strict: raise on clusters that cannot meet ``l_k`` (default);
            ``False`` returns them in ``infeasible_clusters`` instead —
            the paper's β-vs-testing-time trade-off means a tight β can
            legitimately force an oversized cluster (it then needs a
            longer-than-2^l_k test or a wider CBIT).
        use_compiled: run the compiled CSR kernels (default).  ``False``
            selects the original rescan/set-based path; the two are
            bit-identical (``tests/partition/test_kernel_equiv.py``).

    Returns:
        A :class:`MakeGroupResult`; ``result.partition.clusters`` is sorted
        from max ι to min (Table 4, STEP 6).

    Raises:
        InfeasiblePartitionError: a cluster cannot be reduced below
            ``l_k`` inputs (a cell's fan-in exceeds ``l_k``, or an SCC cut
            budget welded an oversized region together) — unless the
            infeasibility is due to locked nodes, which are exempt.
    """
    config = config or MercedConfig()
    scc_index = scc_index or SCCIndex(graph)
    if presaturated:
        saturation = SaturationResult(
            n_sources=0,
            total_flow=sum(n.flow for n in graph.nets()),
            max_flow=max((n.flow for n in graph.nets()), default=0.0),
            max_dist=max((n.dist for n in graph.nets()), default=0.0),
            visit={},
        )
    else:
        saturation = saturate_network(graph, config)

    state = CutState(graph, scc_index, config.beta)
    cg = state.cg
    _make_set = make_set if use_compiled else make_set_reference
    members = [
        n for n in graph.nodes() if graph.kind(n) is not NodeKind.INPUT
    ]
    # First grouping cuts nothing (boundary above every distance): when the
    # register-bounded regions already satisfy Eq. 5 the minimal cut set is
    # empty.  Oversized clusters then walk down the distance stack, most
    # congested nets first (Table 4, STEPs 4-5).
    first_boundary = float("inf")
    groups = _make_set(graph, members, first_boundary, state, locked=locked)
    heaps: Dict[int, List[Tuple[float, int]]] = {}
    boundary_pops = 0
    if use_compiled:
        clusters = []
        for i, g in enumerate(groups):
            cl, heap = _cluster_with_heap(cg, state, i, g)
            heaps[i] = heap
            clusters.append(cl)
    else:
        clusters = [
            Cluster.from_nodes(i, graph, g) for i, g in enumerate(groups)
        ]

    n_splits = 0
    next_id = len(clusters)
    infeasible: List[Cluster] = []
    work = [c for c in clusters if c.input_count > config.lk]
    live = {c.cluster_id: c for c in clusters}
    while work:
        work.sort(key=lambda c: (c.input_count, c.cluster_id))
        big = work.pop()  # largest ι first
        if use_compiled:
            boundary, pops = _heap_boundary(state, heaps[big.cluster_id])
            boundary_pops += pops
        else:
            boundary = _next_boundary(graph, state, set(big.nodes))
        if boundary is None:
            infeasible.append(big)
            continue
        subgroups = _make_set(
            graph, big.nodes, boundary, state, locked=locked
        )
        n_splits += 1
        del live[big.cluster_id]
        heaps.pop(big.cluster_id, None)
        for g in subgroups:
            if use_compiled:
                cl, heap = _cluster_with_heap(cg, state, next_id, g)
                heaps[next_id] = heap
            else:
                cl = Cluster.from_nodes(next_id, graph, g)
            next_id += 1
            live[cl.cluster_id] = cl
            if cl.input_count > config.lk:
                work.append(cl)

    perf_count("boundary_pops", boundary_pops)
    final = sorted(
        live.values(), key=lambda c: (-c.input_count, c.cluster_id)
    )
    # re-number for stable downstream ids
    final = [
        Cluster(cluster_id=i, nodes=c.nodes, input_nets=c.input_nets)
        for i, c in enumerate(final)
    ]
    partition = Partition(graph, final, lk=config.lk, scc_index=scc_index)
    hard_infeasible = [
        c for c in infeasible if not (locked and c.nodes & locked)
    ]
    if hard_infeasible and strict:
        worst = max(c.input_count for c in hard_infeasible)
        raise InfeasiblePartitionError(
            f"{len(hard_infeasible)} cluster(s) cannot meet l_k={config.lk} "
            f"(worst ι={worst}); raise l_k or β"
        )
    return MakeGroupResult(
        partition=partition,
        cut_state=state,
        saturation=saturation,
        n_splits=n_splits,
        infeasible_clusters=infeasible,
    )
