"""Clusters, input counts ι, and the partition container.

Semantics (see DESIGN.md §5 and paper §2.3):

* A cluster ``ϖ`` is a set of register and combinational nodes (primary
  inputs are never cluster members — they are pattern sources shared by
  all clusters).
* The circuit-under-test (CUT) of a cluster is its combinational cells.
* The **input count** ``ι(ϖ)`` is the number of distinct nets feeding the
  cluster's combinational cells from a test-register boundary: nets
  sourced by a primary input, by any DFF, or by a combinational cell
  *outside* the cluster (i.e. a cut net entering the cluster).
* A **cut net** of a partition is a combinational-sourced net with at
  least one combinational sink in a different cluster than its source.
  Nets sourced by DFFs/PIs are free boundaries and are never "cut";
  branches sinking into DFFs never force a cut (the DFF is already the
  signature register).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from ..errors import PartitionError
from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.scc import SCCIndex

__all__ = [
    "cluster_input_count",
    "cluster_input_nets",
    "Cluster",
    "Partition",
]


def cluster_input_nets(graph: CircuitGraph, nodes: Iterable[str]) -> Set[str]:
    """Distinct nets that are inputs of the CUT formed by ``nodes``.

    A net counts when it feeds a combinational member of the cluster and is
    sourced by a primary input, a register, or a combinational cell outside
    the cluster.
    """
    members = set(nodes)
    inputs: Set[str] = set()
    for node in members:
        if graph.kind(node) is not NodeKind.COMB:
            continue
        for net in graph.in_nets(node):
            src = net.source
            if graph.kind(src) is not NodeKind.COMB or src not in members:
                inputs.add(net.name)
    return inputs


def cluster_input_count(graph: CircuitGraph, nodes: Iterable[str]) -> int:
    """``ι(ϖ)`` — see :func:`cluster_input_nets`."""
    return len(cluster_input_nets(graph, nodes))


@dataclass
class Cluster:
    """One cluster produced by ``Make_Group``/``Assign_CBIT``."""

    cluster_id: int
    nodes: FrozenSet[str]
    input_nets: FrozenSet[str] = frozenset()
    #: ι(ϖ), cached at construction — hot sort keys read it constantly
    input_count: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.input_count = len(self.input_nets)

    def set_membership(
        self, nodes: Iterable[str], input_nets: Iterable[str]
    ) -> None:
        """Replace this cluster's node/input sets, refreshing ``input_count``.

        The refinement tier (:mod:`repro.optimize`) relocates nodes
        between live clusters; every membership change MUST go through
        here so the cached ``input_count`` can never go stale — hot sort
        keys and the Eq. 4/5 accounting read the cache, and
        :meth:`Partition.validate` cross-checks it against
        ``len(input_nets)``.
        """
        self.nodes = frozenset(nodes)
        self.input_nets = frozenset(input_nets)
        self.input_count = len(self.input_nets)

    @property
    def size(self) -> int:
        return len(self.nodes)

    @staticmethod
    def from_nodes(
        cluster_id: int, graph: CircuitGraph, nodes: Iterable[str]
    ) -> "Cluster":
        nodes = frozenset(nodes)
        return Cluster(
            cluster_id=cluster_id,
            nodes=nodes,
            input_nets=frozenset(cluster_input_nets(graph, nodes)),
        )

    def merged_with(
        self, other: "Cluster", graph: CircuitGraph, new_id: int
    ) -> "Cluster":
        """Cluster covering both node sets, with ι recomputed on the union."""
        return Cluster.from_nodes(new_id, graph, self.nodes | other.nodes)


class Partition:
    """A complete input-constraint partition ``Π_m`` of a circuit graph."""

    def __init__(
        self,
        graph: CircuitGraph,
        clusters: Sequence[Cluster],
        lk: int,
        scc_index: Optional[SCCIndex] = None,
    ):
        self.graph = graph
        self.lk = lk
        self.clusters: List[Cluster] = list(clusters)
        self.scc_index = scc_index
        self._owner: Dict[str, int] = {}
        for cl in self.clusters:
            for node in cl.nodes:
                if node in self._owner:
                    raise PartitionError(
                        f"node {node!r} assigned to clusters "
                        f"{self._owner[node]} and {cl.cluster_id}"
                    )
                self._owner[node] = cl.cluster_id
        self._by_id = {cl.cluster_id: cl for cl in self.clusters}

    # ------------------------------------------------------------------
    def cluster_of(self, node: str) -> Optional[Cluster]:
        cid = self._owner.get(node)
        return None if cid is None else self._by_id[cid]

    @property
    def m(self) -> int:
        """Number of clusters (the ``m`` of the m-way partition)."""
        return len(self.clusters)

    def covered_nodes(self) -> Set[str]:
        return set(self._owner)

    def max_input_count(self) -> int:
        return max((c.input_count for c in self.clusters), default=0)

    def is_feasible(self) -> bool:
        """Eq. 5: every cluster's ι within the bound ``l_k``."""
        return self.max_input_count() <= self.lk

    def oversized_clusters(self) -> List[Cluster]:
        return [c for c in self.clusters if c.input_count > self.lk]

    # ------------------------------------------------------------------
    def cut_nets(self) -> List[str]:
        """Combinational nets crossing cluster boundaries into comb sinks.

        These are the nets that require a test register (A_CELL) in the
        PPET implementation; the count is the paper's "nets cut" column.
        """
        cuts: List[str] = []
        for net in self.graph.nets():
            src = net.source
            if self.graph.kind(src) is not NodeKind.COMB:
                continue
            src_cid = self._owner.get(src)
            for sink in net.sinks:
                if self.graph.kind(sink) is not NodeKind.COMB:
                    continue
                if self._owner.get(sink) != src_cid:
                    cuts.append(net.name)
                    break
        return cuts

    def cut_nets_on_scc(self) -> List[str]:
        """The subset of :meth:`cut_nets` internal to some SCC (Table 10 col 4)."""
        if self.scc_index is None:
            raise PartitionError("partition has no SCC index attached")
        return [n for n in self.cut_nets() if self.scc_index.net_on_scc(n)]

    def validate(self) -> None:
        """Check partition invariants; raise :class:`PartitionError` on failure.

        * clusters are disjoint (enforced at construction) and cover every
          register and combinational node of the graph;
        * every cluster's recorded input nets match a recount;
        * clusters are non-empty.
        """
        expected = {
            n
            for n in self.graph.nodes()
            if self.graph.kind(n) is not NodeKind.INPUT
        }
        covered = self.covered_nodes()
        if covered != expected:
            missing = sorted(expected - covered)[:5]
            extra = sorted(covered - expected)[:5]
            raise PartitionError(
                f"partition must cover register+comb nodes exactly; "
                f"missing={missing} extra={extra}"
            )
        for cl in self.clusters:
            if not cl.nodes:
                raise PartitionError(f"cluster {cl.cluster_id} is empty")
            recount = cluster_input_nets(self.graph, cl.nodes)
            if recount != set(cl.input_nets):
                raise PartitionError(
                    f"cluster {cl.cluster_id} input nets are stale"
                )
            if cl.input_count != len(cl.input_nets):
                raise PartitionError(
                    f"cluster {cl.cluster_id} cached input_count "
                    f"{cl.input_count} is stale (ι = {len(cl.input_nets)}); "
                    "membership changes must go through set_membership()"
                )

    def summary(self) -> str:
        sizes = sorted((c.input_count for c in self.clusters), reverse=True)
        return (
            f"{self.m} clusters, max ι={self.max_input_count()} (l_k={self.lk}), "
            f"{len(self.cut_nets())} cut nets, ι profile={sizes[:10]}"
            + ("..." if len(sizes) > 10 else "")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Partition {self.summary()}>"
