"""``Assign_CBIT`` — greedy cluster merging into CBIT-sized partitions.

Table 8 of the paper.  ``Make_Group`` tends to produce many clusters far
smaller than ``l_k``; since the per-bit CBIT cost σ_k falls with CBIT
length (Table 1), it pays to merge small clusters — especially ones that
*share input nets* or are joined by cut nets (merging un-cuts them) — until
each partition's input count approaches ``l_k``.

The gain of merging ϖ₁ and ϖ₂ is ``γ = l_k − ι(ϖ₁ + ϖ₂)`` (Eq. 7);
a merge is feasible iff ``γ ≥ 0``.  Ties on γ are broken by the number of
cut nets the merge removes (Table 8, STEP 3.2.1).

``ι`` of a merged pair is computed incrementally from the operand input
sets: a net stays an input unless its combinational source lands inside
the merged cluster (exact, no re-walk of the graph).
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graphs.digraph import CircuitGraph, NodeKind
from ..perf import count as perf_count
from .clusters import Cluster, Partition, cluster_input_nets

__all__ = ["MergeGain", "merged_input_nets", "merge_gain", "AssignCBITResult", "assign_cbit"]


def merged_input_nets(
    graph: CircuitGraph, a: Cluster, b: Cluster
) -> FrozenSet[str]:
    """Exact input-net set of ``a ∪ b`` from the operands' input sets."""
    inputs: Set[str] = set()
    for net_name in a.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is not NodeKind.COMB or src not in b.nodes:
            inputs.add(net_name)
    for net_name in b.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is not NodeKind.COMB or src not in a.nodes:
            inputs.add(net_name)
    return frozenset(inputs)


@dataclass(frozen=True)
class MergeGain:
    """Gain assessment of merging two clusters (Eq. 7 + tie-break)."""

    gain: int  # γ = l_k − ι(merged); feasible iff ≥ 0
    cuts_removed: int  # cut nets that become internal
    merged_inputs: FrozenSet[str]

    @property
    def feasible(self) -> bool:
        return self.gain >= 0

    def better_than(self, other: Optional["MergeGain"]) -> bool:
        if other is None:
            return True
        return (self.gain, self.cuts_removed) > (other.gain, other.cuts_removed)


def merge_gain(
    graph: CircuitGraph, lk: int, a: Cluster, b: Cluster
) -> MergeGain:
    """Evaluate merging ``a`` and ``b`` under input bound ``lk``."""
    merged = merged_input_nets(graph, a, b)
    shared_or_internalized = (
        len(a.input_nets) + len(b.input_nets) - len(merged)
    )
    # cut nets removed: inputs of one operand sourced inside the other
    cuts_removed = 0
    for net_name in a.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is NodeKind.COMB and src in b.nodes:
            cuts_removed += 1
    for net_name in b.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is NodeKind.COMB and src in a.nodes:
            cuts_removed += 1
    del shared_or_internalized  # informational; γ already reflects it
    return MergeGain(
        gain=lk - len(merged),
        cuts_removed=cuts_removed,
        merged_inputs=merged,
    )


@dataclass
class AssignCBITResult:
    """Outcome of :func:`assign_cbit` (the paper's ``P``, ``cost``, ``k``)."""

    partition: Partition
    cost_dff: float  # Σ = Σ p_k n_k (Eq. 4), in DFF equivalents
    n_partitions: int
    n_merges: int

    @property
    def cut_net_count(self) -> int:
        return len(self.partition.cut_nets())


def _union_input_count(
    graph: CircuitGraph, clusters: Sequence[Cluster]
) -> int:
    nodes: Set[str] = set()
    for c in clusters:
        nodes.update(c.nodes)
    return len(cluster_input_nets(graph, nodes))


class _WorkingSet:
    """Indexed pool of live clusters during the greedy merge.

    Maintains, per live cluster handle: the cluster itself; a reverse map
    ``net → handles reading it as an input``; and ``node → handle`` for
    cut-source lookups.  The candidate set for a merge with ``O`` is

    * clusters sharing an input net with ``O``,
    * clusters containing the combinational source of one of ``O``'s
      input nets (merging removes that cut),
    * clusters reading a net sourced inside ``O`` (ditto, other way),
    * a handful of minimum-ι clusters (the best *non-interacting*
      partner is exactly a minimum-ι cluster, so including them keeps the
      search exact while avoiding the O(m²) full scan).
    """

    def __init__(self, graph: CircuitGraph, clusters: Sequence[Cluster]):
        self.graph = graph
        self.by_handle: Dict[int, Cluster] = {}
        self.readers: Dict[str, Set[int]] = {}
        self.node_owner: Dict[str, int] = {}
        self._heap: List[Tuple[int, int]] = []  # (ι, handle), lazy-deleted
        self._next = 0
        for c in clusters:
            self.add(c)

    def add(self, cluster: Cluster) -> int:
        h = self._next
        self._next += 1
        self.by_handle[h] = cluster
        for net in cluster.input_nets:
            self.readers.setdefault(net, set()).add(h)
        for node in cluster.nodes:
            self.node_owner[node] = h
        heapq.heappush(self._heap, (cluster.input_count, h))
        return h

    def remove(self, h: int) -> Cluster:
        cluster = self.by_handle.pop(h)
        for net in cluster.input_nets:
            hs = self.readers.get(net)
            if hs is not None:
                hs.discard(h)
        for node in cluster.nodes:
            if self.node_owner.get(node) == h:
                del self.node_owner[node]
        return cluster

    def pop_largest(self) -> Cluster:
        h = max(
            self.by_handle,
            key=lambda k: (self.by_handle[k].input_count, -k),
        )
        return self.remove(h)

    def smallest_handles(self, n: int) -> List[int]:
        out: List[int] = []
        keep: List[Tuple[int, int]] = []
        while self._heap and len(out) < n:
            iota, h = heapq.heappop(self._heap)
            c = self.by_handle.get(h)
            if c is None or c.input_count != iota:
                continue  # stale entry
            out.append(h)
            keep.append((iota, h))
        for item in keep:
            heapq.heappush(self._heap, item)
        return out

    def candidates_for(self, cluster: Cluster) -> List[int]:
        cand: Set[int] = set()
        for net in cluster.input_nets:
            cand.update(self.readers.get(net, ()))
            src = self.graph.net(net).source
            if self.graph.kind(src) is NodeKind.COMB:
                owner = self.node_owner.get(src)
                if owner is not None:
                    cand.add(owner)
        for node in cluster.nodes:
            for net in self.graph.out_net_objects(node):
                cand.update(self.readers.get(net.name, ()))
        cand.update(self.smallest_handles(8))
        return sorted(cand)

    def __len__(self) -> int:
        return len(self.by_handle)

    def live(self) -> List[Cluster]:
        return [self.by_handle[h] for h in sorted(self.by_handle)]

    def sum_iota(self) -> int:
        return sum(c.input_count for c in self.by_handle.values())


def assign_cbit(
    partition: Partition,
    lk: Optional[int] = None,
) -> AssignCBITResult:
    """Merge ``partition``'s clusters into near-``l_k`` CBIT partitions.

    Follows Table 8: repeatedly extract the cluster with the largest input
    count and greedily absorb the best-gain feasible partners until it is
    full; when the remaining clusters jointly fit one CBIT they are lumped
    into the final residual partition.  The best-partner search uses an
    exact indexed candidate set instead of a full O(m²) scan (see
    :class:`_WorkingSet`).

    Returns:
        An :class:`AssignCBITResult` whose partition satisfies Eq. 5 and
        whose ``cost_dff`` is the Table 1 catalogue cost of the assignment.
    """
    from ..cbit.types import cbit_cost_for_inputs

    graph = partition.graph
    lk = lk or partition.lk
    work = _WorkingSet(graph, partition.clusters)
    final: List[Cluster] = []
    n_merges = 0
    n_attempts = 0

    while len(work):
        # Residual lumping test (Table 8, STEP 4): Σι ≤ l_k guarantees the
        # union fits; when few clusters remain, do the exact union check.
        todo = work.live()
        if work.sum_iota() <= lk or (
            len(todo) <= 8 and _union_input_count(graph, todo) <= lk
        ):
            nodes: Set[str] = set()
            for c in todo:
                nodes.update(c.nodes)
            final.append(Cluster.from_nodes(len(final), graph, nodes))
            if len(todo) > 1:
                n_merges += len(todo) - 1
            break

        current = work.pop_largest()
        while current.input_count < lk and len(work):
            best: Optional[MergeGain] = None
            best_h = -1
            for h in work.candidates_for(current):
                n_attempts += 1
                mg = merge_gain(graph, lk, current, work.by_handle[h])
                if mg.feasible and mg.better_than(best):
                    best = mg
                    best_h = h
            if best is None:
                break
            absorbed = work.remove(best_h)
            current = Cluster(
                cluster_id=current.cluster_id,
                nodes=current.nodes | absorbed.nodes,
                input_nets=best.merged_inputs,
            )
            n_merges += 1
        final.append(current)

    final = [
        Cluster(cluster_id=i, nodes=c.nodes, input_nets=c.input_nets)
        for i, c in enumerate(final)
    ]
    merged_partition = Partition(
        graph, final, lk=lk, scc_index=partition.scc_index
    )
    perf_count("merge_attempts", n_attempts)
    cost = 0.0
    for c in final:
        c_cost, _ = cbit_cost_for_inputs(c.input_count)
        cost += c_cost
    return AssignCBITResult(
        partition=merged_partition,
        cost_dff=cost,
        n_partitions=len(final),
        n_merges=n_merges,
    )
