"""``Assign_CBIT`` — greedy cluster merging into CBIT-sized partitions.

Table 8 of the paper.  ``Make_Group`` tends to produce many clusters far
smaller than ``l_k``; since the per-bit CBIT cost σ_k falls with CBIT
length (Table 1), it pays to merge small clusters — especially ones that
*share input nets* or are joined by cut nets (merging un-cuts them) — until
each partition's input count approaches ``l_k``.

The gain of merging ϖ₁ and ϖ₂ is ``γ = l_k − ι(ϖ₁ + ϖ₂)`` (Eq. 7);
a merge is feasible iff ``γ ≥ 0``.  Ties on γ are broken by the number of
cut nets the merge removes (Table 8, STEP 3.2.1).

``ι`` of a merged pair is computed incrementally from the operand input
sets: a net stays an input unless its combinational source lands inside
the merged cluster (exact, no re-walk of the graph).  The compiled
scorer goes further and never materialises the merged set per candidate:
``ι(merged) = ι(a) + ι(b) − shared − a_int − b_int`` where *shared* nets
appear in both input sets and *a_int*/*b_int* are inputs of one operand
internalised by the other (their comb source lands inside it) — the
three categories are mutually exclusive, so the count is exact and
``cuts_removed = a_int + b_int``.  Only the winning merge builds its
input set (via :func:`merged_input_nets`).
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graphs.csr import compile_graph
from ..graphs.digraph import CircuitGraph, NodeKind
from ..perf import count as perf_count
from .clusters import Cluster, Partition, cluster_input_nets

__all__ = [
    "MergeGain",
    "merged_input_nets",
    "merge_gain",
    "AssignCBITResult",
    "assign_cbit",
    "assign_cbit_reference",
]


def merged_input_nets(
    graph: CircuitGraph, a: Cluster, b: Cluster
) -> FrozenSet[str]:
    """Exact input-net set of ``a ∪ b`` from the operands' input sets."""
    inputs: Set[str] = set()
    for net_name in a.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is not NodeKind.COMB or src not in b.nodes:
            inputs.add(net_name)
    for net_name in b.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is not NodeKind.COMB or src not in a.nodes:
            inputs.add(net_name)
    return frozenset(inputs)


@dataclass(frozen=True)
class MergeGain:
    """Gain assessment of merging two clusters (Eq. 7 + tie-break)."""

    gain: int  # γ = l_k − ι(merged); feasible iff ≥ 0
    cuts_removed: int  # cut nets that become internal
    merged_inputs: FrozenSet[str]

    @property
    def feasible(self) -> bool:
        return self.gain >= 0

    def better_than(self, other: Optional["MergeGain"]) -> bool:
        if other is None:
            return True
        return (self.gain, self.cuts_removed) > (other.gain, other.cuts_removed)


def merge_gain(
    graph: CircuitGraph, lk: int, a: Cluster, b: Cluster
) -> MergeGain:
    """Evaluate merging ``a`` and ``b`` under input bound ``lk``."""
    merged = merged_input_nets(graph, a, b)
    shared_or_internalized = (
        len(a.input_nets) + len(b.input_nets) - len(merged)
    )
    # cut nets removed: inputs of one operand sourced inside the other
    cuts_removed = 0
    for net_name in a.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is NodeKind.COMB and src in b.nodes:
            cuts_removed += 1
    for net_name in b.input_nets:
        src = graph.net(net_name).source
        if graph.kind(src) is NodeKind.COMB and src in a.nodes:
            cuts_removed += 1
    del shared_or_internalized  # informational; γ already reflects it
    return MergeGain(
        gain=lk - len(merged),
        cuts_removed=cuts_removed,
        merged_inputs=merged,
    )


@dataclass
class AssignCBITResult:
    """Outcome of :func:`assign_cbit` (the paper's ``P``, ``cost``, ``k``)."""

    partition: Partition
    cost_dff: float  # Σ = Σ p_k n_k (Eq. 4), in DFF equivalents
    n_partitions: int
    n_merges: int

    @property
    def cut_net_count(self) -> int:
        return len(self.partition.cut_nets())


def _union_input_count(
    graph: CircuitGraph, clusters: Sequence[Cluster]
) -> int:
    nodes: Set[str] = set()
    for c in clusters:
        nodes.update(c.nodes)
    return len(cluster_input_nets(graph, nodes))


class _WorkingSet:
    """Indexed pool of live clusters during the greedy merge.

    Maintains, per live cluster handle: the cluster itself plus its
    interned input-net and node id lists; a reverse map
    ``net id → handles reading it as an input``; and a ``node id → handle``
    owner array for cut-source lookups.  The candidate set for a merge
    with ``O`` is

    * clusters sharing an input net with ``O``,
    * clusters containing the combinational source of one of ``O``'s
      input nets (merging removes that cut),
    * clusters reading a net sourced inside ``O`` (ditto, other way),
    * a handful of minimum-ι clusters (the best *non-interacting*
      partner is exactly a minimum-ι cluster, so including them keeps the
      search exact while avoiding the O(m²) full scan).
    """

    def __init__(self, graph: CircuitGraph, clusters: Sequence[Cluster]):
        self.graph = graph
        self.cg = compile_graph(graph)
        self.by_handle: Dict[int, Cluster] = {}
        self.net_ids: Dict[int, List[int]] = {}  # handle -> input net ids
        self.node_ids: Dict[int, List[int]] = {}  # handle -> member node ids
        self.readers: Dict[int, Set[int]] = {}  # net id -> reader handles
        self.node_owner: List[int] = [-1] * self.cg.n_nodes
        self._heap: List[Tuple[int, int]] = []  # (ι, handle), lazy-deleted
        self._next = 0
        for c in clusters:
            self.add(c)

    def add(self, cluster: Cluster) -> int:
        h = self._next
        self._next += 1
        self.by_handle[h] = cluster
        cg = self.cg
        net_id = cg.net_id
        nids = [net_id[n] for n in cluster.input_nets]
        self.net_ids[h] = nids
        for ni in nids:
            self.readers.setdefault(ni, set()).add(h)
        node_id = cg.node_id
        ids = [node_id[n] for n in cluster.nodes]
        self.node_ids[h] = ids
        owner = self.node_owner
        for i in ids:
            owner[i] = h
        heapq.heappush(self._heap, (cluster.input_count, h))
        return h

    def remove(self, h: int) -> Cluster:
        cluster = self.by_handle.pop(h)
        for ni in self.net_ids.pop(h):
            hs = self.readers.get(ni)
            if hs is not None:
                hs.discard(h)
        owner = self.node_owner
        for i in self.node_ids.pop(h):
            if owner[i] == h:
                owner[i] = -1
        return cluster

    def pop_largest(self) -> Cluster:
        h = max(
            self.by_handle,
            key=lambda k: (self.by_handle[k].input_count, -k),
        )
        return self.remove(h)

    def smallest_handles(self, n: int) -> List[int]:
        out: List[int] = []
        keep: List[Tuple[int, int]] = []
        while self._heap and len(out) < n:
            iota, h = heapq.heappop(self._heap)
            c = self.by_handle.get(h)
            if c is None or c.input_count != iota:
                continue  # stale entry
            out.append(h)
            keep.append((iota, h))
        for item in keep:
            heapq.heappush(self._heap, item)
        return out

    def candidates_for(self, cluster: Cluster) -> List[int]:
        cg = self.cg
        net_id = cg.net_id
        net_src = cg.net_src
        comb_src = cg.comb_src
        out_start = cg.out_start
        out_net_ids = cg.out_net_ids
        readers = self.readers
        owner = self.node_owner
        cand: Set[int] = set()
        for name in cluster.input_nets:
            ni = net_id[name]
            hs = readers.get(ni)
            if hs:
                cand.update(hs)
            if comb_src[ni]:
                o = owner[net_src[ni]]
                if o >= 0:
                    cand.add(o)
        node_id = cg.node_id
        for name in cluster.nodes:
            i = node_id[name]
            for p in range(out_start[i], out_start[i + 1]):
                hs = readers.get(out_net_ids[p])
                if hs:
                    cand.update(hs)
        cand.update(self.smallest_handles(8))
        return sorted(cand)

    def __len__(self) -> int:
        return len(self.by_handle)

    def live(self) -> List[Cluster]:
        return [self.by_handle[h] for h in sorted(self.by_handle)]

    def sum_iota(self) -> int:
        return sum(c.input_count for c in self.by_handle.values())


def assign_cbit(
    partition: Partition,
    lk: Optional[int] = None,
    use_compiled: bool = True,
) -> AssignCBITResult:
    """Merge ``partition``'s clusters into near-``l_k`` CBIT partitions.

    Follows Table 8: repeatedly extract the cluster with the largest input
    count and greedily absorb the best-gain feasible partners until it is
    full; when the remaining clusters jointly fit one CBIT they are lumped
    into the final residual partition.  The best-partner search uses an
    exact indexed candidate set instead of a full O(m²) scan (see
    :class:`_WorkingSet`), and by default scores each candidate with the
    incremental count described in the module docstring
    (``use_compiled=False`` re-unions input sets via :func:`merge_gain`
    per candidate; both paths pick identical merges).

    Returns:
        An :class:`AssignCBITResult` whose partition satisfies Eq. 5 and
        whose ``cost_dff`` is the Table 1 catalogue cost of the assignment.
    """
    from ..cbit.types import cbit_cost_for_inputs

    graph = partition.graph
    lk = lk or partition.lk
    work = _WorkingSet(graph, partition.clusters)
    cg = work.cg
    final: List[Cluster] = []
    n_merges = 0
    n_attempts = 0

    while len(work):
        # Residual lumping test (Table 8, STEP 4): Σι ≤ l_k guarantees the
        # union fits; when few clusters remain, do the exact union check.
        todo = work.live()
        if work.sum_iota() <= lk or (
            len(todo) <= 8 and _union_input_count(graph, todo) <= lk
        ):
            nodes: Set[str] = set()
            for c in todo:
                nodes.update(c.nodes)
            final.append(Cluster.from_nodes(len(final), graph, nodes))
            if len(todo) > 1:
                n_merges += len(todo) - 1
            break

        current = work.pop_largest()
        while current.input_count < lk and len(work):
            if use_compiled:
                best_h, n_cands = _best_partner_compiled(work, current, lk)
                n_attempts += n_cands
            else:
                best_h = -1
                best: Optional[MergeGain] = None
                for h in work.candidates_for(current):
                    n_attempts += 1
                    mg = merge_gain(graph, lk, current, work.by_handle[h])
                    if mg.feasible and mg.better_than(best):
                        best = mg
                        best_h = h
            if best_h < 0:
                break
            absorbed = work.remove(best_h)
            current = Cluster(
                cluster_id=current.cluster_id,
                nodes=current.nodes | absorbed.nodes,
                input_nets=merged_input_nets(graph, current, absorbed),
            )
            n_merges += 1
        final.append(current)

    final = [
        Cluster(cluster_id=i, nodes=c.nodes, input_nets=c.input_nets)
        for i, c in enumerate(final)
    ]
    merged_partition = Partition(
        graph, final, lk=lk, scc_index=partition.scc_index
    )
    perf_count("merge_attempts", n_attempts)
    perf_count("gain_evals", n_attempts)
    cost = 0.0
    for c in final:
        c_cost, _ = cbit_cost_for_inputs(c.input_count)
        cost += c_cost
    return AssignCBITResult(
        partition=merged_partition,
        cost_dff=cost,
        n_partitions=len(final),
        n_merges=n_merges,
    )


def assign_cbit_reference(
    partition: Partition, lk: Optional[int] = None
) -> AssignCBITResult:
    """Reference twin of :func:`assign_cbit`.

    Scores every merge candidate by re-unioning input sets through
    :func:`merge_gain` instead of the incremental compiled count;
    both paths pick identical merges (the kernel-equivalence suite
    asserts bit-identity end to end).
    """
    return assign_cbit(partition, lk, use_compiled=False)


def _best_partner_compiled(
    work: _WorkingSet, current: Cluster, lk: int
) -> Tuple[int, int]:
    """Best feasible merge partner for ``current`` (or -1) + candidates seen.

    Scores every candidate with the incremental ι count (no set unions);
    identical winner to the :func:`merge_gain` scan: candidates are
    visited in the same sorted-handle order with the same strict
    ``(gain, cuts_removed)`` comparison, so ties resolve to the same
    handle.
    """
    cg = work.cg
    net_id = cg.net_id
    node_id = cg.node_id
    net_src = cg.net_src
    comb_src = cg.comb_src
    inp_ep = cg.net_ep
    node_ep = cg.node_ep
    owner = work.node_owner

    ep = cg.next_epoch()
    owner_counts: Dict[int, int] = {}
    for name in current.input_nets:
        ni = net_id[name]
        inp_ep[ni] = ep
        if comb_src[ni]:
            o = owner[net_src[ni]]
            if o >= 0:
                owner_counts[o] = owner_counts.get(o, 0) + 1
    for name in current.nodes:
        node_ep[node_id[name]] = ep

    len_a = current.input_count
    net_ids = work.net_ids
    best_gain = 0
    best_cuts = -1
    best_h = -1
    cands = work.candidates_for(current)
    for h in cands:
        b_nids = net_ids[h]
        shared = 0
        b_int = 0
        for ni in b_nids:
            if inp_ep[ni] == ep:
                shared += 1
            elif comb_src[ni] and node_ep[net_src[ni]] == ep:
                b_int += 1
        a_int = owner_counts.get(h, 0)
        gain = lk - (len_a + len(b_nids) - shared - a_int - b_int)
        if gain < 0:
            continue
        cuts_removed = a_int + b_int
        if best_h < 0 or (gain, cuts_removed) > (best_gain, best_cuts):
            best_gain = gain
            best_cuts = cuts_removed
            best_h = h
    return best_h, len(cands)
