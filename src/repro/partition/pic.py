"""Formal Partition-with-Input-Constraint (PIC) checks — Eqs. 5 and 6.

The PIC problem (paper §2.3, proven NP-complete in [4]) asks for an m-way
partition ``Π_m : V → {1..m}`` with every block's input count within a
bound ``κ``.  This module validates candidate partitions against the two
published constraints:

* **Eq. 5** — ``1 ≤ ι(π_i) ≤ l_k`` for every block with combinational
  content (blocks made only of registers have ι = 0 and are exempt: they
  carry no circuit-under-test);
* **Eq. 6** — for every SCC ``λ``, the number of cut nets internal to λ
  satisfies ``χ(λ) ≤ β · f(λ)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import PartitionError
from ..graphs.scc import SCCIndex
from .clusters import Partition

__all__ = ["PICViolation", "check_pic", "assert_pic"]


@dataclass(frozen=True)
class PICViolation:
    """One constraint violation found by :func:`check_pic`."""

    kind: str  # "input-bound" | "scc-budget" | "coverage"
    detail: str


def check_pic(
    partition: Partition,
    beta: int,
    scc_index: SCCIndex = None,
) -> List[PICViolation]:
    """Return all Eq. 5 / Eq. 6 violations of ``partition`` (empty = valid)."""
    violations: List[PICViolation] = []
    scc_index = scc_index or partition.scc_index
    for cluster in partition.clusters:
        if cluster.input_count > partition.lk:
            violations.append(
                PICViolation(
                    "input-bound",
                    f"cluster {cluster.cluster_id}: ι="
                    f"{cluster.input_count} > l_k={partition.lk}",
                )
            )
    try:
        partition.validate()
    except PartitionError as exc:
        violations.append(PICViolation("coverage", str(exc)))
    if scc_index is not None:
        cuts_per_scc: Dict[int, int] = {}
        for net_name in partition.cut_nets():
            info = scc_index.scc_of_net(net_name)
            if info is not None:
                cuts_per_scc[info.scc_id] = cuts_per_scc.get(info.scc_id, 0) + 1
        for info in scc_index.sccs():
            chi = cuts_per_scc.get(info.scc_id, 0)
            budget = info.cut_budget(beta)
            if chi > budget:
                violations.append(
                    PICViolation(
                        "scc-budget",
                        f"SCC {info.scc_id}: χ={chi} > β·f = "
                        f"{beta}×{info.register_count} = {budget}",
                    )
                )
    return violations


def assert_pic(partition: Partition, beta: int, scc_index: SCCIndex = None) -> None:
    """Raise :class:`PartitionError` when ``partition`` violates PIC."""
    violations = check_pic(partition, beta, scc_index)
    if violations:
        summary = "; ".join(v.detail for v in violations[:5])
        raise PartitionError(
            f"{len(violations)} PIC violation(s): {summary}"
        )
