"""Deadline enforcement for sweep attempts — on *and off* the main thread.

Historically the farm armed a ``SIGALRM`` interval timer around every
attempt, which only works on a process's main thread; when an embedder
ran the inline farm from a worker thread (as the ``merced serve``
compile service does for every request), the ``timeout=`` policy became
a **silent no-op**.  This module closes that hole with a single
:func:`deadline` context manager, shared by the farm and the service,
that picks the strongest enforcement mechanism available:

* **main thread** (POSIX): the classic ``SIGALRM`` interval timer — the
  alarm handler raises :class:`~repro.errors.SweepTimeoutError` in the
  running frame;
* **worker threads** (CPython): a daemon :class:`threading.Timer`
  watchdog that injects :class:`~repro.errors.SweepTimeoutError` into
  the working thread via ``PyThreadState_SetAsyncExc`` — delivered at
  the next bytecode boundary, the same granularity ``SIGALRM`` gives
  pure-Python code (which is all this package runs).  Blocking C calls
  (e.g. ``time.sleep``) delay delivery until they return;
* **neither available** (non-CPython without the C API): the deadline
  genuinely cannot be enforced — instead of silently skipping it, the
  ``timeouts_unenforced`` counter is bumped (module stats *and* the
  active :class:`~repro.perf.PerfTrace`) so the gap is observable.

:func:`watchdog_stats` exposes the armed/fired/unenforced counters; the
service's ``/metrics`` endpoint republishes them.
"""

from __future__ import annotations

import ctypes
import signal
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..errors import SweepTimeoutError
from ..perf import count

__all__ = ["deadline", "watchdog_stats", "reset_watchdog_stats"]

_STATS_LOCK = threading.Lock()
_STATS: Dict[str, int] = {
    "armed_signal": 0,
    "armed_watchdog": 0,
    "fired": 0,
    "timeouts_unenforced": 0,
}


def watchdog_stats() -> Dict[str, int]:
    """Snapshot of the deadline-enforcement counters (process-wide).

    Keys: ``armed_signal`` (SIGALRM arms), ``armed_watchdog`` (timer
    arms on non-main threads), ``fired`` (watchdog injections), and
    ``timeouts_unenforced`` (deadlines that could not be enforced at
    all — should stay 0 on CPython).
    """
    with _STATS_LOCK:
        return dict(_STATS)


def reset_watchdog_stats() -> None:
    """Zero the counters (used by tests and service restarts)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


def _bump(name: str) -> None:
    with _STATS_LOCK:
        _STATS[name] = _STATS.get(name, 0) + 1


def _async_exc_injector():
    """The ``PyThreadState_SetAsyncExc`` entry point, or ``None``.

    Resolved lazily so non-CPython runtimes degrade to the
    ``timeouts_unenforced`` accounting path instead of failing at
    import time.
    """
    pythonapi = getattr(ctypes, "pythonapi", None)
    if pythonapi is None:
        return None
    return getattr(pythonapi, "PyThreadState_SetAsyncExc", None)


class _ThreadWatchdog:
    """One armed deadline for one thread, enforced by async-exc injection.

    A daemon :class:`threading.Timer` fires after ``timeout`` seconds
    and raises :class:`SweepTimeoutError` *inside* the target thread.
    :meth:`cancel` disarms it and — when the timer won the race — clears
    any still-pending injection so a task that finished just under the
    wire cannot poison unrelated later code on the same thread.
    """

    def __init__(self, ident: int, timeout: float, injector):
        self._ident = ident
        self._injector = injector
        self._lock = threading.Lock()
        self._fired = False
        self._cancelled = False
        self._timer = threading.Timer(timeout, self._fire)
        self._timer.daemon = True

    def start(self) -> None:
        self._timer.start()

    def _fire(self) -> None:
        with self._lock:
            if self._cancelled:
                return
            self._fired = True
            _bump("fired")
            self._injector(
                ctypes.c_ulong(self._ident), ctypes.py_object(SweepTimeoutError)
            )

    def cancel(self) -> None:
        self._timer.cancel()
        with self._lock:
            self._cancelled = True
            if self._fired:
                # The exception may still be pending delivery (the task
                # finished between injection and the next bytecode);
                # NULL clears the thread's pending async exception.
                self._injector(ctypes.c_ulong(self._ident), None)


@contextmanager
def deadline(timeout: Optional[float], message: str = "") -> Iterator[None]:
    """Enforce a wall-clock budget on the enclosed block.

    Raises :class:`~repro.errors.SweepTimeoutError` (with ``message``)
    when the block runs longer than ``timeout`` seconds.  ``timeout=None``
    is a no-op.  Works on any thread — see the module docstring for the
    per-thread mechanisms and their granularity.

    Example:
        >>> import time
        >>> try:
        ...     with deadline(0.05, "too slow"):
        ...         while True:
        ...             time.perf_counter()
        ... except Exception as exc:
        ...     print(type(exc).__name__)
        SweepTimeoutError
    """
    if timeout is None:
        yield
        return
    on_main = threading.current_thread() is threading.main_thread()
    if on_main and hasattr(signal, "SIGALRM"):

        def _on_alarm(signum, frame):
            raise SweepTimeoutError(message)

        old_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        _bump("armed_signal")
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
        return
    injector = _async_exc_injector()
    if injector is None:
        # No enforcement mechanism: make the gap *observable* instead of
        # silently dropping the budget (the pre-fix farm behaviour).
        _bump("timeouts_unenforced")
        count("timeouts_unenforced")
        yield
        return
    watchdog = _ThreadWatchdog(threading.get_ident(), timeout, injector)
    _bump("armed_watchdog")
    watchdog.start()
    try:
        yield
    except SweepTimeoutError as exc:
        # Injection raises the bare class; attach the caller's message.
        if exc.args:
            raise
        raise SweepTimeoutError(message) from None
    finally:
        watchdog.cancel()
