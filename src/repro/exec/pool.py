"""`SweepFarm` — the multiprocess sweep executor.

Sharding model: every :class:`~repro.exec.task.SweepPoint` is an
independent unit (its RNG seed travels inside its config), so the farm
simply submits points to a :class:`concurrent.futures.ProcessPoolExecutor`
and re-orders outcomes by submission index.  That re-ordering — plus
per-point seeds — is the whole determinism story: results are
bit-identical at any ``jobs`` count, and ``jobs=1`` short-circuits to
inline execution (same code path as the workers, no processes spawned).

Failure containment, per point:

* **in-task exception** (e.g. :class:`~repro.errors.InfeasiblePartitionError`)
  — caught in the worker, returned as a failed outcome;
* **timeout** — the worker wraps the point in
  :func:`repro.exec.watchdog.deadline` (``SIGALRM`` on the main thread,
  an async-exception watchdog on worker threads) and converts the
  expiry into :class:`~repro.errors.SweepTimeoutError`, so the pool
  itself stays healthy (no worker is ever killed for being slow);
* **worker death** (segfault, ``os._exit``, OOM-kill) — surfaces as a
  broken pool; the farm shuts the dead executor down, builds a fresh
  one, and resubmits the affected points.

Each of these consumes one of the point's ``retries + 1`` attempts;
a point that keeps failing becomes a *degraded* :class:`TaskResult`
(``ok=False``) instead of sinking the sweep.  Note the one blunt edge
of pool-level recovery: a dying worker invalidates every in-flight
future, so concurrently scheduled innocent points may also burn an
attempt — give sweeps a retry budget (the default ``retries=1``
suffices) rather than ``retries=0`` when that matters.

Results from the on-disk cache (see :mod:`repro.exec.cache`) are
returned with ``cache_hit=True`` and ``attempts=0`` without touching
the pool at all.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..perf import current_trace
from .cache import ResultCache
from .hashing import code_version, point_key
from .task import SweepPoint, TaskResult, run_point
from .watchdog import deadline

__all__ = ["FarmPolicy", "SweepFarm"]


@dataclass(frozen=True)
class FarmPolicy:
    """Execution policy of a :class:`SweepFarm`.

    Attributes:
        jobs: worker process count; ``1`` runs inline (no processes).
        timeout: per-task wall-clock budget in seconds (``None`` = no
            limit).  Enforced inside the worker via
            :func:`repro.exec.watchdog.deadline` — ``SIGALRM`` on the
            main thread, an async-exception watchdog on any other
            thread — so it interrupts Python bytecode (which is all
            this package runs) no matter where the attempt executes.
        retries: extra attempts after a first failure; every point gets
            ``retries + 1`` attempts before its row degrades.
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1


def _execute_attempt(
    point: SweepPoint, timeout: Optional[float], traced: bool
) -> Dict[str, object]:
    """Run one attempt of ``point``; never raises (outcome dict instead).

    This exact function body runs both inline (``jobs=1``) and in pool
    workers, which is what makes the two modes bit-identical.
    """
    from ..perf import clear_failed_stage, failed_stage

    clear_failed_stage()
    t0 = time.perf_counter()
    message = (
        ""
        if timeout is None
        else f"sweep task exceeded {timeout:g}s "
        f"({point.kind} on {point.circuit})"
    )
    try:
        perf = None
        with deadline(timeout, message):
            if traced:
                from ..perf import profiled

                with profiled(f"{point.kind}:{point.circuit}") as trace:
                    value = run_point(point)
                perf = trace.to_dict()
            else:
                value = run_point(point)
        return {
            "ok": True,
            "value": value,
            "perf": perf,
            "seconds": time.perf_counter() - t0,
        }
    except Exception as exc:  # degraded row, never a crashed sweep
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "stage": failed_stage(),
            "diagnostics": getattr(exc, "lint_diagnostics", None),
            "seconds": time.perf_counter() - t0,
        }


class SweepFarm:
    """Execute sweep points in parallel with caching, retries, timeouts.

    Example (inline, no cache):
        >>> from repro.exec import SweepFarm, SweepPoint
        >>> farm = SweepFarm()
        >>> pts = [SweepPoint("_echo", "demo", params=(("x", i),)) for i in range(3)]
        >>> [r.value["x"] for r in farm.map(pts)]
        [0, 1, 2]

    Attributes:
        policy: the :class:`FarmPolicy` in force.
        cache: optional :class:`~repro.exec.cache.ResultCache`; hits
            skip execution entirely, successes are stored back.
    """

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        cache: Optional[ResultCache] = None,
        policy: Optional[FarmPolicy] = None,
    ):
        self.policy = policy or FarmPolicy(
            jobs=jobs, timeout=timeout, retries=retries
        )
        self.cache = cache

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def map(self, points: Sequence[SweepPoint]) -> List[TaskResult]:
        """Run every point; one :class:`TaskResult` per point, in order.

        Never raises for per-point failures — inspect ``result.ok``.
        Perf traces collected in workers are merged into the parent's
        active :class:`~repro.perf.PerfTrace` (if any), so
        ``merced --profile`` aggregates across processes.
        """
        points = list(points)
        trace = current_trace()
        traced = trace is not None
        results: List[Optional[TaskResult]] = [None] * len(points)

        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(points)
        if self.cache is not None:
            code = code_version()
            for i, point in enumerate(points):
                keys[i] = point_key(point, code=code)
                payload = self.cache.get(keys[i])
                if payload is not None:
                    results[i] = TaskResult(
                        point=point,
                        value=payload,
                        attempts=0,
                        cache_hit=True,
                    )
                else:
                    pending.append(i)
        else:
            pending = list(range(len(points)))

        if pending:
            if self.policy.jobs <= 1:
                self._run_inline(points, pending, results, traced)
            else:
                self._run_pool(points, pending, results, traced)

        for i, result in enumerate(results):
            assert result is not None  # every index is filled above
            if (
                self.cache is not None
                and result.ok
                and not result.cache_hit
            ):
                self.cache.put(
                    keys[i],
                    result.value,
                    kind=result.point.kind,
                    circuit=result.point.circuit,
                )

        if traced:
            self._merge_perf(trace, results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # inline (jobs=1) and pooled execution share attempt bookkeeping
    # ------------------------------------------------------------------
    def _run_inline(self, points, pending, results, traced) -> None:
        allowed = self.policy.retries + 1
        for i in pending:
            attempts = 0
            while True:
                attempts += 1
                outcome = _execute_attempt(
                    points[i], self.policy.timeout, traced
                )
                if outcome["ok"] or attempts >= allowed:
                    results[i] = self._to_result(points[i], outcome, attempts)
                    break

    def _run_pool(self, points, pending, results, traced) -> None:
        allowed = self.policy.retries + 1
        attempts = {i: 0 for i in pending}
        queue = list(pending)
        executor = self._new_executor()
        try:
            inflight = {}
            while queue or inflight:
                while queue:
                    i = queue.pop(0)
                    future = executor.submit(
                        _execute_attempt,
                        points[i],
                        self.policy.timeout,
                        traced,
                    )
                    inflight[future] = i
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    i = inflight.pop(future)
                    attempts[i] += 1
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        outcome = {
                            "ok": False,
                            "error": "worker process died "
                            "(killed, crashed, or exited)",
                            "error_type": "BrokenWorker",
                            "seconds": 0.0,
                        }
                    if outcome["ok"] or attempts[i] >= allowed:
                        results[i] = self._to_result(
                            points[i], outcome, attempts[i]
                        )
                    else:
                        queue.append(i)
                if pool_broken:
                    # remaining in-flight futures are doomed too: drain
                    # them through the same bookkeeping, then rebuild.
                    for future, i in list(inflight.items()):
                        attempts[i] += 1
                        try:
                            outcome = future.result()
                        except BrokenProcessPool:
                            outcome = {
                                "ok": False,
                                "error": "worker pool collapsed while "
                                "this task was scheduled",
                                "error_type": "BrokenWorker",
                                "seconds": 0.0,
                            }
                        if outcome["ok"] or attempts[i] >= allowed:
                            results[i] = self._to_result(
                                points[i], outcome, attempts[i]
                            )
                        else:
                            queue.append(i)
                    inflight.clear()
                    executor.shutdown(wait=True)
                    executor = self._new_executor()
        finally:
            executor.shutdown(wait=True)

    def _new_executor(self) -> ProcessPoolExecutor:
        # Forking with live threads (service executors, the watchdog
        # timer) copies held locks into the child, which can deadlock
        # it instantly.  Keep the cheap default fork start for the
        # single-threaded CLI path, but switch to spawn whenever any
        # other thread is already running.
        mp_context = (
            multiprocessing.get_context("spawn")
            if threading.active_count() > 1
            else None
        )
        return ProcessPoolExecutor(
            max_workers=self.policy.jobs, mp_context=mp_context
        )

    @staticmethod
    def _to_result(point, outcome, attempts) -> TaskResult:
        if outcome["ok"]:
            return TaskResult(
                point=point,
                value=outcome["value"],
                attempts=attempts,
                seconds=outcome["seconds"],
                perf=outcome.get("perf"),
            )
        diagnostics = outcome.get("diagnostics")
        return TaskResult(
            point=point,
            error=outcome["error"],
            error_type=outcome["error_type"],
            attempts=attempts,
            seconds=outcome["seconds"],
            stage=outcome.get("stage"),
            diagnostics=tuple(diagnostics) if diagnostics else None,
        )

    @staticmethod
    def _merge_perf(trace, results) -> None:
        for result in results:
            if result.perf:
                trace.merge(result.perf)
            trace.count("farm_tasks")
            if result.cache_hit:
                trace.count("farm_cache_hits")
            if not result.ok:
                trace.count("farm_failures")
