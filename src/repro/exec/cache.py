"""On-disk result cache for sweep points.

Layout: ``<dir>/<key[:2]>/<key>.json`` — one JSON document per result,
sharded by the first key byte so directories stay small on big grids.
Writes are atomic (*write to a temp file in the same directory, then
``os.replace``*), so a cache shared by concurrent sweeps or killed
mid-write never yields a torn read; a corrupt or unreadable entry is
treated as a miss and overwritten on the next store.

Only *successful* payloads are cached: failures must re-execute on the
next run (the failure may have been transient, and `degraded rows
should never outlive the sweep that produced them`).

Invalidation is entirely key-side (see :mod:`repro.exec.hashing`): a
changed netlist, configuration, or code version simply hashes to a new
key.  Stale entries are garbage, never wrong answers; :meth:`ResultCache.purge`
drops them wholesale.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  # unreadable/corrupt entries encountered

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (for ``--stats-json`` and CI gates)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Directory-backed cache of sweep payloads keyed by content hash.

    Example:
        >>> import tempfile
        >>> cache = ResultCache(tempfile.mkdtemp())
        >>> cache.get("ab" * 32) is None
        True
        >>> cache.put("ab" * 32, {"n_cut_nets": 7})
        True
        >>> cache.get("ab" * 32)
        {'n_cut_nets': 7}
        >>> (cache.stats.hits, cache.stats.misses, cache.stats.stores)
        (1, 1, 1)
    """

    directory: Union[str, Path]
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return Path(self.directory) / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``key``, or ``None`` on a miss.

        Corrupt/unreadable entries count as misses (and bump
        ``stats.errors``) rather than raising.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                document = json.load(fh)
            payload = document["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, object], **meta) -> bool:
        """Atomically store ``payload`` under ``key``; ``True`` on success.

        ``meta`` (circuit name, kind, ...) is stored alongside for
        debuggability; only ``payload`` is ever read back.

        A store that fails — unserializable payload, full/read-only
        disk — returns ``False`` and bumps ``stats.errors`` instead of
        raising (a cache write must never sink the sweep that produced
        the result), and the temp file is always unlinked, never
        orphaned in the shard directory.
        """
        path = self._path(key)
        document = {"key": key, "meta": meta, "payload": payload}
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
            tmp = None
        except (OSError, TypeError, ValueError):
            self.stats.errors += 1
            return False
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.stats.stores += 1
        return True

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in Path(self.directory).glob("*/*.json"))

    def purge(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in Path(self.directory).glob("*/*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    def flush(self, min_age_s: float = 0.0) -> int:
        """Remove orphaned ``.tmp-*`` files; returns how many were removed.

        :meth:`put` cleans up after itself, so leftovers only appear
        when a writer was killed mid-store (e.g. an OOM-killed sweep
        worker).  The compile service calls this as part of its
        graceful drain so a SIGTERM never strands temp files in the
        shard directories.

        ``min_age_s`` protects writers that may still be mid-store
        (stranded executor threads, other processes sharing the
        directory): only temp files whose mtime is at least that many
        seconds old are reaped.  The default ``0.0`` reaps everything —
        only safe once all writers have provably quiesced.
        """
        cutoff = time.time() - min_age_s
        n = 0
        for path in Path(self.directory).glob("*/.tmp-*"):
            try:
                if min_age_s > 0 and path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
                n += 1
            except OSError:
                pass
        return n
