"""Result caches for sweep points: on-disk tier + in-memory hot tier.

:class:`ResultCache` — the on-disk tier.  Layout:
``<dir>/<key[:2]>/<key>.json`` — one JSON document per result, sharded
by the first key byte so directories stay small on big grids.  Writes
are atomic (*write to a temp file in the same directory, then
``os.replace``*), so a cache shared by concurrent sweeps or killed
mid-write never yields a torn read; a corrupt or unreadable entry is
treated as a miss and overwritten on the next store.

:class:`HotCache` — the bounded in-memory tier the compile service
keeps *above* the disk cache: an LRU of already-serialized payload
bytes keyed by the same content hash, so a repeat-hot circuit is served
straight from memory with no disk I/O and no JSON re-serialization.
Entries and total payload bytes are both bounded; eviction is
strict-LRU and every hit/miss/eviction is counted
(:class:`HotCacheStats`), which is what the fleet benchmark's
cache-hit-vs-shard-count curves are built from.

Only *successful* payloads are cached in either tier: failures must
re-execute on the next run (the failure may have been transient, and
`degraded rows should never outlive the sweep that produced them`).

Invalidation is entirely key-side (see :mod:`repro.exec.hashing`): a
changed netlist, configuration, or code version simply hashes to a new
key.  Stale entries are garbage, never wrong answers; :meth:`ResultCache.purge`
drops them wholesale.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["CacheStats", "ResultCache", "HotCacheStats", "HotCache"]


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  # unreadable/corrupt entries encountered

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (for ``--stats-json`` and CI gates)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Directory-backed cache of sweep payloads keyed by content hash.

    Example:
        >>> import tempfile
        >>> cache = ResultCache(tempfile.mkdtemp())
        >>> cache.get("ab" * 32) is None
        True
        >>> cache.put("ab" * 32, {"n_cut_nets": 7})
        True
        >>> cache.get("ab" * 32)
        {'n_cut_nets': 7}
        >>> (cache.stats.hits, cache.stats.misses, cache.stats.stores)
        (1, 1, 1)
    """

    directory: Union[str, Path]
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        # No eager mkdir: the constructor runs on service event loops
        # (CompileService.__init__) and must not touch the filesystem.
        # put() creates the shard directories on first store; an
        # unusable cache directory therefore surfaces as stats.errors
        # on the first store instead of an exception at boot.
        # Guards the stats counters: get/put run on executor threads
        # while the service reads snapshots from the event loop.  Not a
        # dataclass field — never compared, never pickled.
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return Path(self.directory) / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``key``, or ``None`` on a miss.

        Corrupt/unreadable entries count as misses (and bump
        ``stats.errors``) rather than raising.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                document = json.load(fh)
            payload = document["payload"]
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            with self._lock:
                self.stats.errors += 1
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, object], **meta) -> bool:
        """Atomically store ``payload`` under ``key``; ``True`` on success.

        ``meta`` (circuit name, kind, ...) is stored alongside for
        debuggability; only ``payload`` is ever read back.

        A store that fails — unserializable payload, full/read-only
        disk — returns ``False`` and bumps ``stats.errors`` instead of
        raising (a cache write must never sink the sweep that produced
        the result), and the temp file is always unlinked, never
        orphaned in the shard directory.
        """
        path = self._path(key)
        document = {"key": key, "meta": meta, "payload": payload}
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
            tmp = None
        except (OSError, TypeError, ValueError):
            with self._lock:
                self.stats.errors += 1
            return False
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        with self._lock:
            self.stats.stores += 1
        return True

    def stats_snapshot(self) -> Dict[str, object]:
        """Consistent plain-dict view of the counters, taken under the lock.

        ``/metrics`` readers must use this instead of ``stats.as_dict()``:
        the counters are mutated from executor threads, and an unlocked
        multi-field read can observe a torn update (e.g. ``hits`` from
        before a lookup with ``misses`` from after it).
        """
        with self._lock:
            return self.stats.as_dict()

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in Path(self.directory).glob("*/*.json"))

    def purge(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in Path(self.directory).glob("*/*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The cached payload for ``key`` as serialized JSON bytes.

        Same hit/miss/error accounting as :meth:`get`, but re-encodes
        the payload with sorted keys — the canonical byte form the
        service's hot tier stores, so a disk hit can be promoted into
        memory without a second serialization later.
        """
        payload = self.get(key)
        if payload is None:
            return None
        try:
            return json.dumps(payload, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError):
            with self._lock:
                self.stats.errors += 1
            return None

    def flush(self, min_age_s: float = 0.0) -> int:
        """Remove orphaned ``.tmp-*`` files; returns how many were removed.

        :meth:`put` cleans up after itself, so leftovers only appear
        when a writer was killed mid-store (e.g. an OOM-killed sweep
        worker).  The compile service calls this as part of its
        graceful drain so a SIGTERM never strands temp files in the
        shard directories.

        ``min_age_s`` protects writers that may still be mid-store
        (stranded executor threads, other processes sharing the
        directory): only temp files whose mtime is at least that many
        seconds old are reaped.  The default ``0.0`` reaps everything —
        only safe once all writers have provably quiesced.
        """
        cutoff = time.time() - min_age_s
        n = 0
        for path in Path(self.directory).glob("*/.tmp-*"):
            try:
                if min_age_s > 0 and path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
                n += 1
            except OSError:
                pass
        return n


@dataclass
class HotCacheStats:
    """Hit/miss/eviction counters of one :class:`HotCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    oversized: int = 0  # payloads rejected for exceeding the byte bound

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (merged into the service ``/metrics``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "oversized": self.oversized,
            "hit_rate": self.hit_rate,
        }


class HotCache:
    """Bounded in-memory LRU of serialized payload bytes, keyed by content hash.

    The compile service's hot tier: values are the *already-serialized*
    (sorted-keys JSON) payload bytes, so serving a hit does no disk I/O
    and no JSON round-trip — the bytes are spliced straight into the
    HTTP response.  Both the entry count and the summed payload bytes
    are bounded; insertion evicts strict-LRU until both bounds hold.
    Thread-safe: the service touches it from the event loop *and* from
    executor threads.

    Like the disk tier, keys are content hashes (netlist + config +
    code version), so entries can be stale-useless but never stale-wrong.

    Example:
        >>> hot = HotCache(max_entries=2, max_bytes=1024)
        >>> hot.put("a" * 64, b'{"x":1}')
        True
        >>> hot.get("a" * 64)
        b'{"x":1}'
        >>> hot.put("b" * 64, b'{"x":2}') and hot.put("c" * 64, b'{"x":3}')
        True
        >>> hot.get("a" * 64) is None  # LRU-evicted by the third insert
        True
        >>> (hot.stats.hits, hot.stats.misses, hot.stats.evictions)
        (1, 1, 1)
    """

    def __init__(self, max_entries: int = 512, max_bytes: int = 64 << 20):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = HotCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0

    def get(self, key: str) -> Optional[bytes]:
        """The cached payload bytes for ``key`` (refreshing its recency)."""
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return blob

    def peek(self, key: str) -> bool:
        """Whether ``key`` is resident, without touching recency or stats."""
        with self._lock:
            return key in self._entries

    def put(self, key: str, blob: bytes) -> bool:
        """Insert ``blob`` under ``key``; ``True`` unless it can never fit.

        A payload larger than ``max_bytes`` on its own is rejected
        (counted as ``oversized``) rather than evicting the whole tier
        for one giant entry.  Re-inserting an existing key refreshes
        both the value and its recency.
        """
        size = len(blob)
        if size > self.max_bytes:
            with self._lock:
                self.stats.oversized += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = blob
            self._bytes += size
            self.stats.stores += 1
            while len(self._entries) > self.max_entries or (
                self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.stats.evictions += 1
        return True

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            return n

    def __len__(self) -> int:
        """Number of resident entries."""
        with self._lock:
            return len(self._entries)

    @property
    def payload_bytes(self) -> int:
        """Summed size of the resident payload bytes."""
        with self._lock:
            return self._bytes

    def as_dict(self) -> Dict[str, object]:
        """Stats + occupancy snapshot (for ``/metrics``).

        The whole snapshot — occupancy *and* counters — is taken under
        the lock: the counters are mutated by executor threads, and
        reading them unlocked can pair an ``entries`` count from one
        moment with ``stores``/``evictions`` from another (torn read).
        """
        with self._lock:
            snapshot = {
                "entries": len(self._entries),
                "payload_bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }
            snapshot.update(self.stats.as_dict())
        return snapshot
