"""Parallel sweep execution farm with on-disk result caching.

The paper's evaluation is a grid — benchmarks × ``l_k`` × β × flow
seeds (Tables 10–12, Figure 8) — and each grid point is an independent
Merced compilation.  This package turns that observation into
infrastructure:

* :mod:`repro.exec.task` — the picklable unit of work
  (:class:`SweepPoint`) and its outcome (:class:`TaskResult`);
* :mod:`repro.exec.hashing` — content hashes over (netlist bytes,
  configuration, code version) that key the cache;
* :mod:`repro.exec.cache` — an atomic, JSON-per-result on-disk cache;
* :mod:`repro.exec.pool` — :class:`SweepFarm`, the multiprocess
  executor with per-task timeouts, bounded retries, dead-worker
  recovery, and deterministic result ordering;
* :mod:`repro.exec.watchdog` — :func:`deadline`, the per-attempt
  wall-clock enforcer (``SIGALRM`` on the main thread, an
  async-exception watchdog on worker threads) shared by the farm and
  the ``merced serve`` compile service.

Results are bit-identical at any worker count (including ``jobs=1``,
which runs inline without spawning processes) because every point
carries its own explicit RNG seed and the farm orders results by
submission index, never by completion order.
"""

from .cache import CacheStats, ResultCache
from .hashing import code_version, config_fingerprint, point_key, short_key
from .pool import FarmPolicy, SweepFarm
from .task import SweepPoint, TaskResult, known_kinds, run_point
from .watchdog import deadline, reset_watchdog_stats, watchdog_stats

__all__ = [
    "CacheStats",
    "ResultCache",
    "code_version",
    "config_fingerprint",
    "point_key",
    "short_key",
    "FarmPolicy",
    "SweepFarm",
    "SweepPoint",
    "TaskResult",
    "known_kinds",
    "run_point",
    "deadline",
    "reset_watchdog_stats",
    "watchdog_stats",
]
