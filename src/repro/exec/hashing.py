"""Content hashes that key the sweep result cache.

A cached payload is valid only while *everything that could change it*
is unchanged: the netlist, the configuration, and the code that computes
the result.  :func:`point_key` therefore folds three fingerprints into
one SHA-256 hex digest:

* the point's canonical ``.bench`` text (netlist bytes),
* the full :class:`~repro.config.MercedConfig` field set
  (:func:`config_fingerprint`),
* :func:`code_version` — a digest over every ``*.py`` source file of
  the installed :mod:`repro` package, so *any* code change invalidates
  the whole cache.  Conservative by design: a stale hit is a silent
  wrong answer, a spurious miss is just a recomputation.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

from ..config import MercedConfig
from .task import SweepPoint

__all__ = [
    "code_version",
    "config_fingerprint",
    "point_key",
    "point_key_strict",
    "short_key",
]

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the :mod:`repro` package sources (cached per process).

    Hashes the relative path and contents of every ``*.py`` file under
    the package directory, in sorted order, so the digest is stable
    across machines and working directories but changes whenever any
    module changes.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\x00")
            h.update(path.read_bytes())
            h.update(b"\x00")
        _CODE_VERSION = h.hexdigest()
    return _CODE_VERSION


def config_fingerprint(config: MercedConfig) -> Dict[str, object]:
    """Stable, JSON-ready view of every configuration field."""
    return config.canonical_dict()


def point_key(point: SweepPoint, code: Optional[str] = None) -> str:
    """SHA-256 cache key of a sweep point.

    Falls back to :func:`code_version` when ``code`` is omitted — which
    reads every package source file on the first call, so event-loop
    code must use :func:`point_key_strict` with a pre-computed digest
    instead (the services hash the tree once, off-loop, at start-up).

    Args:
        point: the point to fingerprint.
        code: override for :func:`code_version` (tests use this to
            simulate code changes without editing sources).
    """
    return point_key_strict(
        point, code if code is not None else code_version()
    )


def point_key_strict(point: SweepPoint, code: str) -> str:
    """SHA-256 cache key of a sweep point with an explicit code digest.

    Pure CPU — no filesystem fallback — and therefore safe to call on
    an event loop.  ``code`` must be a previously computed
    :func:`code_version` digest (or a test override); passing ``None``
    is a programming error.
    """
    if code is None:
        raise ValueError(
            "point_key_strict requires a code digest; compute "
            "code_version() off-loop first"
        )
    material = {
        "kind": point.kind,
        "circuit": point.circuit,
        "bench": point.bench,
        "config": config_fingerprint(point.config),
        "params": [[k, v] for k, v in point.params],
        "code": code,
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def short_key(key: str, length: int = 12) -> str:
    """Truncated display form of a :func:`point_key` digest.

    Used in service logs and response payloads where the full 64-char
    hex digest is noise; 12 hex chars (48 bits) is far beyond any
    realistic in-flight collision risk.

    >>> short_key("ab" * 32)
    'abababababab'
    """
    return key[:length]
