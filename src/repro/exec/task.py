"""The sweep farm's unit of work and its outcome.

A :class:`SweepPoint` is a *picklable, self-contained* description of
one grid point: the circuit (as canonical ``.bench`` text, so workers
never share in-memory state with the parent), the
:class:`~repro.config.MercedConfig` to run it under, and a ``kind``
selecting what to compute.  :func:`run_point` executes a point in the
current process; the pool runs the very same function in workers, which
is what makes ``--jobs 1`` and ``--jobs N`` bit-identical.

Built-in kinds:

``merced``
    Full Merced compilation (Table 2); the payload carries the
    deterministic row statistics of Tables 10–12 (cut nets, CBIT area
    ratios, catalogue cost) — everything except wall-clock CPU time,
    which is excluded on purpose so payloads are reproducible and
    cacheable.
``beta``
    Partition-only run with ``strict=False`` (the §4.1 β study): welded
    oversized SCCs are counted, not raised.

Fault-injection kinds (used by the robustness tests and available for
diagnosing a deployment; all are no-ops for real sweeps):

``_sleep``
    Sleep ``params["seconds"]`` — exercises the per-task timeout
    (main-thread ``SIGALRM`` interrupts the sleep mid-flight).
``_spin``
    Busy-loop pure Python bytecode for ``params["seconds"]`` —
    exercises the per-task timeout on *worker threads*, where the
    watchdog's async-exception injection lands at bytecode boundaries
    (a blocking ``time.sleep`` would delay delivery until it returns).
``_raise``
    Raise :class:`~repro.errors.InfeasiblePartitionError` with
    ``params["message"]`` — exercises degraded-row handling.
``_exit``
    Kill the worker process with ``os._exit(1)`` — exercises
    dead-worker recovery (``BrokenProcessPool``).
``_echo``
    Return ``params`` unchanged — exercises cache plumbing cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..config import MercedConfig
from ..errors import InfeasiblePartitionError, SweepError

__all__ = [
    "SweepPoint",
    "TaskResult",
    "run_point",
    "merced_payload",
    "known_kinds",
]


@dataclass(frozen=True)
class SweepPoint:
    """One independent point of a sweep grid.

    Attributes:
        kind: task kind (see module docstring).
        circuit: display label (benchmark name) for reports.
        bench: canonical ``.bench`` text of the netlist (may be empty
            for synthetic/fault-injection kinds).
        config: full Merced parameter set for this point — the seed
            travels *inside* the point, which is what makes execution
            order irrelevant.
        params: extra kind-specific parameters as a sorted tuple of
            ``(key, value)`` pairs (tuples keep the point hashable).
    """

    kind: str
    circuit: str
    bench: str = ""
    config: MercedConfig = field(default_factory=MercedConfig)
    params: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self) -> Dict[str, object]:
        """The ``params`` pairs as a plain dict."""
        return dict(self.params)

    @staticmethod
    def make_params(mapping: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
        """Normalize a mapping into the sorted-tuple ``params`` form."""
        return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one :class:`SweepPoint` execution (or cache hit).

    Attributes:
        point: the point that was executed.
        value: the kind's payload dict on success, ``None`` on failure.
        error: stringified exception on permanent failure.
        error_type: exception class name (``"SweepTimeoutError"``,
            ``"InfeasiblePartitionError"``, ``"BrokenWorker"``, ...).
        attempts: how many executions were tried (1 = first try
            succeeded; cache hits report 0).
        cache_hit: the payload came from the on-disk cache.
        seconds: wall-clock of the successful attempt (0.0 for hits).
        perf: serialized :class:`~repro.perf.PerfTrace` dict collected
            in the worker, or ``None`` when the worker ran untraced.
        stage: pipeline stage name the failure unwound from (innermost
            ``repro.perf.stage`` block; ``None`` on success or when the
            failure hit outside any stage).
        diagnostics: machine-readable lint findings
            (:meth:`repro.analysis.Diagnostic.as_dict` payloads)
            attached to the failure, or ``None``.
    """

    point: SweepPoint
    value: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    cache_hit: bool = False
    seconds: float = 0.0
    perf: Optional[Dict[str, object]] = None
    stage: Optional[str] = None
    diagnostics: Optional[Tuple[Dict[str, str], ...]] = None

    @property
    def ok(self) -> bool:
        """True when the point produced a payload."""
        return self.value is not None


def merced_payload(report) -> Dict[str, object]:
    """The deterministic slice of a :class:`~repro.core.result.MercedReport`.

    Wall-clock CPU time is deliberately excluded: payloads must be
    bit-identical across runs, worker counts, and cache round-trips.
    """
    area = report.area
    row = report.row
    payload: Dict[str, object] = {
        "circuit": row.circuit,
        "lk": report.config.lk,
        "beta": report.config.beta,
        "seed": report.config.seed,
        "n_partitions": report.n_partitions,
        "n_dffs": row.n_dffs,
        "n_dffs_on_scc": row.n_dffs_on_scc,
        "n_cut_nets": area.n_cut_nets,
        "n_cut_nets_on_scc": area.n_cut_nets_on_scc,
        "n_retimable": area.n_retimable,
        "max_input_count": report.partition.max_input_count(),
        "n_merges": report.n_merges,
        "n_splits": report.n_splits,
        "saturation_sources": report.saturation_sources,
        "cost_dff": report.cost_dff,
        "pct_with_retiming": area.pct_with_retiming,
        "pct_without_retiming": area.pct_without_retiming,
    }
    if report.optimize is not None:
        # refinement deltas ride along only when the point asked for
        # them, so payloads of non-optimized sweeps stay byte-identical
        payload["optimize"] = dict(report.optimize)
    return payload


#: Per-process circuit cache: sha256(bench text) → (netlist, graph,
#: scc_index).  Sweep grids typically run many points per circuit in the
#: same worker; parsing, graph construction, SCC analysis, and the
#: compiled CSR arrays (cached on the graph) all depend only on the
#: bench text, so they can be shared.  Every run resets the graph's
#: mutable flow state itself and all per-point results are plain dicts,
#: so reuse is bit-identical to a fresh build (the determinism suite
#: covers this).  Bounded FIFO so long multi-circuit sweeps don't hold
#: every graph alive.  Cache *keys* for the on-disk result cache are
#: untouched — this only skips redundant in-process work.
_CIRCUIT_CACHE: Dict[str, Tuple[object, object, object]] = {}
_CIRCUIT_CACHE_MAX = 8


def _circuit_for(point: SweepPoint):
    """(netlist, graph, scc_index) for a point's bench text, cached."""
    import hashlib

    from ..graphs.build import build_circuit_graph
    from ..graphs.scc import SCCIndex
    from ..netlist.bench import parse_bench

    key = hashlib.sha256(
        (point.circuit + "\0" + point.bench).encode("utf-8")
    ).hexdigest()
    hit = _CIRCUIT_CACHE.get(key)
    if hit is not None:
        return hit
    netlist = parse_bench(point.bench, name=point.circuit)
    graph = build_circuit_graph(netlist, with_po_nodes=False)
    scc = SCCIndex(graph)
    entry = (netlist, graph, scc)
    if len(_CIRCUIT_CACHE) >= _CIRCUIT_CACHE_MAX:
        _CIRCUIT_CACHE.pop(next(iter(_CIRCUIT_CACHE)))
    _CIRCUIT_CACHE[key] = entry
    return entry


def _run_merced(point: SweepPoint) -> Dict[str, object]:
    from ..core.merced import Merced
    from ..errors import ReproError

    netlist, graph, scc = _circuit_for(point)
    try:
        report = Merced(point.config).run(
            netlist, graph=graph, scc_index=scc
        )
    except ReproError as exc:
        _attach_lint(exc, point, netlist, graph, scc)
        raise
    return merced_payload(report)


def _attach_lint(exc, point: SweepPoint, netlist, graph, scc) -> None:
    """Attach pre-lint diagnostics to a failing point's exception.

    The entry gate already stamps ``lint_diagnostics`` on its own
    aborts; failures from deeper stages get a best-effort lint pass here
    (reusing the cached netlist/graph/SCC index) so the resulting
    :class:`~repro.core.sweep.SweepErrorRow` explains the circuit state
    the stage choked on.  Lint failures never mask the original error.
    """
    if hasattr(exc, "lint_diagnostics"):
        return
    try:
        from ..analysis.lint import lint_circuit

        report = lint_circuit(
            netlist, point.config, graph=graph, scc_index=scc
        )
        exc.lint_diagnostics = [d.as_dict() for d in report.diagnostics]
    except Exception:
        pass


def _run_beta(point: SweepPoint) -> Dict[str, object]:
    from ..partition.assign_cbit import assign_cbit
    from ..partition.make_group import make_group

    _netlist, graph, scc = _circuit_for(point)
    group = make_group(graph, scc, point.config, strict=False)
    merged = assign_cbit(group.partition)
    p = merged.partition
    oversized = [c for c in p.clusters if c.input_count > point.config.lk]
    return {
        "circuit": point.circuit,
        "beta": point.config.beta,
        "n_cut_nets": len(p.cut_nets()),
        "n_cut_nets_on_scc": len(p.cut_nets_on_scc()),
        "max_input_count": p.max_input_count(),
        "n_oversized": len(oversized),
    }


def _run_sleep(point: SweepPoint) -> Dict[str, object]:
    import time

    time.sleep(float(point.param_dict().get("seconds", 3600.0)))
    return {"slept": True}


def _run_spin(point: SweepPoint) -> Dict[str, object]:
    import time

    until = time.perf_counter() + float(
        point.param_dict().get("seconds", 3600.0)
    )
    spins = 0
    while time.perf_counter() < until:
        spins += 1
    return {"spun": True, "spins": spins}


def _run_raise(point: SweepPoint) -> Dict[str, object]:
    raise InfeasiblePartitionError(
        str(point.param_dict().get("message", "injected failure"))
    )


def _run_exit(point: SweepPoint) -> Dict[str, object]:
    import os

    os._exit(int(point.param_dict().get("code", 1)))


def _run_echo(point: SweepPoint) -> Dict[str, object]:
    return point.param_dict()


#: kind → executor.  Module-level so worker processes resolve the same
#: table after a plain import (no closure shipping).
_KINDS: Dict[str, Callable[[SweepPoint], Dict[str, object]]] = {
    "merced": _run_merced,
    "beta": _run_beta,
    "_sleep": _run_sleep,
    "_spin": _run_spin,
    "_raise": _run_raise,
    "_exit": _run_exit,
    "_echo": _run_echo,
}


def known_kinds() -> Tuple[str, ...]:
    """The registered task kinds, sorted (public + fault-injection).

    The compile service validates submissions against this before
    admitting them, so an unknown kind is a clean 400 instead of a
    degraded row.
    """
    return tuple(sorted(_KINDS))


def run_point(point: SweepPoint) -> Dict[str, object]:
    """Execute one sweep point in the current process.

    Returns the kind's JSON-serializable payload dict.

    Raises:
        SweepError: unknown ``point.kind``.
        ReproError: whatever the underlying pipeline raises for this
            point (the farm converts these into degraded rows).
    """
    try:
        fn = _KINDS[point.kind]
    except KeyError:
        raise SweepError(
            f"unknown sweep task kind {point.kind!r} "
            f"(known: {sorted(_KINDS)})"
        ) from None
    return fn(point)
