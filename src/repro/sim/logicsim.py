"""Parallel-pattern combinational logic simulation.

Signal values are Python ints used as bit-vectors: bit ``i`` of a word is
the signal's value under pattern ``i``, so one pass over the levelized
netlist evaluates arbitrarily many patterns at once (Python's big ints
make the "machine word" as wide as the pattern block).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError
from ..netlist.gates import GATE_EVALUATORS
from ..netlist.netlist import Netlist
from .levelize import LevelizedCircuit, levelize

__all__ = ["CombSimulator", "ScalarSimulator", "pack_patterns", "unpack_word"]


def pack_patterns(patterns: Sequence[Mapping[str, int]], signals: Sequence[str]) -> Dict[str, int]:
    """Pack per-pattern 0/1 assignments into parallel words.

    >>> pack_patterns([{"a": 1}, {"a": 0}, {"a": 1}], ["a"])
    {'a': 5}
    """
    words = {s: 0 for s in signals}
    for i, pat in enumerate(patterns):
        for s in signals:
            if pat[s] & 1:
                words[s] |= 1 << i
    return words


def unpack_word(word: int, n_patterns: int) -> List[int]:
    """Split a parallel word back into per-pattern bits."""
    return [(word >> i) & 1 for i in range(n_patterns)]


class CombSimulator:
    """Evaluator for the combinational core of a netlist.

    The simulator is reusable: build once, call :meth:`run` per pattern
    block.  DFF outputs are treated as pseudo-primary inputs (their values
    must be supplied alongside the PIs), which is exactly the PPET view of
    a circuit segment.
    """

    def __init__(self, netlist: Netlist, levelized: Optional[LevelizedCircuit] = None):
        self.netlist = netlist
        self.levelized = levelized or levelize(netlist)
        self._pseudo_inputs = tuple(netlist.inputs) + tuple(
            c.output for c in netlist.dff_cells()
        )

    @property
    def pseudo_inputs(self) -> tuple:
        """Signals the caller must drive: PIs + DFF outputs."""
        return self._pseudo_inputs

    def run(
        self,
        inputs: Mapping[str, int],
        n_patterns: int,
        faults: Optional[Mapping[str, tuple]] = None,
    ) -> Dict[str, int]:
        """Evaluate all combinational signals for a block of patterns.

        Args:
            inputs: parallel words for every pseudo-primary input.
            n_patterns: number of valid pattern bits in each word.
            faults: optional stuck-at overrides ``signal -> (and_mask,
                or_mask)`` applied to the signal's *driven* value —
                stuck-at-0 is ``(0, 0)``, stuck-at-1 is ``(mask, mask)``
                with ``mask = 2^n_patterns − 1``.  (Fault simulation uses
                this hook; see :mod:`repro.faults.fsim`.)

        Returns:
            signal → parallel word, for every signal in the circuit.
        """
        if n_patterns < 1:
            raise SimulationError("n_patterns must be positive")
        mask = (1 << n_patterns) - 1
        values: Dict[str, int] = {}
        for sig in self._pseudo_inputs:
            try:
                values[sig] = inputs[sig] & mask
            except KeyError:
                raise SimulationError(
                    f"missing drive for pseudo-primary input {sig!r}"
                ) from None
        if faults:
            for sig in self._pseudo_inputs:
                if sig in faults:
                    and_m, or_m = faults[sig]
                    values[sig] = (values[sig] & and_m) | or_m
        for cell in self.levelized.order:
            ins = [values[s] for s in cell.inputs]
            out = GATE_EVALUATORS[cell.gtype](ins, mask)
            if faults and cell.output in faults:
                and_m, or_m = faults[cell.output]
                out = (out & and_m) | or_m
            values[cell.output] = out & mask
        return values

    def outputs_word(self, values: Mapping[str, int]) -> List[int]:
        """Primary-output words in declaration order."""
        return [values[o] for o in self.netlist.outputs]


class ScalarSimulator:
    """Reference oracle: one pattern at a time, plain 0/1 signal values.

    This is the simulator the bit-parallel engine is validated against:
    it shares the gate semantics (:data:`GATE_EVALUATORS` with a 1-bit
    mask) and the levelized evaluation order with
    :class:`CombSimulator`, but every signal is a bare 0/1 int, so there
    is no word packing to get wrong.  The equivalence property tests and
    ``benchmarks/bench_perf_trace.py`` both drive it; production code
    should use :class:`CombSimulator`.
    """

    def __init__(self, netlist: Netlist, levelized: Optional[LevelizedCircuit] = None):
        self.netlist = netlist
        self.levelized = levelized or levelize(netlist)
        self._pseudo_inputs = tuple(netlist.inputs) + tuple(
            c.output for c in netlist.dff_cells()
        )

    @property
    def pseudo_inputs(self) -> tuple:
        """Signals the caller must drive: PIs + DFF outputs."""
        return self._pseudo_inputs

    def run_pattern(
        self,
        pattern: Mapping[str, int],
        faults: Optional[Mapping[str, tuple]] = None,
    ) -> Dict[str, int]:
        """Evaluate every combinational signal for one input pattern.

        Args:
            pattern: 0/1 value for every pseudo-primary input.
            faults: optional stuck-at overrides ``signal -> (and_mask,
                or_mask)`` with 1-bit masks (stuck-at-0 is ``(0, 0)``,
                stuck-at-1 is ``(1, 1)``).

        Returns:
            signal → 0/1 value, for every signal in the circuit.
        """
        values: Dict[str, int] = {}
        for sig in self._pseudo_inputs:
            try:
                values[sig] = pattern[sig] & 1
            except KeyError:
                raise SimulationError(
                    f"missing drive for pseudo-primary input {sig!r}"
                ) from None
        if faults:
            for sig in self._pseudo_inputs:
                if sig in faults:
                    and_m, or_m = faults[sig]
                    values[sig] = (values[sig] & and_m) | or_m
        for cell in self.levelized.order:
            ins = [values[s] for s in cell.inputs]
            out = GATE_EVALUATORS[cell.gtype](ins, 1)
            if faults and cell.output in faults:
                and_m, or_m = faults[cell.output]
                out = (out & and_m) | or_m
            values[cell.output] = out & 1
        return values

    def run_patterns(
        self,
        patterns: Sequence[Mapping[str, int]],
        faults: Optional[Mapping[str, tuple]] = None,
    ) -> List[Dict[str, int]]:
        """Evaluate a pattern list one at a time (the scalar baseline)."""
        return [self.run_pattern(p, faults=faults) for p in patterns]
