"""Bit-parallel word packing: patterns × fault lanes in one Python int.

The combinational engine (:class:`repro.sim.logicsim.CombSimulator`)
already evaluates arbitrarily wide parallel-pattern words — Python's big
ints are the machine word.  This module supplies the *packing algebra*
that lets the hot consumers exploit that width:

* **pattern blocks** — chunk a long pattern stream into
  :data:`WORD_BITS`-wide words so one levelized pass evaluates 64
  patterns (the classic parallel-pattern single-fault trick);
* **fault blocks** — replicate a pattern block ``L`` times inside one
  word and give each replica its own stuck-at override masks, so one
  levelized pass evaluates the *same* patterns under ``L`` different
  faults (parallel-pattern **multi**-fault).  A word then reads as ``L``
  contiguous blocks of ``n_patterns`` bits; block ``j`` is the machine
  with fault ``j`` injected.

Fault-block packing is what makes the PPET self-test validation fast:
grading a fault universe goes from one full simulation per fault to one
per 64 faults, with bit-identical verdicts (the equivalence tests assert
this against the scalar oracle).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "WORD_BITS",
    "block_ones",
    "replicate_word",
    "extract_block",
    "fault_block_masks",
    "chunked",
]

#: Default number of single-bit lanes packed per word — one host machine
#: word so the big-int limbs stay register-sized on CPython.
WORD_BITS = 64


def block_ones(n_patterns: int, n_blocks: int) -> int:
    """All-ones word covering ``n_blocks`` blocks of ``n_patterns`` bits.

    >>> bin(block_ones(2, 3))
    '0b111111'
    """
    return (1 << (n_patterns * n_blocks)) - 1


def replicate_word(word: int, n_patterns: int, n_blocks: int) -> int:
    """Tile an ``n_patterns``-bit word into ``n_blocks`` adjacent blocks.

    Because ``word`` occupies fewer than ``n_patterns`` bits, the shifted
    copies never overlap and the replication is a single multiply.

    >>> bin(replicate_word(0b01, 2, 3))
    '0b10101'
    """
    if n_blocks == 1:
        return word
    tiler = ((1 << (n_patterns * n_blocks)) - 1) // ((1 << n_patterns) - 1)
    return word * tiler


def extract_block(word: int, n_patterns: int, block: int) -> int:
    """Read block ``block`` (``n_patterns`` bits) back out of a packed word.

    >>> extract_block(0b10_01, 2, 1)
    2
    """
    return (word >> (block * n_patterns)) & ((1 << n_patterns) - 1)


def fault_block_masks(
    faults: Sequence, n_patterns: int
) -> Dict[str, Tuple[int, int]]:
    """Combined stuck-at override masks with fault ``j`` in block ``j``.

    Args:
        faults: stuck-at faults (objects with ``signal`` and ``value``
            attributes, e.g. :class:`repro.faults.model.StuckAtFault`);
            fault ``j`` is injected only into block ``j`` of the packed
            word, all other blocks see the fault-free signal.
        n_patterns: width of one block in bits.

    Returns:
        ``signal -> (and_mask, or_mask)`` consumable by
        :meth:`repro.sim.logicsim.CombSimulator.run` with
        ``n_patterns=len(faults) * n_patterns``.
    """
    n_blocks = len(faults)
    full = block_ones(n_patterns, n_blocks)
    block = (1 << n_patterns) - 1
    masks: Dict[str, List[int]] = {}
    for j, fault in enumerate(faults):
        and_m, or_m = masks.setdefault(fault.signal, [full, 0])
        block_mask = block << (j * n_patterns)
        if fault.value == 0:
            masks[fault.signal][0] = and_m & ~block_mask
        else:
            masks[fault.signal][1] = or_m | block_mask
    return {sig: (m[0], m[1]) for sig, m in masks.items()}


def chunked(items: Iterable, size: int) -> Iterator[List]:
    """Split ``items`` into consecutive lists of at most ``size``.

    >>> list(chunked(range(5), 2))
    [[0, 1], [2, 3], [4]]
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    chunk: List = []
    for item in items:
        chunk.append(item)
        if len(chunk) == size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
