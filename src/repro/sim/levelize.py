"""Levelization: order combinational cells for single-pass evaluation.

A levelized netlist evaluates each combinational cell exactly once per
clock, after all of its fan-ins.  Levels are also useful diagnostics
(logic depth per stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..netlist.cells import Cell
from ..netlist.netlist import Netlist

__all__ = ["LevelizedCircuit", "levelize"]


@dataclass(frozen=True)
class LevelizedCircuit:
    """Topologically ordered combinational core of a netlist."""

    order: Tuple[Cell, ...]  # evaluation order
    level: Dict[str, int]  # signal -> logic depth (PIs and DFF outputs = 0)

    @property
    def depth(self) -> int:
        """Maximum logic depth (0 for a register-only circuit)."""
        return max(self.level.values(), default=0)


def levelize(netlist: Netlist) -> LevelizedCircuit:
    """Compute evaluation order and per-signal logic levels.

    Primary inputs and DFF outputs are level 0; a gate's level is
    ``1 + max(level of fan-ins)``.
    """
    order = netlist.topological_comb_order()
    level: Dict[str, int] = {}
    for sig in netlist.inputs:
        level[sig] = 0
    for cell in netlist.dff_cells():
        level[cell.output] = 0
    for cell in order:
        level[cell.output] = 1 + max(
            (level.get(s, 0) for s in cell.inputs), default=0
        )
    return LevelizedCircuit(order=tuple(order), level=level)
