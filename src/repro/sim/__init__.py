"""Logic simulation substrate: levelization, parallel-pattern, sequential."""

from .bitparallel import (
    WORD_BITS,
    block_ones,
    chunked,
    extract_block,
    fault_block_masks,
    replicate_word,
)
from .levelize import LevelizedCircuit, levelize
from .logicsim import CombSimulator, ScalarSimulator, pack_patterns, unpack_word
from .seqsim import SequentialSimulator, random_input_sequence, sequences_equal

__all__ = [
    "WORD_BITS",
    "block_ones",
    "chunked",
    "extract_block",
    "fault_block_masks",
    "replicate_word",
    "LevelizedCircuit",
    "levelize",
    "CombSimulator",
    "ScalarSimulator",
    "pack_patterns",
    "unpack_word",
    "SequentialSimulator",
    "random_input_sequence",
    "sequences_equal",
]
