"""Logic simulation substrate: levelization, parallel-pattern, sequential."""

from .levelize import LevelizedCircuit, levelize
from .logicsim import CombSimulator, pack_patterns, unpack_word
from .seqsim import SequentialSimulator, random_input_sequence, sequences_equal

__all__ = [
    "LevelizedCircuit",
    "levelize",
    "CombSimulator",
    "pack_patterns",
    "unpack_word",
    "SequentialSimulator",
    "random_input_sequence",
    "sequences_equal",
]
