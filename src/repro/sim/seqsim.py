"""Clocked sequential simulation on top of the combinational engine.

Runs one pattern at a time (or a parallel block of independent runs) by
alternating combinational evaluation with a synchronous register update.
Used for retiming equivalence checks and for end-to-end self-test
demonstrations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..netlist.netlist import Netlist
from .logicsim import CombSimulator

__all__ = ["SequentialSimulator", "random_input_sequence", "sequences_equal"]


class SequentialSimulator:
    """Cycle-accurate simulator of a synchronous netlist.

    State is a mapping ``dff output -> parallel word``; inputs are applied
    per clock.  Multiple independent runs can share a call by packing them
    into the pattern bits of each word.

    Example:
        >>> from repro.circuits import s27_netlist
        >>> sim = SequentialSimulator(s27_netlist())
        >>> outs = sim.run([{ "G0": 0, "G1": 1, "G2": 0, "G3": 1 }] * 3)
        >>> len(outs)
        3
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.comb = CombSimulator(netlist)
        self._dffs = tuple(netlist.dff_cells())
        self.state: Dict[str, int] = {c.output: 0 for c in self._dffs}

    def reset(self, state: Optional[Mapping[str, int]] = None) -> None:
        """Load a register state (all-zero by default)."""
        self.state = {c.output: 0 for c in self._dffs}
        if state:
            for k, v in state.items():
                if k not in self.state:
                    raise SimulationError(f"{k!r} is not a DFF output")
                self.state[k] = v

    def step(
        self,
        inputs: Mapping[str, int],
        n_patterns: int = 1,
        faults: Optional[Mapping[str, tuple]] = None,
    ) -> Dict[str, int]:
        """Advance one clock; returns all signal values *before* the edge.

        ``faults`` are stuck-at override masks per signal (see
        :meth:`repro.sim.logicsim.CombSimulator.run`); a faulty machine is
        simulated by passing the same masks every clock.
        """
        drive = dict(inputs)
        for q, v in self.state.items():
            drive[q] = v
        values = self.comb.run(drive, n_patterns, faults=faults)
        mask = (1 << n_patterns) - 1
        self.state = {
            c.output: values[c.inputs[0]] & mask for c in self._dffs
        }
        return values

    def run(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        n_patterns: int = 1,
        state: Optional[Mapping[str, int]] = None,
        faults: Optional[Mapping[str, tuple]] = None,
    ) -> List[Tuple[int, ...]]:
        """Simulate a full input sequence; returns per-clock PO tuples."""
        if state is not None:
            self.reset(state)
        outputs: List[Tuple[int, ...]] = []
        for inputs in input_sequence:
            values = self.step(inputs, n_patterns, faults=faults)
            outputs.append(tuple(values[o] for o in self.netlist.outputs))
        return outputs


def random_input_sequence(
    netlist: Netlist, n_steps: int, seed: Optional[int] = None, n_patterns: int = 1
) -> List[Dict[str, int]]:
    """Uniform random per-clock input words for ``netlist``."""
    rng = random.Random(seed)
    mask = (1 << n_patterns) - 1
    return [
        {pi: rng.randint(0, mask) for pi in netlist.inputs}
        for _ in range(n_steps)
    ]


def sequences_equal(
    a: Sequence[Tuple[int, ...]], b: Sequence[Tuple[int, ...]], skip: int = 0
) -> bool:
    """Compare PO traces, optionally ignoring the first ``skip`` clocks.

    Retimed circuits may differ in I/O latency during the first cycles
    when registers were added on input/output paths; ``skip`` lets callers
    compare steady-state behaviour.
    """
    if len(a) != len(b):
        raise SimulationError("traces have different lengths")
    return a[skip:] == b[skip:]
