"""Initial states for retimed circuits (paper §5, citing Touati/Brayton [16]).

Retiming preserves steady-state behaviour but not the power-up state: the
retimed registers need initial values that make the machine externally
equivalent to the original from clock 0.  Touati/Brayton solve this by
backward justification; here we provide:

* :func:`check_equivalence` — probabilistic black-box equivalence of two
  (netlist, state) pairs under common random stimuli, with an optional
  latency ``skip`` (registers added on I/O paths shift outputs in time);
* :func:`find_equivalent_initial_state` — exact search over the retimed
  register values for small register counts (exhaustive), falling back to
  random probing; returns the first state passing the equivalence probe.

Forward register moves always admit such a state; backward moves may not
(the paper's remedy is reset circuitry), in which case the search raises.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Mapping, Optional, Tuple

from ..errors import RetimingError
from ..netlist.netlist import Netlist
from ..sim.seqsim import SequentialSimulator, random_input_sequence

__all__ = ["check_equivalence", "find_equivalent_initial_state"]


def check_equivalence(
    original: Netlist,
    original_state: Mapping[str, int],
    retimed: Netlist,
    retimed_state: Mapping[str, int],
    n_steps: int = 12,
    n_sequences: int = 4,
    seed: Optional[int] = 0,
    skip: int = 0,
    latency: int = 0,
) -> bool:
    """Probe behavioural equivalence under common random input sequences.

    Both netlists must have the same primary inputs.  Primary outputs are
    compared by *cone*: the retimed circuit's outputs are matched to the
    original's via their names when equal, otherwise positionally.  This
    is a Monte-Carlo check — it can accept a wrong state with probability
    shrinking in ``n_steps × n_sequences``, never reject a right one.

    Args:
        skip: ignore the first clocks of both traces.
        latency: clocks by which the *retimed* outputs lag the originals
            (registers added on output paths shift the trace in time);
            negative values mean the retimed circuit leads.
    """
    if set(original.inputs) != set(retimed.inputs):
        raise RetimingError("netlists have different primary inputs")
    if abs(latency) >= n_steps:
        raise RetimingError("latency must be smaller than n_steps")
    sim_a = SequentialSimulator(original)
    sim_b = SequentialSimulator(retimed)
    rng = random.Random(seed)
    for _ in range(n_sequences):
        seq = random_input_sequence(original, n_steps, seed=rng.randrange(1 << 30))
        trace_a = sim_a.run(seq, state=original_state)
        trace_b = sim_b.run(seq, state=retimed_state)
        if len(trace_a[0]) != len(trace_b[0]):
            raise RetimingError(
                "netlists expose different primary output counts"
            )
        if latency >= 0:
            aligned_a = trace_a[: len(trace_a) - latency]
            aligned_b = trace_b[latency:]
        else:
            aligned_a = trace_a[-latency:]
            aligned_b = trace_b[: len(trace_b) + latency]
        if aligned_a[skip:] != aligned_b[skip:]:
            return False
    return True


def find_equivalent_initial_state(
    original: Netlist,
    retimed: Netlist,
    original_state: Optional[Mapping[str, int]] = None,
    max_exhaustive_registers: int = 14,
    n_random_probes: int = 256,
    n_steps: int = 10,
    n_sequences: int = 3,
    seed: Optional[int] = 0,
    skip: int = 0,
    latency: int = 0,
) -> Dict[str, int]:
    """Search an initial state of ``retimed`` equivalent to the original.

    Strategy: try all-zero first (free reset); then exhaust the
    ``2^R`` register assignments when ``R ≤ max_exhaustive_registers``;
    otherwise draw random assignments.  Every candidate is screened with
    :func:`check_equivalence`.

    Returns:
        A register-state dict for ``retimed``.

    Raises:
        RetimingError: no equivalent state found — backward register
            moves crossed unjustifiable logic; add reset circuitry (the
            paper's suggestion) or recompute states per Touati/Brayton.
    """
    original_state = dict(original_state or {})
    regs = sorted(c.output for c in retimed.dff_cells())
    rng = random.Random(seed)

    def probe(bits: Tuple[int, ...]) -> bool:
        state = dict(zip(regs, bits))
        return check_equivalence(
            original,
            original_state,
            retimed,
            state,
            n_steps=n_steps,
            n_sequences=n_sequences,
            seed=seed,
            skip=skip,
            latency=latency,
        )

    zero = tuple(0 for _ in regs)
    if probe(zero):
        return dict(zip(regs, zero))
    if len(regs) <= max_exhaustive_registers:
        for bits in itertools.product((0, 1), repeat=len(regs)):
            if bits == zero:
                continue
            if probe(bits):
                return dict(zip(regs, bits))
    else:
        for _ in range(n_random_probes):
            bits = tuple(rng.randint(0, 1) for _ in regs)
            if probe(bits):
                return dict(zip(regs, bits))
    raise RetimingError(
        f"no equivalent initial state found for {retimed.name!r} "
        f"({len(regs)} registers); backward-moved registers need reset "
        f"logic or Touati/Brayton justification"
    )
