"""Apply a retiming vector to a netlist, rebuilding register placement.

Given ``ρ`` over the non-register nodes (comb cells, PIs, virtual PO
sinks), every cell-to-cell connection that originally passed ``k``
registers is rebuilt with ``k + ρ(head) − ρ(tail)`` registers.  Registers
on the fan-out of one driver are shared as a single chain (the classic
fan-out register sharing of Leiserson–Saxe), so moving registers across a
high-fanout gate can *reduce* total register count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..errors import IllegalRetimingError, RetimingError
from ..graphs.build import PO_NODE_PREFIX
from ..netlist.cells import Cell
from ..netlist.netlist import Netlist

__all__ = ["RetimedCircuit", "trace_to_driver", "apply_retiming"]


def trace_to_driver(netlist: Netlist, signal: str) -> Tuple[str, int]:
    """Walk backward through registers to the first non-register driver.

    Returns ``(driver_signal, k)`` where ``k`` is the number of registers
    crossed.  Raises :class:`RetimingError` on a pure register ring.
    """
    k = 0
    sig = signal
    limit = len(netlist) + 1
    while True:
        cell = netlist.driver(sig)
        if cell is None or not cell.is_dff:
            return sig, k
        k += 1
        sig = cell.inputs[0]
        limit -= 1
        if limit < 0:
            raise RetimingError(
                f"pure register cycle while tracing {signal!r}"
            )


@dataclass
class RetimedCircuit:
    """Result of :func:`apply_retiming`."""

    netlist: Netlist
    rho: Dict[str, int]
    po_map: Dict[str, str]  # original PO name -> signal in retimed netlist
    n_registers_before: int
    n_registers_after: int

    @property
    def register_delta(self) -> int:
        return self.n_registers_after - self.n_registers_before


def apply_retiming(
    netlist: Netlist,
    rho: Mapping[str, int],
    name: Optional[str] = None,
) -> RetimedCircuit:
    """Build the retimed version of ``netlist`` under ``ρ``.

    ``ρ`` keys are combinational cell names, primary input names, and
    (optionally) virtual PO sinks ``__po__<name>``; missing keys default
    to 0.  All combinational cells keep their names and functions; every
    DFF is rebuilt as part of a fan-out-shared chain named
    ``<driver>__rt<i>``.

    Raises:
        IllegalRetimingError: some connection's register count would go
            negative (Corollary 3 violated).
    """
    out = Netlist(name or f"{netlist.name}_retimed")
    for pi in netlist.inputs:
        out.add_input(pi)

    def lag(node: str) -> int:
        return rho.get(node, 0)

    # desired register count per (reader cell pin) and per PO
    chain_need: Dict[str, int] = {}  # driver -> max registers needed
    pin_regs: Dict[Tuple[str, int], Tuple[str, int]] = {}
    po_regs: Dict[str, Tuple[str, int]] = {}

    for cell in netlist.comb_cells():
        for pin, sig in enumerate(cell.inputs):
            driver, k = trace_to_driver(netlist, sig)
            w_new = k + lag(cell.output) - lag(driver)
            if w_new < 0:
                raise IllegalRetimingError(
                    f"connection {driver} -> {cell.output} would hold "
                    f"{w_new} registers"
                )
            pin_regs[(cell.output, pin)] = (driver, w_new)
            chain_need[driver] = max(chain_need.get(driver, 0), w_new)
    for po in netlist.outputs:
        driver, k = trace_to_driver(netlist, po)
        w_new = k + lag(f"{PO_NODE_PREFIX}{po}") - lag(driver)
        if w_new < 0:
            raise IllegalRetimingError(
                f"output path {driver} -> {po} would hold {w_new} registers"
            )
        po_regs[po] = (driver, w_new)
        chain_need[driver] = max(chain_need.get(driver, 0), w_new)

    # register chains, shared across each driver's fan-out
    chain_sig: Dict[Tuple[str, int], str] = {}
    for driver, need in chain_need.items():
        prev = driver
        chain_sig[(driver, 0)] = driver
        for i in range(1, need + 1):
            reg = f"{driver}__rt{i}"
            out.add_dff(reg, prev)
            chain_sig[(driver, i)] = reg
            prev = reg

    # combinational cells with rewired pins
    for cell in netlist.comb_cells():
        new_inputs = tuple(
            chain_sig[pin_regs[(cell.output, pin)]]
            for pin in range(cell.fanin)
        )
        out.add_cell(Cell(cell.output, cell.gtype, new_inputs))

    po_map: Dict[str, str] = {}
    for po in netlist.outputs:
        sig = chain_sig[po_regs[po]]
        po_map[po] = sig
        if sig not in out.outputs:
            out.add_output(sig)

    out.validate()
    return RetimedCircuit(
        netlist=out,
        rho=dict(rho),
        po_map=po_map,
        n_registers_before=sum(1 for _ in netlist.dff_cells()),
        n_registers_after=sum(1 for _ in out.dff_cells()),
    )
