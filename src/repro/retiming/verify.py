"""Solver-independent verification of a cut-retiming drop set.

The greedy deficit-certificate loop (:mod:`repro.retiming.solve`) and
the min-cost-flow backend (:mod:`repro.retiming.mincost`) may resolve a
register-starved circuit by dropping *different* cut sets — mcf
minimises the total requirement shortfall in one circulation, greedy
drops victims in negative-cycle discovery order.  Demanding
sequence-equality (or even set-equality) between the two drop sets is
therefore the wrong contract, and it is what made ``--retiming-solver
mcf`` unusable inside loops that cross-check results (the differential
fuzzer, and now the anneal refinement tier, which re-retimes after
every accepted move).

What any solver *must* satisfy — regardless of which cuts it chose to
sacrifice — is the **legal minimal cover** contract implemented by
:func:`verify_drop_set`:

* the retiming is legal (``w_ρ(e) ≥ 0`` on every edge);
* ``covered ⊎ dropped ⊎ unconstrained`` partitions the requested cut
  universe (no cut is lost, none double-counted);
* **cover** — every covered cut holds ≥ 1 register on *each* of its
  requirement edges under the solver's own lags;
* **minimal** — no dropped cut is already fully registered under the
  final lags (such a cut could be covered for free, so reporting it
  dropped would overstate the MUXed A_CELL cost).

The mcf backend satisfies minimality by construction (it classifies by
final weight); the greedy loop keeps its negative-cycle victims dropped
even when the final lags incidentally register them, so greedy callers
pass ``minimal=False`` and accept the (sound, conservative) victim set.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..graphs.digraph import CircuitGraph
from ..graphs.paths import WeightedEdge, register_weighted_edges
from .model import retimed_weight

__all__ = ["verify_drop_set"]


def verify_drop_set(
    graph: Optional[CircuitGraph],
    cut_nets: Iterable[str],
    solution,
    edges: Optional[Sequence[WeightedEdge]] = None,
    minimal: bool = True,
) -> Optional[str]:
    """Check ``solution`` against the legal-minimal-cover contract.

    Args:
        graph: circuit graph the solve ran on; may be ``None`` when
            ``edges`` is given (the weighted edge list fully determines
            the constraint system).
        cut_nets: the cut universe that was submitted to the solver.
        solution: a :class:`~repro.retiming.solve.RetimingSolution`.
        edges: precomputed ``register_weighted_edges(graph)`` to reuse
            (the warm-start hook shared with the solvers).
        minimal: also require that no dropped cut is fully registered
            under the final lags.  ``True`` for the mcf backend (holds
            by construction); ``False`` for the greedy reference, whose
            victim set is chosen mid-loop and deliberately kept.

    Returns:
        ``None`` when the contract holds, else a human-readable
        description of the first violation.
    """
    if edges is None:
        if graph is None:
            raise ValueError("verify_drop_set needs a graph or an edge list")
        edges = register_weighted_edges(graph)
    universe = set(cut_nets)
    covered = set(solution.covered_cuts)
    dropped = set(solution.dropped_cuts)
    unconstrained = set(solution.unconstrained_cuts)

    if covered | dropped | unconstrained != universe:
        return "covered/dropped/unconstrained do not partition the universe"
    overlap = (covered & dropped) | (covered & unconstrained) | (
        dropped & unconstrained
    )
    if overlap:
        return f"cut classes overlap on {sorted(overlap)[:4]}"

    try:
        solution.retiming.assert_legal()
    except Exception as exc:
        return f"retiming illegal: {exc}"

    rho = solution.retiming.rho
    # A cut's requirement edges are exactly the weighted edges whose
    # first via net is the cut — the same indexing rule the solvers use.
    fully_registered = {}  # dropped net → every requirement edge ≥ 1 so far
    for e in edges:
        net = e.via_nets[0]
        if net in covered:
            if retimed_weight(e, rho) < 1:
                return (
                    f"cut {net!r} claimed covered but edge "
                    f"{e.tail}->{e.head} holds no register"
                )
        elif net in dropped:
            ok = retimed_weight(e, rho) >= 1
            fully_registered[net] = fully_registered.get(net, True) and ok
        elif net in unconstrained:
            return (
                f"cut {net!r} claimed unconstrained but generates a "
                f"requirement on edge {e.tail}->{e.head}"
            )
    if minimal:
        free = sorted(n for n, sat in fully_registered.items() if sat)
        if free:
            return (
                f"drop set is not minimal: {free[:4]} already hold a "
                "register on every requirement edge under the final lags"
            )
    return None
