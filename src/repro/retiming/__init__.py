"""Legal retiming: algebra, feasibility solving, application, verification."""

from .model import (
    Retiming,
    illegal_edges,
    is_legal,
    retimed_path_registers,
    retimed_weight,
)
from .solve import (
    RetimingSolution,
    bellman_ford_constraints,
    solve_cut_retiming,
    solve_cut_retiming_reference,
)
from .mincost import solve_cut_retiming_mcf
from .verify import verify_drop_set
from .apply import RetimedCircuit, apply_retiming, trace_to_driver
from .legality import connection_deltas, infer_retiming, verify_retiming
from .initial_state import check_equivalence, find_equivalent_initial_state

__all__ = [
    "Retiming",
    "illegal_edges",
    "is_legal",
    "retimed_path_registers",
    "retimed_weight",
    "RetimingSolution",
    "bellman_ford_constraints",
    "solve_cut_retiming",
    "solve_cut_retiming_reference",
    "solve_cut_retiming_mcf",
    "verify_drop_set",
    "RetimedCircuit",
    "apply_retiming",
    "trace_to_driver",
    "connection_deltas",
    "infer_retiming",
    "verify_retiming",
    "check_equivalence",
    "find_equivalent_initial_state",
]
