"""Retiming feasibility solver for cut-net register placement.

Given the cut nets chosen by the partitioner, we want a legal retiming
that leaves **at least one register on every cut net** (so the A_CELL can
be built from a functional DFF instead of a fresh register + MUX).

Each requirement ``w_ρ(e) ≥ r(e)`` with ``w_ρ(e) = w(e) + ρ(head) − ρ(tail)``
is the difference constraint ``ρ(tail) − ρ(head) ≤ w(e) − r(e)``, solvable
by Bellman–Ford on the constraint graph; a negative cycle certifies
infeasibility, and — by Corollary 2 — negative cycles appear exactly when
some circuit cycle is asked to hold more registers than it owns
(``χ(λ) > f(λ)``).  When that happens the solver drops requirements on
the offending cycle one at a time (those cuts keep their MUXed A_CELLs)
until the system is feasible.

The compiled solve path interns the constraint graph to integer arrays
once and treats the round loop as an *incremental* sequence of solves:

* **Cycle-deficit certificate.**  Dropping a victim raises the cost of
  its edges by exactly 1, so the total cost of the previous round's
  negative cycle is trivially maintained across the drop.  While that
  sum stays negative the same cycle is still negative in the new system
  — the round is provably infeasible and the solver skips the
  feasibility attempt entirely, going straight to the canonical replay.
  On the BENCH circuits almost every round is certified this way, which
  removes the dominant cost of the old loop (a full budget-tripping
  SPFA per infeasible round).
* **Vectorized relaxation sweeps.**  When feasibility is genuinely in
  question the round is solved by numpy Jacobi sweeps over the interned
  ``con_u``/``con_v`` arrays (:func:`_jacobi_feasible`); initialising
  every variable to 0 makes the fixed point the shortest-path tree from
  an implicit super-source, which is unique — so the feasible
  assignment is bit-identical to :func:`bellman_ford_constraints`
  regardless of relaxation order.  Without numpy the queue-based
  :func:`_spfa_feasible` is used instead (same fixed point).
* **Canonical replay with in-history fast-forward.**  Infeasible (or
  capped) rounds are resolved by :func:`_bf_rounds`, an interned replay
  of the reference Bellman–Ford that fires the same updates in the same
  order but fast-forwards analytically through the periodic tail — so
  the *canonical* negative cycle (and hence the dropped-cut choice) is
  unchanged, without simulating every dense pass.

An experimental min-cost-flow backend (``solver="mcf"``, see
:mod:`repro.retiming.mincost`) solves the same drop-minimisation as one
min-cost circulation instead of a greedy victim loop; it is *not*
bit-identical to the reference and exists for evaluation.
"""

from __future__ import annotations

from collections import deque

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import RetimingError
from ..graphs.digraph import CircuitGraph
from ..graphs.paths import WeightedEdge, register_weighted_edges
from ..perf import count as perf_count
from .model import Retiming, retimed_weight

try:  # numpy accelerates the feasibility sweeps; everything works without
    import numpy as _np
except Exception:  # pragma: no cover - exercised via the spfa solver path
    _np = None

__all__ = [
    "RetimingSolution",
    "solve_cut_retiming",
    "solve_cut_retiming_reference",
    "bellman_ford_constraints",
]

#: Passes of firing history the replay retains for periodicity detection.
#: Bounds memory on huge SCCs; periods observed on the BENCH circuits are
#: dozens of passes, far below the cap.
_RING_LIMIT = 1024


@dataclass
class RetimingSolution:
    """Result of :func:`solve_cut_retiming`.

    ``covered_cuts`` are cut nets the solved retiming *guarantees* a
    register on; ``dropped_cuts`` sat on register-starved cycles and
    keep their MUXed A_CELLs; ``unconstrained_cuts`` never generated a
    constraint at all (their net heads no register-weighted edge — e.g.
    dangling or mid-via-only nets), so the solver neither covered nor
    dropped them.  They were historically folded into ``covered_cuts``,
    inflating :attr:`coverage`; they are now reported separately.
    """

    retiming: Retiming
    covered_cuts: Set[str]  # cut nets guaranteed a register (A_CELL at 0.9)
    dropped_cuts: Set[str]  # cut nets needing MUXed A_CELLs (2.3)
    iterations: int
    unconstrained_cuts: Set[str] = field(default_factory=set)

    @property
    def coverage(self) -> float:
        """Fraction of *constrained* cuts the retiming covers."""
        total = len(self.covered_cuts) + len(self.dropped_cuts)
        return len(self.covered_cuts) / total if total else 1.0


def bellman_ford_constraints(
    nodes: Sequence[str],
    constraints: Sequence[Tuple[str, str, int]],
) -> Tuple[Optional[Dict[str, int]], Optional[List[int]]]:
    """Solve ``x_u − x_v ≤ c`` difference constraints.

    Args:
        nodes: all variables.
        constraints: triples ``(u, v, c)`` meaning ``x_u − x_v ≤ c``
            (a constraint-graph edge ``v → u`` of weight ``c``).

    Returns:
        ``(solution, None)`` on feasibility (a minimal-violation-free
        assignment), or ``(None, cycle_constraint_indices)`` where the
        indices identify constraints on one negative cycle.
    """
    dist: Dict[str, int] = {n: 0 for n in nodes}
    pred: Dict[str, Optional[int]] = {n: None for n in nodes}  # constraint idx
    n = len(nodes)
    updated_node: Optional[str] = None
    for it in range(n):
        updated_node = None
        for idx, (u, v, c) in enumerate(constraints):
            if dist[v] + c < dist[u]:
                dist[u] = dist[v] + c
                pred[u] = idx
                updated_node = u
        if updated_node is None:
            return dist, None
    # negative cycle: walk predecessors n times to land on the cycle
    node = updated_node
    for _ in range(n):
        idx = pred[node]
        assert idx is not None
        node = constraints[idx][1]
    cycle: List[int] = []
    start = node
    while True:
        idx = pred[node]
        assert idx is not None
        cycle.append(idx)
        node = constraints[idx][1]
        if node == start:
            break
    return None, cycle


def _spfa_feasible(
    n: int,
    adj_start: List[int],
    adj_cons: List[int],
    con_u: List[int],
    cost: List[int],
) -> Tuple[Optional[List[int]], int]:
    """Queue-based relaxation of interned difference constraints.

    ``adj_start``/``adj_cons`` is the CSR list of constraint indices
    whose relax *source* is each node (constraint ``x_u − x_v ≤ c`` is
    the edge ``v → u``); ``con_u[ci]`` is the target and ``cost[ci]``
    the bound.  Returns ``(dist, relaxations)`` at the unique all-zero
    fixed point — the queue can only drain at a genuine fixed point — or
    ``(None, relaxations)`` once the relaxation budget trips.  The
    budget is a cheap *suspicion* bound, not a certificate: feasible
    systems settle in a few sweeps' worth of relaxations, while a
    negative cycle relaxes forever, so tripping early costs nothing but
    a hand-off.  The caller re-checks every trip with :func:`_bf_rounds`
    (exact reference semantics), so false positives only cost time —
    never correctness.
    """
    dist = [0] * n
    inq = bytearray([1]) * n
    queue = deque(range(n))
    relaxations = 0
    budget = 8 * (n + len(cost)) + 64
    while queue:
        v = queue.popleft()
        inq[v] = 0
        dv = dist[v]
        for p in range(adj_start[v], adj_start[v + 1]):
            ci = adj_cons[p]
            nd = dv + cost[ci]
            u = con_u[ci]
            if nd < dist[u]:
                dist[u] = nd
                relaxations += 1
                if relaxations > budget:
                    return None, relaxations
                if not inq[u]:
                    inq[u] = 1
                    queue.append(u)
    return dist, relaxations


def _jacobi_prep(con_u: List[int]):
    """Precompute the segmented-minimum layout for :func:`_jacobi_feasible`.

    Sorts constraints by target node once per solve; the per-round sweep
    then reduces each target's candidate bounds with one
    ``minimum.reduceat``.  Returns ``None`` when numpy is unavailable or
    there are no constraints.
    """
    if _np is None or not con_u:
        return None
    cu = _np.asarray(con_u, dtype=_np.int64)
    order = _np.argsort(cu, kind="stable")
    cu_ord = cu[order]
    seg_nodes, seg_starts = _np.unique(cu_ord, return_index=True)
    return order, seg_nodes, seg_starts


def _jacobi_feasible(
    n: int,
    con_v: List[int],
    cost: List[int],
    prep,
    max_sweeps: int,
) -> Tuple[Optional[List[int]], int]:
    """Vectorized Jacobi sweeps over the interned constraint arrays.

    Each sweep computes every constraint's bound ``dist[v] + c`` in one
    shot and lowers each target to the minimum of its incoming bounds
    (``minimum.reduceat`` over the target-sorted layout from
    :func:`_jacobi_prep`).  A sweep with no change is a fixed point —
    all constraints satisfied — and the all-zero-start fixed point of a
    difference-constraint system is unique, so the result is
    bit-identical to :func:`bellman_ford_constraints` (and to
    :func:`_spfa_feasible`) on feasible systems.  Feasible systems
    converge within ``n`` sweeps (shortest paths have < ``n`` hops);
    returns ``(None, relaxations)`` when ``max_sweeps`` is exhausted —
    the caller resolves those rounds exactly with :func:`_bf_rounds`, so
    a tight cap costs time on deep feasible systems, never correctness.
    """
    np = _np
    order, seg_nodes, seg_starts = prep
    cv_ord = np.asarray(con_v, dtype=np.int64)[order]
    cost_ord = np.asarray(cost, dtype=np.int64)[order]
    dist = np.zeros(n, dtype=np.int64)
    relaxations = 0
    for _ in range(max_sweeps):
        bounds = dist[cv_ord] + cost_ord
        mins = np.minimum.reduceat(bounds, seg_starts)
        old = dist[seg_nodes]
        new = np.minimum(old, mins)
        if np.array_equal(new, old):
            return [int(x) for x in dist], relaxations
        relaxations += int(np.count_nonzero(new < old))
        dist[seg_nodes] = new
    return None, relaxations


def _bf_rounds(
    n: int,
    con_u: List[int],
    con_v: List[int],
    cost: List[int],
    counters: Optional[Dict[str, int]] = None,
) -> Tuple[Optional[List[int]], Optional[List[int]]]:
    """Interned replay of :func:`bellman_ford_constraints`.

    Runs the reference's dense Gauss–Seidel passes on integer arrays —
    same constraint order, same in-pass updates, so ``dist``/``pred``
    evolve identically — but *fast-forwards* through the periodic tail
    that dominates infeasible systems.  Once negative cycles are the
    only thing still relaxing, the firing pattern repeats with some
    period ``P`` (set by how the relaxation wavefront rotates around the
    starved cycles) and every ``dist`` shifts by a constant per-period
    delta.

    Every pass appends its firing sequence and firing deltas to a
    history ring, so when a sequence hash recurs ``P`` passes later the
    replay verifies periodicity *immediately from history* — the two
    most recent periods must fire identical sequences and produce
    identical per-node deltas — instead of simulating 2·``P`` further
    recording passes the way earlier revisions did.  Every scan-time
    value is an affine function (unit coefficient) of the period-start
    ``dist``, so all margins move linearly per period: the replay caps
    the jump at the first period where any margin would change firing
    sign and advances ``dist`` analytically by whole periods.  Fired
    margins come straight from the ring; idle constraints are screened
    by their per-period drift (``Δdist[v] − Δdist[u]``, almost always
    ≥ 0) and only the drifting-negative few have their exact scan-time
    margins reconstructed by replaying one period of firing events.
    ``pred`` and the last-updated node are unchanged across jumped
    periods because every one of them fires the recorded pattern.  The
    final ``pred`` state, the canonical negative cycle walked from it,
    and any feasible assignment are therefore bit-identical to the
    reference without simulating all ``n`` passes.

    ``counters`` (optional) accumulates ``"firings"`` and ``"jumps"``
    for perf accounting.
    """
    m = len(cost)
    dist = [0] * n
    pred = [-1] * n
    updated = -1
    it = 0
    # (v, c, u, idx) per constraint: one flat tuple unpack per scan beats
    # indexed array reads (and enumerate's nested unpack) in the pass
    # loop, which dominates runtime
    quads = list(zip(con_v, cost, con_u, range(m)))
    seq_ring: List[List[int]] = []  # firing index list per retained pass
    mg_ring: List[List[int]] = []  # firing deltas, aligned with seq_ring
    base = 1  # pass number of seq_ring[0]; passes are numbered from 1
    last_seen: Dict[int, int] = {}  # firing-sequence hash → latest pass
    next_try = 0  # skip re-verification until this pass after a miss
    firings = 0
    jumps = 0
    skipped = 0  # passes fast-forwarded rather than simulated
    tracking = True  # ring bookkeeping; disabled when jumping stops paying
    while it < n:
        if tracking and it > n // 2 and jumps == 0:
            # quasi-periodic tail (many interacting cycles, no exact
            # recurrence): drop the per-firing history bookkeeping and
            # finish with bare reference passes
            tracking = False
            seq_ring.clear()
            mg_ring.clear()
            last_seen.clear()
        if not tracking:
            updated = -1
            nfire = 0
            for v, c, u, idx in quads:
                nv = dist[v] + c
                if nv < dist[u]:
                    dist[u] = nv
                    pred[u] = idx
                    nfire += 1
                    updated = u
            it += 1
            if updated < 0:
                if counters is not None:
                    counters["firings"] = counters.get("firings", 0) + firings
                    counters["jumps"] = counters.get("jumps", 0) + jumps
                    counters["passes"] = (
                        counters.get("passes", 0) + (it - skipped)
                    )
                return dist, None
            firings += nfire
            continue
        seq: List[int] = []
        mgs: List[int] = []
        fire = seq.append
        dmg = mgs.append
        updated = -1
        for v, c, u, idx in quads:
            nv = dist[v] + c
            if nv < dist[u]:
                dmg(nv - dist[u])
                dist[u] = nv
                pred[u] = idx
                fire(idx)
                updated = u
        it += 1
        if updated < 0:
            if counters is not None:
                counters["firings"] = counters.get("firings", 0) + firings
                counters["jumps"] = counters.get("jumps", 0) + jumps
                counters["passes"] = counters.get("passes", 0) + (it - skipped)
            return dist, None
        firings += len(seq)
        if len(seq_ring) >= _RING_LIMIT:
            del seq_ring[: _RING_LIMIT // 4]
            del mg_ring[: _RING_LIMIT // 4]
            base += _RING_LIMIT // 4
        seq_ring.append(seq)
        mg_ring.append(mgs)
        h = hash(tuple(seq))
        prev = last_seen.get(h, 0)
        last_seen[h] = it
        if prev < base:
            continue
        period = it - prev
        top = len(seq_ring)  # ring index of pass ``it`` is top − 1
        if 2 * period > top:
            continue  # need two full periods of retained history
        if n - it <= period or it < next_try:
            continue  # nothing worth jumping, or cooling down after a miss
        # verify exact repetition: passes (it−2P, it−P] vs (it−P, it]
        ok = True
        for o in range(1, period + 1):
            if seq_ring[top - o] != seq_ring[top - period - o]:
                ok = False
                break
        if not ok:
            continue  # transient still in window; recurrences keep coming
        delta: Dict[int, int] = {}  # per-node dist delta over last period
        for q in range(top - period, top):
            sq = seq_ring[q]
            mq = mg_ring[q]
            for j in range(len(sq)):
                u = con_u[sq[j]]
                delta[u] = delta.get(u, 0) + mq[j]
        prev_delta: Dict[int, int] = {}
        for q in range(top - 2 * period, top - period):
            sq = seq_ring[q]
            mq = mg_ring[q]
            for j in range(len(sq)):
                u = con_u[sq[j]]
                prev_delta[u] = prev_delta.get(u, 0) + mq[j]
        if delta != prev_delta:
            next_try = it + period
            continue
        # margins move linearly per period: jump whole periods to just
        # before the first firing-sign flip (or to pass n)
        t = (n - it) // period
        # (A) fired constraints: ring margins, aligned by the verified
        # identical sequences; a rising margin stops firing at mg+t·d ≥ 0
        for o in range(1, period + 1):
            if t <= 0:
                break
            lm = mg_ring[top - o]
            pm = mg_ring[top - period - o]
            if lm == pm:  # C-speed: no fired margin moved at this offset
                continue
            for mg, p in zip(lm, pm):
                if mg > p:
                    safe = (-mg - 1) // (mg - p)
                    if safe < t:
                        t = safe
        # (B) idle constraints: only those whose margin drifts negative
        # (delta[v] − delta[u] < 0) can start firing; reconstruct their
        # exact scan-time margins by replaying the period's firing events
        if t > 0 and delta:
            cands: List[Tuple[int, int]] = []
            for j in range(m):
                d = delta.get(con_v[j], 0) - delta.get(con_u[j], 0)
                if d < 0:
                    cands.append((j, d))
            if cands:
                t = _idle_flip_cap(
                    t, period, top, seq_ring, mg_ring,
                    dist, delta, cands, con_u, con_v, cost,
                )
        if t > 0:
            for x, d in delta.items():
                dist[x] += t * d
            it += t * period
            skipped += t * period
            jumps += 1
            seq_ring.clear()
            mg_ring.clear()
            base = it + 1
            last_seen.clear()
            next_try = 0
        else:
            next_try = it + period
    # negative cycle: walk predecessors n times to land on the cycle
    if counters is not None:
        counters["firings"] = counters.get("firings", 0) + firings
        counters["jumps"] = counters.get("jumps", 0) + jumps
        counters["passes"] = counters.get("passes", 0) + (it - skipped)
    node = updated
    for _ in range(n):
        node = con_v[pred[node]]
    cycle: List[int] = []
    start_node = node
    while True:
        idx = pred[node]
        cycle.append(idx)
        node = con_v[idx]
        if node == start_node:
            break
    return None, cycle


def _idle_flip_cap(
    t: int,
    period: int,
    top: int,
    seq_ring: List[List[int]],
    mg_ring: List[List[int]],
    dist: List[int],
    delta: Dict[int, int],
    cands: List[Tuple[int, int]],
    con_u: List[int],
    con_v: List[int],
    cost: List[int],
) -> int:
    """Cap the period jump at the first idle-constraint sign flip.

    ``cands`` holds ``(constraint, drift)`` pairs with negative
    per-period margin drift.  Walks the last period's passes once,
    merging the (index-ordered) firing events with the (index-ordered)
    candidates, so each candidate's *scan-time* margin — the value the
    dense reference would have computed mid-pass — is reconstructed
    exactly.  An idle margin ``mg ≥ 0`` drifting by ``d < 0`` per period
    first fires after ``mg // (−d)`` more periods.  Only nodes in
    ``delta`` ever move during a verified period, so all other operands
    read the (end-of-period) ``dist`` directly.
    """
    cur = {x: dist[x] - d for x, d in delta.items()}  # period-start values
    for q in range(top - period, top):
        fired = seq_ring[q]
        margins = mg_ring[q]
        fired_set = set(fired)
        ei = 0
        ne = len(fired)
        for j, d in cands:
            while ei < ne and fired[ei] < j:
                u = con_u[fired[ei]]
                cur[u] = cur[u] + margins[ei]
                ei += 1
            if j in fired_set:
                continue  # fired offsets are handled from the ring
            v = con_v[j]
            u = con_u[j]
            mg = (
                (cur[v] if v in cur else dist[v])
                + cost[j]
                - (cur[u] if u in cur else dist[u])
            )
            safe = mg // (-d)
            if safe < t:
                t = safe
                if t <= 0:
                    return 0
        while ei < ne:
            u = con_u[fired[ei]]
            cur[u] = cur[u] + margins[ei]
            ei += 1
    return t


def solve_cut_retiming(
    graph: CircuitGraph,
    cut_nets: Iterable[str],
    edges: Optional[Sequence[WeightedEdge]] = None,
    max_iterations: int = 100000,
    pin_io: bool = False,
    use_compiled: bool = True,
    solver: str = "auto",
) -> RetimingSolution:
    """Find a legal retiming registering as many cut nets as possible.

    Args:
        graph: the circuit graph (used to collapse registers into edge
            weights unless ``edges`` is given).
        cut_nets: nets that should carry a register after retiming.
        edges: precomputed register-weighted edges (performance hook).
        pin_io: force every primary input and virtual PO sink to share one
            lag (the Leiserson–Saxe host condition), so the retimed
            circuit is cycle-accurate I/O equivalent to the original.
            The paper's accounting leaves this off — it accepts latency
            shifts on input/output paths in exchange for covering more
            cuts (Eq. 1 "registers can be added arbitrarily").
        use_compiled: solve each round over the interned edge arrays with
            certificate-skipped warm-started rounds (default); ``False``
            runs the reference dense Bellman–Ford every round.  Results
            (lags, covered/dropped cuts, iteration count) are
            bit-identical.
        solver: feasibility backend for the compiled path.  ``"auto"``
            picks the vectorized Jacobi sweeps when numpy is available
            and SPFA otherwise; ``"jacobi"``/``"spfa"`` force one;
            ``"reference"`` is an alias for ``use_compiled=False``;
            ``"mcf"`` routes to the experimental min-cost-flow backend
            (:func:`repro.retiming.mincost.solve_cut_retiming_mcf`),
            which minimises total requirement shortfall in one
            circulation and is *not* bit-identical to the greedy
            reference drop order.

    Returns:
        A :class:`RetimingSolution`; its ``retiming`` is legal, every
        edge carrying a covered cut holds ≥ 1 register, and dropped cuts
        are exactly those whose requirements sat on register-starved (or,
        with ``pin_io``, latency-pinned) paths.  Cut nets that never
        generate a constraint are reported in ``unconstrained_cuts``.
    """
    from ..graphs.build import is_po_node

    if solver not in ("auto", "jacobi", "spfa", "reference", "mcf"):
        raise ValueError(f"unknown retiming solver {solver!r}")
    if solver == "mcf":
        from .mincost import solve_cut_retiming_mcf

        return solve_cut_retiming_mcf(
            graph,
            cut_nets,
            edges=edges,
            max_iterations=max_iterations,
            pin_io=pin_io,
        )
    if solver == "reference":
        use_compiled = False
    if solver == "jacobi" and _np is None:  # pragma: no cover - env guard
        raise RetimingError(
            "solver='jacobi' requires numpy; use 'auto' or 'spfa'"
        )

    if edges is None:
        edges = register_weighted_edges(graph)
    cut_set = set(cut_nets)
    nodes = sorted({e.tail for e in edges} | {e.head for e in edges})
    io_constraints: List[Tuple[str, str, int]] = []
    if pin_io:
        host = "__host__"
        while host in nodes:  # pragma: no cover - pathological name clash
            host += "_"
        nodes.append(host)
        from ..graphs.digraph import NodeKind

        for n in nodes[:-1]:
            is_io = is_po_node(n) or (
                graph.has_node(n) and graph.kind(n) is NodeKind.INPUT
            )
            if is_io:
                io_constraints.append((n, host, 0))
                io_constraints.append((host, n, 0))

    # requirement per edge: 1 when the edge's first via-net is a cut
    required: Dict[int, int] = {}
    cut_edges: Dict[str, List[int]] = {}
    for i, e in enumerate(edges):
        first = e.via_nets[0]
        if first in cut_set:
            required[i] = 1
            cut_edges.setdefault(first, []).append(i)

    # interned constraint graph, built once: tails/heads are fixed across
    # rounds, only the per-edge costs change when a requirement is dropped
    n_vars = len(nodes)
    node_idx = {name: i for i, name in enumerate(nodes)}
    con_u: List[int] = []  # constraint target (the u of x_u − x_v ≤ c)
    con_v: List[int] = []  # constraint relax source
    for e in edges:
        con_u.append(node_idx[e.tail])
        con_v.append(node_idx[e.head])
    for u, v, _c in io_constraints:
        con_u.append(node_idx[u])
        con_v.append(node_idx[v])
    by_src: List[List[int]] = [[] for _ in range(n_vars)]
    for ci, v in enumerate(con_v):
        by_src[v].append(ci)
    adj_start: List[int] = [0] * (n_vars + 1)
    adj_cons: List[int] = []
    for v in range(n_vars):
        adj_cons.extend(by_src[v])
        adj_start[v + 1] = len(adj_cons)
    io_costs = [c for _u, _v, c in io_constraints]

    # incremental cost array: rebuilt never, bumped by 1 per dropped edge
    cost = [e.weight - required.get(i, 0) for i, e in enumerate(edges)]
    cost += io_costs
    jprep = None
    if use_compiled and solver in ("auto", "jacobi"):
        jprep = _jacobi_prep(con_u)
    jacobi_cap = min(n_vars + 1, 257)

    dropped: Set[str] = set()
    iterations = 0
    total_relaxations = 0
    cert_skips = 0
    skip_feasible = False  # certificate: last cycle still provably negative
    replay_counters: Dict[str, int] = {"firings": 0, "jumps": 0}
    while True:
        iterations += 1
        if iterations > max_iterations:
            raise RetimingError(
                f"cut-retiming failed to converge after {iterations - 1} "
                f"rounds: {len(dropped)} cuts dropped so far, "
                f"{len(required)} edge requirements remaining"
            )
        if use_compiled:
            dist = None
            if skip_feasible:
                cert_skips += 1
            else:
                if jprep is not None:
                    dist, relaxations = _jacobi_feasible(
                        n_vars, con_v, cost, jprep, jacobi_cap
                    )
                else:
                    dist, relaxations = _spfa_feasible(
                        n_vars, adj_start, adj_cons, con_u, cost
                    )
                total_relaxations += relaxations
                if dist is not None:
                    rho = dict(zip(nodes, dist))
                    break
            # infeasible (certified or suspected): re-derive the
            # *canonical* negative cycle via the sparse reference replay,
            # so the victim choice matches bellman_ford_constraints
            # exactly; if a feasibility cap tripped on a feasible system
            # the replay's assignment is that same unique fixed point
            dist, cycle = _bf_rounds(
                n_vars, con_u, con_v, cost, counters=replay_counters
            )
            if dist is not None:
                rho = dict(zip(nodes, dist))
                break
        else:
            constraints = [
                (e.tail, e.head, e.weight - required.get(i, 0))
                for i, e in enumerate(edges)
            ] + io_constraints
            solution, cycle = bellman_ford_constraints(nodes, constraints)
            if solution is not None:
                rho = solution
                break
        # drop one required cut on the offending cycle
        req_on_cycle = [i for i in cycle if required.get(i, 0) > 0]
        if not req_on_cycle:
            raise RetimingError(
                "negative cycle without register requirements: the circuit "
                "has a combinational cycle or inconsistent edge weights"
            )
        victim_edge = req_on_cycle[0]
        victim_net = edges[victim_edge].via_nets[0]
        dropped.add(victim_net)
        victims = [i for i in cut_edges.get(victim_net, ()) if i in required]
        if use_compiled:
            # cycle-deficit certificate: the drop raises each victim
            # edge's cost by 1, so the cycle's new total is its old total
            # plus the overlap — still negative means the next round is
            # provably infeasible and can skip the feasibility attempt
            deficit = sum(cost[i] for i in cycle)
            cyc_set = set(cycle)
            deficit += sum(1 for i in victims if i in cyc_set)
            skip_feasible = deficit < 0
            for i in victims:
                cost[i] += 1
        for i in victims:
            required.pop(i, None)

    total_relaxations += replay_counters["firings"]
    perf_count("bf_relaxations", total_relaxations)
    perf_count("retiming_rounds", iterations)
    perf_count("retiming_cert_skips", cert_skips)
    perf_count("retiming_replay_jumps", replay_counters["jumps"])
    retiming = Retiming(edges=tuple(edges), rho=rho)
    retiming.assert_legal()
    covered: Set[str] = set()
    for net, idxs in cut_edges.items():
        if net in dropped:
            continue
        if all(retimed_weight(edges[i], rho) >= 1 for i in idxs):
            covered.add(net)
        else:  # pragma: no cover - defensive; solver should guarantee this
            dropped.add(net)
    # cuts whose net never appears as a via head (e.g. dangling) generated
    # no constraint: neither covered nor dropped — reported separately
    unconstrained = cut_set - covered - dropped
    return RetimingSolution(
        retiming=retiming,
        covered_cuts=covered,
        dropped_cuts=dropped,
        iterations=iterations,
        unconstrained_cuts=unconstrained,
    )


def solve_cut_retiming_reference(
    graph: CircuitGraph,
    cut_nets: Iterable[str],
    edges: Optional[Sequence[WeightedEdge]] = None,
    max_iterations: int = 100000,
    pin_io: bool = False,
) -> RetimingSolution:
    """Reference twin of :func:`solve_cut_retiming`.

    Solves every round with the dense :func:`bellman_ford_constraints`
    instead of the certificate-skipped incremental rounds; results are
    bit-identical (the kernel-equivalence suite asserts this end to end).
    """
    return solve_cut_retiming(
        graph,
        cut_nets,
        edges=edges,
        max_iterations=max_iterations,
        pin_io=pin_io,
        use_compiled=False,
    )
