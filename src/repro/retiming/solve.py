"""Retiming feasibility solver for cut-net register placement.

Given the cut nets chosen by the partitioner, we want a legal retiming
that leaves **at least one register on every cut net** (so the A_CELL can
be built from a functional DFF instead of a fresh register + MUX).

Each requirement ``w_ρ(e) ≥ r(e)`` with ``w_ρ(e) = w(e) + ρ(head) − ρ(tail)``
is the difference constraint ``ρ(tail) − ρ(head) ≤ w(e) − r(e)``, solvable
by Bellman–Ford on the constraint graph; a negative cycle certifies
infeasibility, and — by Corollary 2 — negative cycles appear exactly when
some circuit cycle is asked to hold more registers than it owns
(``χ(λ) > f(λ)``).  When that happens the solver drops requirements on
the offending cycle one at a time (those cuts keep their MUXed A_CELLs)
until the system is feasible.

The default solve path interns the constraint graph to integer arrays
once and runs a queue-based (SPFA-style) relaxation that terminates as
soon as the queue drains, instead of the reference's dense
O(V·E) passes.  Initialising every variable to 0 makes the fixed point
the shortest-path tree from an implicit super-source, which is unique —
so the feasible assignment is bit-identical to
:func:`bellman_ford_constraints` regardless of relaxation order.  When
the relaxation budget trips (suspected negative cycle), the round is
re-solved by :func:`_bf_rounds`, an interned replay of the reference
Bellman–Ford that fires the same updates in the same order but
fast-forwards analytically through the periodic tail of infeasible
systems — so the *canonical* negative cycle (and hence the dropped-cut
choice) is also unchanged, without simulating every dense pass.
"""

from __future__ import annotations

from array import array
from collections import deque

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import RetimingError
from ..graphs.digraph import CircuitGraph
from ..graphs.paths import WeightedEdge, register_weighted_edges
from ..perf import count as perf_count
from .model import Retiming, retimed_weight

__all__ = [
    "RetimingSolution",
    "solve_cut_retiming",
    "solve_cut_retiming_reference",
    "bellman_ford_constraints",
]


@dataclass
class RetimingSolution:
    """Result of :func:`solve_cut_retiming`."""

    retiming: Retiming
    covered_cuts: Set[str]  # cut nets guaranteed a register (A_CELL at 0.9)
    dropped_cuts: Set[str]  # cut nets needing MUXed A_CELLs (2.3)
    iterations: int

    @property
    def coverage(self) -> float:
        total = len(self.covered_cuts) + len(self.dropped_cuts)
        return len(self.covered_cuts) / total if total else 1.0


def bellman_ford_constraints(
    nodes: Sequence[str],
    constraints: Sequence[Tuple[str, str, int]],
) -> Tuple[Optional[Dict[str, int]], Optional[List[int]]]:
    """Solve ``x_u − x_v ≤ c`` difference constraints.

    Args:
        nodes: all variables.
        constraints: triples ``(u, v, c)`` meaning ``x_u − x_v ≤ c``
            (a constraint-graph edge ``v → u`` of weight ``c``).

    Returns:
        ``(solution, None)`` on feasibility (a minimal-violation-free
        assignment), or ``(None, cycle_constraint_indices)`` where the
        indices identify constraints on one negative cycle.
    """
    dist: Dict[str, int] = {n: 0 for n in nodes}
    pred: Dict[str, Optional[int]] = {n: None for n in nodes}  # constraint idx
    n = len(nodes)
    updated_node: Optional[str] = None
    for it in range(n):
        updated_node = None
        for idx, (u, v, c) in enumerate(constraints):
            if dist[v] + c < dist[u]:
                dist[u] = dist[v] + c
                pred[u] = idx
                updated_node = u
        if updated_node is None:
            return dist, None
    # negative cycle: walk predecessors n times to land on the cycle
    node = updated_node
    for _ in range(n):
        idx = pred[node]
        assert idx is not None
        node = constraints[idx][1]
    cycle: List[int] = []
    start = node
    while True:
        idx = pred[node]
        assert idx is not None
        cycle.append(idx)
        node = constraints[idx][1]
        if node == start:
            break
    return None, cycle


def _spfa_feasible(
    n: int,
    adj_start: List[int],
    adj_cons: List[int],
    con_u: List[int],
    cost: List[int],
) -> Tuple[Optional[List[int]], int]:
    """Queue-based relaxation of interned difference constraints.

    ``adj_start``/``adj_cons`` is the CSR list of constraint indices
    whose relax *source* is each node (constraint ``x_u − x_v ≤ c`` is
    the edge ``v → u``); ``con_u[ci]`` is the target and ``cost[ci]``
    the bound.  Returns ``(dist, relaxations)`` at the unique all-zero
    fixed point — the queue can only drain at a genuine fixed point — or
    ``(None, relaxations)`` once the relaxation budget trips.  The
    budget is a cheap *suspicion* bound, not a certificate: feasible
    systems settle in a few sweeps' worth of relaxations, while a
    negative cycle relaxes forever, so tripping early costs nothing but
    a hand-off.  The caller re-checks every trip with :func:`_bf_rounds`
    (exact reference semantics), so false positives only cost time —
    never correctness.
    """
    dist = [0] * n
    inq = bytearray([1]) * n
    queue = deque(range(n))
    relaxations = 0
    budget = 8 * (n + len(cost)) + 64
    while queue:
        v = queue.popleft()
        inq[v] = 0
        dv = dist[v]
        for p in range(adj_start[v], adj_start[v + 1]):
            ci = adj_cons[p]
            nd = dv + cost[ci]
            u = con_u[ci]
            if nd < dist[u]:
                dist[u] = nd
                relaxations += 1
                if relaxations > budget:
                    return None, relaxations
                if not inq[u]:
                    inq[u] = 1
                    queue.append(u)
    return dist, relaxations


def _bf_rounds(
    n: int,
    con_u: List[int],
    con_v: List[int],
    cost: List[int],
) -> Tuple[Optional[List[int]], Optional[List[int]]]:
    """Interned replay of :func:`bellman_ford_constraints`.

    Runs the reference's dense Gauss–Seidel passes on integer arrays —
    same constraint order, same in-pass updates, so ``dist``/``pred``
    evolve identically — but *fast-forwards* through the periodic tail
    that dominates infeasible systems.  Once negative cycles are the
    only thing still relaxing, the firing pattern repeats with some
    period ``P`` (set by how the relaxation wavefront rotates around
    the starved cycles; dozens to hundreds of passes on big ISCAS
    SCCs) and every ``dist`` shifts by a constant per-period delta.

    Detection is two-phase so normal passes stay lean.  Each pass
    hashes its firing sequence; when a hash recurs ``P`` passes later,
    the replay records the next ``2P`` passes (sequences, scan-time
    margins, and ``dist`` snapshots at the three period boundaries)
    and verifies exact periodicity: the two recorded periods must fire
    identical sequences and produce identical period deltas.  Every
    scan-time value is then an affine function (unit coefficient) of
    the period-start ``dist``, so all margins move linearly per period
    — the replay computes the first period at which any margin would
    change firing sign and jumps whole periods up to it (or to pass
    ``n``) by advancing ``dist`` analytically.  ``pred`` and the
    last-updated node are unchanged across jumped periods because
    every one of them fires the recorded pattern.  The final ``pred``
    state, the canonical negative cycle walked from it, and any
    feasible assignment are therefore bit-identical to the reference
    without simulating all ``n`` passes.
    """
    m = len(cost)
    dist = [0] * n
    pred = [-1] * n
    updated = -1
    it = 0
    # (v, c, u) per constraint: one tuple unpack per scan beats three
    # indexed array reads in the pass loop, which dominates runtime
    triples = list(zip(con_v, cost, con_u))
    hashes: List[int] = []  # firing-sequence hash per simulated pass
    last_seen: Dict[int, int] = {}  # sequence hash → latest pass index
    rec = None  # (period, seqs, margins_rows, snap_start, snap_mid)
    while it < n:
        seq: List[int] = []
        updated = -1
        if rec is None:
            for idx, (v, c, u) in enumerate(triples):
                mg = dist[v] + c - dist[u]
                if mg < 0:
                    dist[u] += mg
                    pred[u] = idx
                    seq.append(idx)
                    updated = u
        else:
            margins = [0] * m
            for idx, (v, c, u) in enumerate(triples):
                mg = dist[v] + c - dist[u]
                margins[idx] = mg
                if mg < 0:
                    dist[u] += mg
                    pred[u] = idx
                    seq.append(idx)
                    updated = u
        it += 1
        if updated < 0:
            return dist, None
        h = hash(tuple(seq))
        hashes.append(h)
        if rec is None:
            prev_it = last_seen.get(h)
            last_seen[h] = it
            if prev_it is None:
                continue
            period = it - prev_it
            if it + 2 * period >= n:
                continue  # cheaper to finish densely than to verify
            rec = (period, [], [], dist[:], None)
            continue
        period, seqs, margin_rows, snap_start, snap_mid = rec
        if hashes[-1] != hashes[-1 - period]:
            rec = None  # not periodic after all (or a flip landed)
            last_seen[h] = it
            continue
        seqs.append(seq)
        margin_rows.append(array("q", margins))
        if len(seqs) == period:
            rec = (period, seqs, margin_rows, snap_start, dist[:])
            continue
        if len(seqs) < 2 * period:
            continue
        # two full periods recorded: verify exact repetition
        ok = all(seqs[o] == seqs[o + period] for o in range(period))
        if ok:
            for i in range(n):
                if dist[i] - snap_mid[i] != snap_mid[i] - snap_start[i]:
                    ok = False
                    break
        if not ok:
            rec = None
            last_seen[h] = it
            continue
        # margins move linearly per period: jump whole periods to just
        # before the first firing-sign flip (or to pass n)
        t = (n - it) // period
        for lmar, pmar in zip(margin_rows[period:], margin_rows[:period]):
            if t <= 0:
                break
            if lmar == pmar:  # C-speed: no margin moved at this offset
                continue
            for mg, pm in zip(lmar, pmar):
                if mg < 0:
                    if mg > pm:  # d > 0: fires now, stops at mg + t*d >= 0
                        safe = (-mg - 1) // (mg - pm)
                        if safe < t:
                            t = safe
                elif mg < pm:  # d < 0: idle now, starts at mg + t*d < 0
                    safe = mg // (pm - mg)
                    if safe < t:
                        t = safe
        if t > 0:
            for i in range(n):
                dist[i] += t * (dist[i] - snap_mid[i])
            it += t * period
            hashes.clear()
            last_seen.clear()
        rec = None
    # negative cycle: walk predecessors n times to land on the cycle
    node = updated
    for _ in range(n):
        node = con_v[pred[node]]
    cycle: List[int] = []
    start_node = node
    while True:
        idx = pred[node]
        cycle.append(idx)
        node = con_v[idx]
        if node == start_node:
            break
    return None, cycle


def solve_cut_retiming(
    graph: CircuitGraph,
    cut_nets: Iterable[str],
    edges: Optional[Sequence[WeightedEdge]] = None,
    max_iterations: int = 100000,
    pin_io: bool = False,
    use_compiled: bool = True,
) -> RetimingSolution:
    """Find a legal retiming registering as many cut nets as possible.

    Args:
        graph: the circuit graph (used to collapse registers into edge
            weights unless ``edges`` is given).
        cut_nets: nets that should carry a register after retiming.
        edges: precomputed register-weighted edges (performance hook).
        pin_io: force every primary input and virtual PO sink to share one
            lag (the Leiserson–Saxe host condition), so the retimed
            circuit is cycle-accurate I/O equivalent to the original.
            The paper's accounting leaves this off — it accepts latency
            shifts on input/output paths in exchange for covering more
            cuts (Eq. 1 "registers can be added arbitrarily").
        use_compiled: solve each round with the early-terminating SPFA
            over interned edge arrays (default); ``False`` runs the
            reference dense Bellman–Ford every round.  Results (lags,
            covered/dropped cuts, iteration count) are bit-identical.

    Returns:
        A :class:`RetimingSolution`; its ``retiming`` is legal, every
        edge carrying a covered cut holds ≥ 1 register, and dropped cuts
        are exactly those whose requirements sat on register-starved (or,
        with ``pin_io``, latency-pinned) paths.
    """
    from ..graphs.build import is_po_node

    if edges is None:
        edges = register_weighted_edges(graph)
    cut_set = set(cut_nets)
    nodes = sorted({e.tail for e in edges} | {e.head for e in edges})
    io_constraints: List[Tuple[str, str, int]] = []
    if pin_io:
        host = "__host__"
        while host in nodes:  # pragma: no cover - pathological name clash
            host += "_"
        nodes.append(host)
        from ..graphs.digraph import NodeKind

        for n in nodes[:-1]:
            is_io = is_po_node(n) or (
                graph.has_node(n) and graph.kind(n) is NodeKind.INPUT
            )
            if is_io:
                io_constraints.append((n, host, 0))
                io_constraints.append((host, n, 0))

    # requirement per edge: 1 when the edge's first via-net is a cut
    required: Dict[int, int] = {}
    cut_edges: Dict[str, List[int]] = {}
    for i, e in enumerate(edges):
        first = e.via_nets[0]
        if first in cut_set:
            required[i] = 1
            cut_edges.setdefault(first, []).append(i)

    # interned constraint graph, built once: tails/heads are fixed across
    # rounds, only the per-edge costs change when a requirement is dropped
    n_vars = len(nodes)
    node_idx = {name: i for i, name in enumerate(nodes)}
    con_u: List[int] = []  # constraint target (the u of x_u − x_v ≤ c)
    con_v: List[int] = []  # constraint relax source
    for e in edges:
        con_u.append(node_idx[e.tail])
        con_v.append(node_idx[e.head])
    for u, v, _c in io_constraints:
        con_u.append(node_idx[u])
        con_v.append(node_idx[v])
    by_src: List[List[int]] = [[] for _ in range(n_vars)]
    for ci, v in enumerate(con_v):
        by_src[v].append(ci)
    adj_start: List[int] = [0] * (n_vars + 1)
    adj_cons: List[int] = []
    for v in range(n_vars):
        adj_cons.extend(by_src[v])
        adj_start[v + 1] = len(adj_cons)
    io_costs = [c for _u, _v, c in io_constraints]

    dropped: Set[str] = set()
    iterations = 0
    total_relaxations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive
            raise RetimingError("cut-retiming relaxation failed to converge")
        if use_compiled:
            cost = [
                e.weight - required.get(i, 0) for i, e in enumerate(edges)
            ] + io_costs
            dist, relaxations = _spfa_feasible(
                n_vars, adj_start, adj_cons, con_u, cost
            )
            total_relaxations += relaxations
            if dist is not None:
                rho = dict(zip(nodes, dist))
                break
            # likely infeasible: re-derive the *canonical* negative cycle
            # via the sparse reference replay, so the victim choice
            # matches bellman_ford_constraints exactly; if the budget
            # tripped on a feasible system the replay's assignment is
            # that same unique fixed point
            dist, cycle = _bf_rounds(n_vars, con_u, con_v, cost)
            if dist is not None:
                rho = dict(zip(nodes, dist))
                break
        else:
            constraints = [
                (e.tail, e.head, e.weight - required.get(i, 0))
                for i, e in enumerate(edges)
            ] + io_constraints
            solution, cycle = bellman_ford_constraints(nodes, constraints)
            if solution is not None:
                rho = solution
                break
        # drop one required cut on the offending cycle
        req_on_cycle = [i for i in cycle if required.get(i, 0) > 0]
        if not req_on_cycle:
            raise RetimingError(
                "negative cycle without register requirements: the circuit "
                "has a combinational cycle or inconsistent edge weights"
            )
        victim_edge = req_on_cycle[0]
        victim_net = edges[victim_edge].via_nets[0]
        dropped.add(victim_net)
        for i in cut_edges.get(victim_net, ()):
            required.pop(i, None)

    perf_count("bf_relaxations", total_relaxations)
    retiming = Retiming(edges=tuple(edges), rho=rho)
    retiming.assert_legal()
    covered: Set[str] = set()
    for net, idxs in cut_edges.items():
        if net in dropped:
            continue
        if all(retimed_weight(edges[i], rho) >= 1 for i in idxs):
            covered.add(net)
        else:  # pragma: no cover - defensive; solver should guarantee this
            dropped.add(net)
    # cuts whose net never appears as a via head (e.g. dangling) count covered
    for net in cut_set - covered - dropped:
        covered.add(net)
    return RetimingSolution(
        retiming=retiming,
        covered_cuts=covered,
        dropped_cuts=dropped,
        iterations=iterations,
    )


def solve_cut_retiming_reference(
    graph: CircuitGraph,
    cut_nets: Iterable[str],
    edges: Optional[Sequence[WeightedEdge]] = None,
    max_iterations: int = 100000,
    pin_io: bool = False,
) -> RetimingSolution:
    """Reference twin of :func:`solve_cut_retiming`.

    Solves every round with the dense :func:`bellman_ford_constraints`
    instead of the interned SPFA relaxation; results are bit-identical
    (the kernel-equivalence suite asserts this end to end).
    """
    return solve_cut_retiming(
        graph,
        cut_nets,
        edges=edges,
        max_iterations=max_iterations,
        pin_io=pin_io,
        use_compiled=False,
    )
