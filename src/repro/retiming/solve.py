"""Retiming feasibility solver for cut-net register placement.

Given the cut nets chosen by the partitioner, we want a legal retiming
that leaves **at least one register on every cut net** (so the A_CELL can
be built from a functional DFF instead of a fresh register + MUX).

Each requirement ``w_ρ(e) ≥ r(e)`` with ``w_ρ(e) = w(e) + ρ(head) − ρ(tail)``
is the difference constraint ``ρ(tail) − ρ(head) ≤ w(e) − r(e)``, solvable
by Bellman–Ford on the constraint graph; a negative cycle certifies
infeasibility, and — by Corollary 2 — negative cycles appear exactly when
some circuit cycle is asked to hold more registers than it owns
(``χ(λ) > f(λ)``).  When that happens the solver drops requirements on
the offending cycle one at a time (those cuts keep their MUXed A_CELLs)
until the system is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import RetimingError
from ..graphs.digraph import CircuitGraph
from ..graphs.paths import WeightedEdge, register_weighted_edges
from .model import Retiming, retimed_weight

__all__ = ["RetimingSolution", "solve_cut_retiming", "bellman_ford_constraints"]


@dataclass
class RetimingSolution:
    """Result of :func:`solve_cut_retiming`."""

    retiming: Retiming
    covered_cuts: Set[str]  # cut nets guaranteed a register (A_CELL at 0.9)
    dropped_cuts: Set[str]  # cut nets needing MUXed A_CELLs (2.3)
    iterations: int

    @property
    def coverage(self) -> float:
        total = len(self.covered_cuts) + len(self.dropped_cuts)
        return len(self.covered_cuts) / total if total else 1.0


def bellman_ford_constraints(
    nodes: Sequence[str],
    constraints: Sequence[Tuple[str, str, int]],
) -> Tuple[Optional[Dict[str, int]], Optional[List[int]]]:
    """Solve ``x_u − x_v ≤ c`` difference constraints.

    Args:
        nodes: all variables.
        constraints: triples ``(u, v, c)`` meaning ``x_u − x_v ≤ c``
            (a constraint-graph edge ``v → u`` of weight ``c``).

    Returns:
        ``(solution, None)`` on feasibility (a minimal-violation-free
        assignment), or ``(None, cycle_constraint_indices)`` where the
        indices identify constraints on one negative cycle.
    """
    dist: Dict[str, int] = {n: 0 for n in nodes}
    pred: Dict[str, Optional[int]] = {n: None for n in nodes}  # constraint idx
    n = len(nodes)
    updated_node: Optional[str] = None
    for it in range(n):
        updated_node = None
        for idx, (u, v, c) in enumerate(constraints):
            if dist[v] + c < dist[u]:
                dist[u] = dist[v] + c
                pred[u] = idx
                updated_node = u
        if updated_node is None:
            return dist, None
    # negative cycle: walk predecessors n times to land on the cycle
    node = updated_node
    for _ in range(n):
        idx = pred[node]
        assert idx is not None
        node = constraints[idx][1]
    cycle: List[int] = []
    start = node
    while True:
        idx = pred[node]
        assert idx is not None
        cycle.append(idx)
        node = constraints[idx][1]
        if node == start:
            break
    return None, cycle


def solve_cut_retiming(
    graph: CircuitGraph,
    cut_nets: Iterable[str],
    edges: Optional[Sequence[WeightedEdge]] = None,
    max_iterations: int = 100000,
    pin_io: bool = False,
) -> RetimingSolution:
    """Find a legal retiming registering as many cut nets as possible.

    Args:
        graph: the circuit graph (used to collapse registers into edge
            weights unless ``edges`` is given).
        cut_nets: nets that should carry a register after retiming.
        edges: precomputed register-weighted edges (performance hook).
        pin_io: force every primary input and virtual PO sink to share one
            lag (the Leiserson–Saxe host condition), so the retimed
            circuit is cycle-accurate I/O equivalent to the original.
            The paper's accounting leaves this off — it accepts latency
            shifts on input/output paths in exchange for covering more
            cuts (Eq. 1 "registers can be added arbitrarily").

    Returns:
        A :class:`RetimingSolution`; its ``retiming`` is legal, every
        edge carrying a covered cut holds ≥ 1 register, and dropped cuts
        are exactly those whose requirements sat on register-starved (or,
        with ``pin_io``, latency-pinned) paths.
    """
    from ..graphs.build import is_po_node

    if edges is None:
        edges = register_weighted_edges(graph)
    cut_set = set(cut_nets)
    nodes = sorted({e.tail for e in edges} | {e.head for e in edges})
    io_constraints: List[Tuple[str, str, int]] = []
    if pin_io:
        host = "__host__"
        while host in nodes:  # pragma: no cover - pathological name clash
            host += "_"
        nodes.append(host)
        from ..graphs.digraph import NodeKind

        for n in nodes[:-1]:
            is_io = is_po_node(n) or (
                graph.has_node(n) and graph.kind(n) is NodeKind.INPUT
            )
            if is_io:
                io_constraints.append((n, host, 0))
                io_constraints.append((host, n, 0))

    # requirement per edge: 1 when the edge's first via-net is a cut
    required: Dict[int, int] = {}
    cut_edges: Dict[str, List[int]] = {}
    for i, e in enumerate(edges):
        first = e.via_nets[0]
        if first in cut_set:
            required[i] = 1
            cut_edges.setdefault(first, []).append(i)

    dropped: Set[str] = set()
    iterations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive
            raise RetimingError("cut-retiming relaxation failed to converge")
        constraints = [
            (e.tail, e.head, e.weight - required.get(i, 0))
            for i, e in enumerate(edges)
        ] + io_constraints
        solution, cycle = bellman_ford_constraints(nodes, constraints)
        if solution is not None:
            rho = solution
            break
        # drop one required cut on the offending cycle
        req_on_cycle = [i for i in cycle if required.get(i, 0) > 0]
        if not req_on_cycle:
            raise RetimingError(
                "negative cycle without register requirements: the circuit "
                "has a combinational cycle or inconsistent edge weights"
            )
        victim_edge = req_on_cycle[0]
        victim_net = edges[victim_edge].via_nets[0]
        dropped.add(victim_net)
        for i in cut_edges.get(victim_net, ()):
            required.pop(i, None)

    retiming = Retiming(edges=tuple(edges), rho=rho)
    retiming.assert_legal()
    covered: Set[str] = set()
    for net, idxs in cut_edges.items():
        if net in dropped:
            continue
        if all(retimed_weight(edges[i], rho) >= 1 for i in idxs):
            covered.add(net)
        else:  # pragma: no cover - defensive; solver should guarantee this
            dropped.add(net)
    # cuts whose net never appears as a via head (e.g. dangling) count covered
    for net in cut_set - covered - dropped:
        covered.add(net)
    return RetimingSolution(
        retiming=retiming,
        covered_cuts=covered,
        dropped_cuts=dropped,
        iterations=iterations,
    )
