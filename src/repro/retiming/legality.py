"""Retiming verification: infer the ρ relating two netlists, or prove none.

Two synchronous netlists with identical combinational cells are retimings
of each other iff there is a potential ``ρ`` with, for every cell-to-cell
connection, ``k_after = k_before + ρ(head) − ρ(tail)``.  We infer ρ by
propagating potentials over the connection graph and report the first
inconsistency — in particular any cycle whose register count changed
(Corollary 2 violation) surfaces as a potential conflict.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from ..errors import RetimingError
from ..netlist.netlist import Netlist
from .apply import trace_to_driver

__all__ = ["connection_deltas", "infer_retiming", "verify_retiming"]


def connection_deltas(
    before: Netlist, after: Netlist
) -> List[Tuple[str, str, int]]:
    """Per-connection register-count deltas ``(tail, head, Δk)``.

    Raises :class:`RetimingError` when the combinational structures do not
    match (different cells, functions, or underlying drivers).
    """
    before_cells = {c.output: c for c in before.comb_cells()}
    after_cells = {c.output: c for c in after.comb_cells()}
    if set(before_cells) != set(after_cells):
        missing = set(before_cells) ^ set(after_cells)
        raise RetimingError(
            f"combinational cells differ; e.g. {sorted(missing)[:5]}"
        )
    deltas: List[Tuple[str, str, int]] = []
    for name, b_cell in before_cells.items():
        a_cell = after_cells[name]
        if a_cell.gtype is not b_cell.gtype or a_cell.fanin != b_cell.fanin:
            raise RetimingError(
                f"cell {name!r} changed: {b_cell.gtype.value}/{b_cell.fanin} "
                f"vs {a_cell.gtype.value}/{a_cell.fanin}"
            )
        for pin in range(b_cell.fanin):
            b_drv, b_k = trace_to_driver(before, b_cell.inputs[pin])
            a_drv, a_k = trace_to_driver(after, a_cell.inputs[pin])
            if b_drv != a_drv:
                raise RetimingError(
                    f"cell {name!r} pin {pin} driver changed: "
                    f"{b_drv!r} vs {a_drv!r}"
                )
            deltas.append((b_drv, name, a_k - b_k))
    return deltas


def infer_retiming(before: Netlist, after: Netlist) -> Dict[str, int]:
    """Infer the retiming vector ρ mapping ``before`` to ``after``.

    Returns ρ (normalized so that every primary input has lag 0 where
    connected; otherwise the component's first-seen node anchors at 0).

    Raises:
        RetimingError: the two netlists are not related by a legal
            retiming of the same combinational structure.
    """
    deltas = connection_deltas(before, after)
    adj: Dict[str, List[Tuple[str, int]]] = {}
    for tail, head, dk in deltas:
        # dk = ρ(head) − ρ(tail)
        adj.setdefault(tail, []).append((head, dk))
        adj.setdefault(head, []).append((tail, -dk))
    rho: Dict[str, int] = {}
    # anchor primary inputs first for a canonical normalization
    seeds = [pi for pi in before.inputs if pi in adj] + sorted(adj)
    for seed in seeds:
        if seed in rho:
            continue
        rho[seed] = 0
        queue = deque([seed])
        while queue:
            node = queue.popleft()
            for nxt, dk in adj.get(node, ()):
                want = rho[node] + dk
                if nxt in rho:
                    if rho[nxt] != want:
                        raise RetimingError(
                            f"inconsistent register redistribution at "
                            f"{nxt!r}: ρ={rho[nxt]} vs {want} — some cycle's "
                            f"register count changed (Corollary 2)"
                        )
                else:
                    rho[nxt] = want
                    queue.append(nxt)
    return rho


def verify_retiming(before: Netlist, after: Netlist) -> Dict[str, int]:
    """Like :func:`infer_retiming`, also checking primary-output cones.

    Output *latency* is allowed to change (the paper permits adding
    registers on I/O paths); what must hold is that every original PO's
    driving cone is still observable at some retimed PO.
    """
    rho = infer_retiming(before, after)
    after_po_drivers = set()
    for po in after.outputs:
        drv, _k = trace_to_driver(after, po)
        after_po_drivers.add(drv)
    for po in before.outputs:
        drv, _k_before = trace_to_driver(before, po)
        if drv not in after_po_drivers:
            raise RetimingError(
                f"primary output cone of {po!r} (driver {drv!r}) is not "
                f"observable in the retimed netlist"
            )
    return rho
