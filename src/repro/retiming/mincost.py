"""Experimental min-cost-flow backend for cut-net retiming.

The greedy reference loop in :mod:`repro.retiming.solve` drops one
victim cut per negative cycle until the difference constraints are
feasible.  "Network Flow-based Simultaneous Retiming and Slack
Budgeting" (arXiv 1402.2460) suggests solving the whole relaxation in
one shot instead: allow each requirement a slack ``s_e ≥ 0`` and
minimise total slack,

    min Σ s_e   s.t.   ρ(tail) − ρ(head) ≤ w(e) − r(e) + s_e

whose LP dual is a **min-cost circulation** on the circuit graph — one
arc per register-weighted edge, ``tail → head``:

* every edge contributes an uncapacitated arc of cost ``w(e)`` (the
  hard legality constraint ``w_ρ(e) ≥ 0``);
* every *required* edge additionally contributes a unit-capacity arc of
  cost ``w(e) − 1`` (the droppable register requirement).

A circulation of negative total cost exists exactly when some cycle is
asked to hold more registers than it owns (Corollary 2 again), and the
optimal circulation's cost equals minus the minimum total slack.  The
backend cancels negative cycles until none remain, reads node
potentials off the residual graph, and returns ``ρ = −π`` — covered
cuts are then simply the requirements left with a register.

This minimises the *number of requirement units dropped* rather than
replaying the reference's greedy victim order, so results are **not**
bit-identical to :func:`repro.retiming.solve.solve_cut_retiming`; on
circuits where the greedy order is unlucky it can cover strictly more
cuts.  It exists behind ``solver="mcf"`` for evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import RetimingError
from ..graphs.digraph import CircuitGraph
from ..graphs.paths import WeightedEdge, register_weighted_edges
from .model import Retiming, retimed_weight

__all__ = ["solve_cut_retiming_mcf"]


def _negative_cycle(
    n: int, arcs: Sequence[Tuple[int, int, int]]
) -> Optional[List[int]]:
    """Return arc indices of one negative cycle, or ``None``.

    Dense Bellman–Ford from an all-zero potential (implicit
    super-source), mirroring the canonical-walk structure of
    :func:`repro.retiming.solve.bellman_ford_constraints`.
    """
    dist = [0] * n
    pred = [-1] * n
    updated = -1
    for _ in range(n):
        updated = -1
        for idx, (a, b, c) in enumerate(arcs):
            nd = dist[a] + c
            if nd < dist[b]:
                dist[b] = nd
                pred[b] = idx
                updated = b
        if updated < 0:
            return None
    node = updated
    for _ in range(n):
        node = arcs[pred[node]][0]
    cycle: List[int] = []
    start = node
    while True:
        idx = pred[node]
        cycle.append(idx)
        node = arcs[idx][0]
        if node == start:
            break
    return cycle


def _potentials(n: int, arcs: Sequence[Tuple[int, int, int]]) -> List[int]:
    """Shortest-path potentials of a residual graph with no negative cycle."""
    dist = [0] * n
    for _ in range(n):
        changed = False
        for a, b, c in arcs:
            nd = dist[a] + c
            if nd < dist[b]:
                dist[b] = nd
                changed = True
        if not changed:
            return dist
    raise RetimingError(  # pragma: no cover - caller cancelled all cycles
        "residual graph still has a negative cycle"
    )


def solve_cut_retiming_mcf(
    graph: CircuitGraph,
    cut_nets: Iterable[str],
    edges: Optional[Sequence[WeightedEdge]] = None,
    max_iterations: int = 100000,
    pin_io: bool = False,
):
    """Solve cut-net retiming as one min-cost circulation.

    Same signature shape as
    :func:`repro.retiming.solve.solve_cut_retiming`; see the module
    docstring for the formulation.  ``pin_io`` adds the host-node
    equality constraints as zero-cost uncapacitated arc pairs.

    Returns:
        A :class:`repro.retiming.solve.RetimingSolution` whose
        ``iterations`` counts cancelled cycles.  The retiming is legal
        and every covered cut is guaranteed a register; the *set* of
        dropped cuts generally differs from the greedy reference.
    """
    from ..graphs.build import is_po_node
    from .solve import RetimingSolution

    if edges is None:
        edges = register_weighted_edges(graph)
    cut_set = set(cut_nets)
    nodes = sorted({e.tail for e in edges} | {e.head for e in edges})
    node_idx = {name: i for i, name in enumerate(nodes)}
    n = len(nodes)

    required: Dict[int, int] = {}
    cut_edges: Dict[str, List[int]] = {}
    for i, e in enumerate(edges):
        first = e.via_nets[0]
        if first in cut_set:
            required[i] = 1
            cut_edges.setdefault(first, []).append(i)

    # Arcs as (tail, head, cost, capacity); capacity None = uncapacitated.
    # flow[i] tracks units pushed on arc i (0 or 1 for soft arcs).
    arc_tail: List[int] = []
    arc_head: List[int] = []
    arc_cost: List[int] = []
    arc_cap: List[Optional[int]] = []
    for i, e in enumerate(edges):
        t, h = node_idx[e.tail], node_idx[e.head]
        arc_tail.append(t)
        arc_head.append(h)
        arc_cost.append(e.weight)
        arc_cap.append(None)
        if i in required:
            arc_tail.append(t)
            arc_head.append(h)
            arc_cost.append(e.weight - 1)
            arc_cap.append(1)
    if pin_io:
        from ..graphs.digraph import NodeKind

        host = n
        n += 1
        nodes = list(nodes) + ["__host__"]
        for name, i in node_idx.items():
            is_io = is_po_node(name) or (
                graph.has_node(name) and graph.kind(name) is NodeKind.INPUT
            )
            if is_io:
                for a, b in ((i, host), (host, i)):
                    arc_tail.append(a)
                    arc_head.append(b)
                    arc_cost.append(0)
                    arc_cap.append(None)
    m = len(arc_cost)
    flow = [0] * m

    def residual_arcs() -> List[Tuple[int, int, int]]:
        res: List[Tuple[int, int, int]] = []
        for i in range(m):
            cap = arc_cap[i]
            if cap is None or flow[i] < cap:
                res.append((arc_tail[i], arc_head[i], arc_cost[i]))
            if flow[i] > 0:
                res.append((arc_head[i], arc_tail[i], -arc_cost[i]))
        return res

    # Residual arc index -> (original arc, direction); rebuilt per round.
    iterations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:
            raise RetimingError(
                f"min-cost circulation failed to converge after "
                f"{iterations - 1} cancellations"
            )
        res: List[Tuple[int, int, int]] = []
        origin: List[Tuple[int, int]] = []  # (arc index, +1 fwd / -1 bwd)
        for i in range(m):
            cap = arc_cap[i]
            if cap is None or flow[i] < cap:
                res.append((arc_tail[i], arc_head[i], arc_cost[i]))
                origin.append((i, 1))
            if flow[i] > 0:
                res.append((arc_head[i], arc_tail[i], -arc_cost[i]))
                origin.append((i, -1))
        cycle = _negative_cycle(n, res)
        if cycle is None:
            break
        if all(
            arc_cap[origin[ri][0]] is None and origin[ri][1] == 1
            for ri in cycle
        ):
            raise RetimingError(
                "negative-weight circuit cycle without droppable "
                "requirements: combinational cycle or inconsistent weights"
            )
        for ri in cycle:
            i, sign = origin[ri]
            flow[i] += sign
    pi = _potentials(n, residual_arcs())
    rho = {name: -pi[i] for i, name in enumerate(nodes)}
    if pin_io:
        rho.pop("__host__", None)

    retiming = Retiming(edges=tuple(edges), rho=rho)
    retiming.assert_legal()
    covered: Set[str] = set()
    dropped: Set[str] = set()
    for net, idxs in cut_edges.items():
        if all(retimed_weight(edges[i], rho) >= 1 for i in idxs):
            covered.add(net)
        else:
            dropped.add(net)
    unconstrained = cut_set - covered - dropped
    return RetimingSolution(
        retiming=retiming,
        covered_cuts=covered,
        dropped_cuts=dropped,
        iterations=iterations,
        unconstrained_cuts=unconstrained,
    )
