"""Retiming algebra — Lemma 1 and Corollaries 2/3 of the paper (§2.2).

A retiming is an integer vertex labelling ``ρ`` of the *non-register*
nodes (combinational cells, primary inputs, primary outputs).  In the
Leiserson–Saxe register-weighted view (see
:func:`repro.graphs.paths.register_weighted_edges`) every edge ``u → v``
carries ``w(e)`` registers, and after retiming

    ``w_ρ(e) = w(e) + ρ(v) − ρ(u)``            (Lemma 1, per edge)

which telescopes to ``f_ρ(p) = f(p) + ρ(v_n) − ρ(v_0)`` on paths and to
``f_ρ(p) = f(p)`` on cycles (Corollary 2).  A retiming is *legal* iff
every edge keeps a non-negative register count (Corollary 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import RetimingError
from ..graphs.paths import WeightedEdge

__all__ = [
    "Retiming",
    "retimed_weight",
    "retimed_path_registers",
    "is_legal",
    "illegal_edges",
]


def retimed_weight(edge: WeightedEdge, rho: Mapping[str, int]) -> int:
    """``w_ρ(e) = w(e) + ρ(head) − ρ(tail)`` (Lemma 1)."""
    return edge.weight + rho.get(edge.head, 0) - rho.get(edge.tail, 0)


def retimed_path_registers(
    path: Sequence[WeightedEdge], rho: Mapping[str, int]
) -> int:
    """Register count of an edge path after retiming.

    Telescopes to ``f(p) + ρ(v_n) − ρ(v_0)``; for a closed path the value
    equals the original count regardless of ``ρ`` (Corollary 2).
    """
    for a, b in zip(path, path[1:]):
        if a.head != b.tail:
            raise RetimingError(
                f"edges do not chain: {a.head!r} != {b.tail!r}"
            )
    return sum(retimed_weight(e, rho) for e in path)


def illegal_edges(
    edges: Iterable[WeightedEdge], rho: Mapping[str, int]
) -> List[WeightedEdge]:
    """Edges whose retimed register count would go negative (Eq. 3)."""
    return [e for e in edges if retimed_weight(e, rho) < 0]


def is_legal(edges: Iterable[WeightedEdge], rho: Mapping[str, int]) -> bool:
    """Corollary 3: legal iff no edge weight goes negative."""
    return not illegal_edges(edges, rho)


@dataclass
class Retiming:
    """A retiming vector bound to a fixed register-weighted edge list."""

    edges: Tuple[WeightedEdge, ...]
    rho: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def identity(edges: Sequence[WeightedEdge]) -> "Retiming":
        return Retiming(edges=tuple(edges), rho={})

    def weight(self, edge: WeightedEdge) -> int:
        return retimed_weight(edge, self.rho)

    def legal(self) -> bool:
        return is_legal(self.edges, self.rho)

    def assert_legal(self) -> None:
        bad = illegal_edges(self.edges, self.rho)
        if bad:
            e = bad[0]
            raise RetimingError(
                f"illegal retiming: edge {e.tail}->{e.head} would hold "
                f"{retimed_weight(e, self.rho)} registers "
                f"({len(bad)} violating edge(s) total)"
            )

    def total_registers(self) -> int:
        """Registers in the retimed circuit, counted per weighted edge.

        Note this counts shared fan-out chains once per branch; the
        netlist-level applier shares chains, so the physical count can be
        lower.  Used for invariant checks on linear pipelines.
        """
        return sum(self.weight(e) for e in self.edges)

    def shifted(self, delta: int) -> "Retiming":
        """Uniformly shifting ρ over *all* nodes leaves edge weights unchanged."""
        nodes = {e.tail for e in self.edges} | {e.head for e in self.edges}
        return Retiming(
            edges=self.edges,
            rho={n: self.rho.get(n, 0) + delta for n in nodes},
        )
