"""Partial-scan baseline (MFVS selection, refs [2][3] of the paper).

The retiming-for-testability line of work before PPET selected a
*minimum feedback vertex set* (MFVS) of the flip-flops: scanning those
FFs breaks every sequential cycle, so the rest of the machine is
feed-forward and combinational ATPG suffices.  We implement:

* the register dependency graph (DFF → DFF through combinational logic);
* a greedy approximate MFVS (exact MFVS is NP-hard);
* the scan-area overhead model: a scannable DFF adds a 2-to-1 MUX
  (3 units = 0.3 × DFF) on its data input.

This gives the area baseline our benches compare PPET's CBIT overhead
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.scc import strongly_connected_components
from ..netlist.gates import GateType, gate_area_units
from ..netlist.netlist import Netlist

__all__ = [
    "SCAN_MUX_UNITS",
    "register_dependency_graph",
    "greedy_mfvs",
    "PartialScanResult",
    "partial_scan_baseline",
]

#: Extra area per scannable DFF: one 2-to-1 MUX on the data input.
SCAN_MUX_UNITS = gate_area_units(GateType.MUX2, 3)


def register_dependency_graph(graph: CircuitGraph) -> CircuitGraph:
    """Collapse combinational logic: edge ``r1 → r2`` iff a purely
    combinational path leads from register ``r1``'s output to ``r2``'s
    data input."""
    dep = CircuitGraph(f"{graph.name}_regdep")
    regs = graph.register_nodes()
    for r in regs:
        dep.add_node(r, NodeKind.REGISTER)
    for r in regs:
        # forward BFS through combinational nodes
        reached: Set[str] = set()
        stack = [r]
        seen = {r}
        while stack:
            node = stack.pop()
            for net in graph.out_net_objects(node):
                for sink in net.sinks:
                    if sink in seen:
                        continue
                    seen.add(sink)
                    kind = graph.kind(sink)
                    if kind is NodeKind.REGISTER:
                        reached.add(sink)
                    elif kind is NodeKind.COMB:
                        stack.append(sink)
        if reached:
            dep.add_net(f"dep_{r}", r, sorted(reached))
    return dep


def greedy_mfvs(dep: CircuitGraph) -> Set[str]:
    """Approximate minimum feedback vertex set of the dependency graph.

    Repeatedly removes the highest-degree node of the largest remaining
    SCC until no cycles remain.  The classic greedy 'break the busiest
    register' heuristic used by partial-scan selectors.
    """
    removed: Set[str] = set()

    def live_successors(node: str) -> List[str]:
        out = []
        for net in dep.out_net_objects(node):
            out.extend(s for s in net.sinks if s not in removed)
        return out

    while True:
        # SCCs of the remaining subgraph
        comps = []
        sub_nodes = [n for n in dep.nodes() if n not in removed]
        if not sub_nodes:
            break
        index = {}
        # reuse Tarjan on a filtered view via a tiny adapter graph
        view = CircuitGraph("view")
        for n in sub_nodes:
            view.add_node(n, NodeKind.REGISTER)
        for n in sub_nodes:
            succ = [s for s in live_successors(n)]
            if succ:
                view.add_net(f"v_{n}", n, succ)
        cyclic = []
        for comp in strongly_connected_components(view):
            if len(comp) > 1:
                cyclic.append(comp)
            elif comp[0] in view.successors(comp[0]):
                cyclic.append(comp)
        if not cyclic:
            break
        biggest = max(cyclic, key=len)
        members = set(biggest)
        victim = max(
            biggest,
            key=lambda n: sum(1 for s in view.successors(n) if s in members)
            + sum(1 for p in view.predecessors(n) if p in members),
        )
        removed.add(victim)
    return removed


@dataclass(frozen=True)
class PartialScanResult:
    """Partial-scan area accounting for one circuit."""

    circuit: str
    n_dffs: int
    scanned: frozenset
    circuit_area_units: int

    @property
    def n_scanned(self) -> int:
        return len(self.scanned)

    @property
    def scan_area_units(self) -> int:
        return self.n_scanned * SCAN_MUX_UNITS

    @property
    def pct_overhead(self) -> float:
        """Scan hardware as a share of total area (Table-12-comparable)."""
        total = self.circuit_area_units + self.scan_area_units
        return 100.0 * self.scan_area_units / total if total else 0.0


def partial_scan_baseline(
    netlist: Netlist, graph: CircuitGraph
) -> PartialScanResult:
    """Select an approximate-MFVS scan set and price it.

    Note the comparison caveat our benches spell out: partial scan only
    restores *testability* (an external ATPG still supplies patterns);
    PPET buys full built-in self-test.  The paper's pitch is that PPET's
    retimed overhead approaches partial scan's while delivering BIST.
    """
    dep = register_dependency_graph(graph)
    scanned = greedy_mfvs(dep)
    return PartialScanResult(
        circuit=netlist.name,
        n_dffs=sum(1 for _ in netlist.dff_cells()),
        scanned=frozenset(scanned),
        circuit_area_units=netlist.area_units(),
    )
