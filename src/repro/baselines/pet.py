"""Conventional (non-pipelined) pseudo-exhaustive testing baseline.

Reference [7] of the paper (Wu, AT&T 1991): the circuit is partitioned
into segments, but segments are tested **one at a time** from a shared
pattern source — no concurrent pipelining.  Testing time is therefore the
*sum* of the segments' exhaustive spaces instead of PPET's
pipes-of-the-widest.  The paper's conclusion notes that partitioning with
retiming helps conventional PET too; this module quantifies both the time
gap (PET vs PPET) and the shared-hardware discount PET enjoys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cbit.assemble import CBITPlan
from ..cbit.types import cbit_cost_for_inputs
from ..partition.clusters import Partition
from ..ppet.schedule import TestSchedule, schedule_pipes

__all__ = ["PETComparison", "compare_pet_ppet"]


@dataclass(frozen=True)
class PETComparison:
    """Sequential PET vs pipelined PPET on the same partition."""

    circuit: str
    n_segments: int
    pet_cycles: int  # Σ 2^ι over segments (sequential)
    ppet_cycles: int  # Σ per pipe of 2^(widest active CBIT)
    pet_tpg_cost_dff: float  # one shared generator sized for the widest CUT
    ppet_cbit_cost_dff: float  # Σ p_k n_k over all CBITs

    @property
    def speedup(self) -> float:
        """How much faster PPET finishes than sequential PET."""
        return self.pet_cycles / self.ppet_cycles if self.ppet_cycles else 1.0

    @property
    def hardware_ratio(self) -> float:
        """PPET hardware relative to the single shared PET generator."""
        if self.pet_tpg_cost_dff == 0:
            return 1.0
        return self.ppet_cbit_cost_dff / self.pet_tpg_cost_dff


def compare_pet_ppet(
    partition: Partition,
    plan: CBITPlan,
    schedule: Optional[TestSchedule] = None,
) -> PETComparison:
    """Build the PET-vs-PPET time/hardware comparison for one partition.

    The PET side reuses the same segments (the paper's point: the
    partitioner is useful to both methodologies) but owns a single
    generator/compactor pair sized for the widest segment, applied to the
    segments one after another.
    """
    if schedule is None:
        schedule = schedule_pipes(partition, plan)
    pet_cycles = sum(a.testing_time for a in plan.assignments)
    widest = plan.widest()
    shared_cost, _ = cbit_cost_for_inputs(widest)
    return PETComparison(
        circuit=partition.graph.name,
        n_segments=len(plan.assignments),
        pet_cycles=pet_cycles,
        ppet_cycles=schedule.test_cycles,
        pet_tpg_cost_dff=2 * shared_cost,  # generator + compactor
        ppet_cbit_cost_dff=plan.total_cost_dff,
    )
