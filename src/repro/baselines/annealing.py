"""Simulated-annealing PIC partitioner — the authors' earlier approach.

Reference [4] of the paper (Liou/Lin/Cheng/Liu, CICC 1994) solved the
same partition-with-input-constraint problem by simulated annealing; the
DAC'96 paper replaces it with the multicommodity-flow heuristic.  This
module reimplements the SA baseline so the flow method can be compared
against it (solution quality vs runtime), as our ablation bench does.

State: an assignment of register/combinational nodes to ``m`` blocks.
Moves: relocate one node to another block.  Cost: the number of cut nets
plus a penalty for blocks exceeding ``l_k`` inputs (the annealer explores
infeasible space early, the penalty weight grows as temperature falls).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..config import MercedConfig
from ..errors import PartitionError
from ..graphs.digraph import CircuitGraph, NodeKind
from ..graphs.scc import SCCIndex
from ..partition.clusters import Cluster, Partition, cluster_input_nets

__all__ = ["AnnealingResult", "anneal_partition"]


@dataclass
class AnnealingResult:
    """Outcome of :func:`anneal_partition`."""

    partition: Partition
    cost_trace: List[float]
    n_moves: int
    n_accepted: int
    final_temperature: float

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_moves if self.n_moves else 0.0


class _State:
    """Incremental cost bookkeeping for the annealer."""

    def __init__(self, graph: CircuitGraph, nodes: List[str], m: int, rng):
        self.graph = graph
        self.nodes = nodes
        self.m = m
        self.block: Dict[str, int] = {
            n: rng.randrange(m) for n in nodes
        }
        self.members: List[Set[str]] = [set() for _ in range(m)]
        for n, b in self.block.items():
            self.members[b].add(n)

    def input_count(self, b: int) -> int:
        return len(cluster_input_nets(self.graph, self.members[b]))

    def cut_count(self) -> int:
        cuts = 0
        for net in self.graph.nets():
            src = net.source
            if self.graph.kind(src) is not NodeKind.COMB:
                continue
            sb = self.block.get(src)
            for sink in net.sinks:
                if (
                    self.graph.kind(sink) is NodeKind.COMB
                    and self.block.get(sink) != sb
                ):
                    cuts += 1
                    break
        return cuts

    def cost(self, lk: int, penalty: float) -> float:
        over = sum(
            max(0, self.input_count(b) - lk) for b in range(self.m)
        )
        return self.cut_count() + penalty * over

    def move(self, node: str, to_block: int) -> int:
        old = self.block[node]
        self.members[old].discard(node)
        self.members[to_block].add(node)
        self.block[node] = to_block
        return old


def anneal_partition(
    graph: CircuitGraph,
    m: int,
    config: Optional[MercedConfig] = None,
    n_steps: int = 4000,
    t_start: float = 5.0,
    t_end: float = 0.05,
    scc_index: Optional[SCCIndex] = None,
) -> AnnealingResult:
    """Partition ``graph`` into ``m`` blocks by simulated annealing.

    Args:
        graph: the circuit graph (registers + combinational nodes are
            assigned; primary inputs stay global, as in the flow method).
        m: number of blocks (the flow method discovers its own ``m``; the
            SA formulation of [4] fixes it up front — pass the flow
            result's partition count for a like-for-like comparison).
        config: supplies ``l_k`` and the RNG seed.
        n_steps: annealing schedule length (geometric cooling).

    Returns:
        An :class:`AnnealingResult` whose partition may violate Eq. 5 if
        the annealer could not reach feasibility — check
        ``result.partition.is_feasible()``.
    """
    config = config or MercedConfig()
    if m < 1:
        raise PartitionError("m must be at least 1")
    rng = random.Random(config.seed)
    nodes = [
        n for n in graph.nodes() if graph.kind(n) is not NodeKind.INPUT
    ]
    if not nodes:
        raise PartitionError("graph has no assignable nodes")
    state = _State(graph, nodes, m, rng)

    alpha = (t_end / t_start) ** (1.0 / max(1, n_steps - 1))
    temp = t_start
    penalty = 2.0
    current = state.cost(config.lk, penalty)
    trace = [current]
    accepted = 0
    for step in range(n_steps):
        node = nodes[rng.randrange(len(nodes))]
        target = rng.randrange(m)
        if target == state.block[node]:
            temp *= alpha
            continue
        old = state.move(node, target)
        penalty = 2.0 + 8.0 * (step / n_steps)  # tighten feasibility late
        candidate = state.cost(config.lk, penalty)
        delta = candidate - current
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-9)):
            current = candidate
            accepted += 1
        else:
            state.move(node, old)
        trace.append(current)
        temp *= alpha

    clusters = [
        Cluster.from_nodes(i, graph, members)
        for i, members in enumerate(state.members)
        if members
    ]
    clusters = [
        Cluster(cluster_id=i, nodes=c.nodes, input_nets=c.input_nets)
        for i, c in enumerate(clusters)
    ]
    partition = Partition(
        graph, clusters, lk=config.lk, scc_index=scc_index
    )
    return AnnealingResult(
        partition=partition,
        cost_trace=trace,
        n_moves=n_steps,
        n_accepted=accepted,
        final_temperature=temp,
    )
