"""Comparison baselines: SA partitioning [4], partial scan [2][3], PET [7]."""

from .annealing import AnnealingResult, anneal_partition
from .partial_scan import (
    PartialScanResult,
    SCAN_MUX_UNITS,
    greedy_mfvs,
    partial_scan_baseline,
    register_dependency_graph,
)
from .pet import PETComparison, compare_pet_ppet

__all__ = [
    "AnnealingResult",
    "anneal_partition",
    "PartialScanResult",
    "SCAN_MUX_UNITS",
    "greedy_mfvs",
    "partial_scan_baseline",
    "register_dependency_graph",
    "PETComparison",
    "compare_pet_ppet",
]
