"""Directed circuit graph with multi-pin nets (Section 2.1).

The paper models a synchronous circuit as ``G(V = R ∪ C, E)`` where ``V``
contains register nodes ``R`` and combinational nodes ``C`` and each *net*
is a single directed edge with fan-out branches from its source module.
:class:`CircuitGraph` implements exactly that: a **net** has one source node
and one or more sink nodes, and carries the mutable flow/congestion state
used by ``Saturate_Network`` (capacity, accumulated flow, distance).

Node identifiers are strings (signal/cell names); each node has a
:class:`NodeKind` marking whether it is a primary input, a register, or a
combinational cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import GraphError

__all__ = ["NodeKind", "Net", "CircuitGraph"]


class NodeKind(enum.Enum):
    """Role of a node in ``G(V = R ∪ C, E)``."""

    INPUT = "input"  # primary input (a source in C, per the paper's model)
    REGISTER = "register"  # R: a DFF
    COMB = "comb"  # C: a combinational cell

    @property
    def is_register(self) -> bool:
        return self is NodeKind.REGISTER


@dataclass
class Net:
    """One multi-pin net: a source node and its fan-out branches.

    The mutable fields (``cap``, ``flow``, ``dist``, ``removed``) carry the
    state of the probabilistic multicommodity-flow procedure; ``dist`` is
    the congestion distance ``d(e)`` of Table 3.
    """

    name: str
    source: str
    sinks: Tuple[str, ...]
    cap: float = 1.0
    flow: float = 0.0
    dist: float = 1.0
    removed: bool = False

    def reset_flow(self, cap: float = 1.0) -> None:
        """Restore the pristine pre-saturation state (Table 3, STEP 1)."""
        self.cap = cap
        self.flow = 0.0
        self.dist = 1.0
        self.removed = False

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = " cut" if self.removed else ""
        return f"<Net {self.name}: {self.source} -> {list(self.sinks)}{status}>"


class CircuitGraph:
    """Directed graph of a synchronous circuit under the multi-pin net model."""

    def __init__(self, name: str = "G"):
        self.name = name
        self._kinds: Dict[str, NodeKind] = {}
        self._nets: Dict[str, Net] = {}
        self._out: Dict[str, List[str]] = {}  # node -> net names it sources
        self._in: Dict[str, List[str]] = {}  # node -> net names feeding it
        self._out_objs: Optional[Dict[str, Tuple[Net, ...]]] = None  # hot-path cache
        self._topo_version = 0  # bumped on add_node/add_net; see topo_version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: str, kind: NodeKind) -> None:
        if node in self._kinds:
            raise GraphError(f"duplicate node {node!r}")
        self._kinds[node] = kind
        self._out[node] = []
        self._in[node] = []
        self._topo_version += 1

    def add_net(self, name: str, source: str, sinks: Iterable[str]) -> Net:
        """Add a net ``source -> sinks``; all endpoints must already exist."""
        if name in self._nets:
            raise GraphError(f"duplicate net {name!r}")
        sinks = tuple(sinks)
        if not sinks:
            raise GraphError(f"net {name!r} has no sinks")
        if source not in self._kinds:
            raise GraphError(f"net {name!r}: unknown source node {source!r}")
        for s in sinks:
            if s not in self._kinds:
                raise GraphError(f"net {name!r}: unknown sink node {s!r}")
        net = Net(name=name, source=source, sinks=sinks)
        self._nets[name] = net
        self._out[source].append(name)
        for s in sinks:
            self._in[s].append(name)
        self._out_objs = None
        self._topo_version += 1
        return net

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[str]:
        return iter(self._kinds)

    def kind(self, node: str) -> NodeKind:
        try:
            return self._kinds[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def has_node(self, node: str) -> bool:
        return node in self._kinds

    def register_nodes(self) -> List[str]:
        """The set ``R``: all DFF nodes."""
        return [n for n, k in self._kinds.items() if k is NodeKind.REGISTER]

    def input_nodes(self) -> List[str]:
        return [n for n, k in self._kinds.items() if k is NodeKind.INPUT]

    def comb_nodes(self) -> List[str]:
        return [n for n, k in self._kinds.items() if k is NodeKind.COMB]

    def nets(self, include_removed: bool = True) -> Iterator[Net]:
        if include_removed:
            return iter(self._nets.values())
        return (n for n in self._nets.values() if not n.removed)

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise GraphError(f"unknown net {name!r}") from None

    def has_net(self, name: str) -> bool:
        return name in self._nets

    def out_nets(self, node: str, include_removed: bool = True) -> List[Net]:
        """Nets sourced at ``node`` (optionally hiding removed/cut nets)."""
        nets = (self._nets[n] for n in self._out[node])
        return [n for n in nets if include_removed or not n.removed]

    def out_net_objects(self, node: str) -> Tuple[Net, ...]:
        """Cached tuple of all nets sourced at ``node`` (removed included).

        Hot-path accessor for Dijkstra/DFS inner loops; callers filter on
        ``net.removed`` themselves.
        """
        if self._out_objs is None:
            self._out_objs = {
                n: tuple(self._nets[name] for name in names)
                for n, names in self._out.items()
            }
        return self._out_objs[node]

    def in_nets(self, node: str, include_removed: bool = True) -> List[Net]:
        """Nets with a branch sinking at ``node``."""
        nets = (self._nets[n] for n in self._in[node])
        return [n for n in nets if include_removed or not n.removed]

    def successors(self, node: str, include_removed: bool = True) -> List[str]:
        """Distinct nodes reachable over one net branch from ``node``."""
        seen: Set[str] = set()
        out: List[str] = []
        for net in self.out_nets(node, include_removed):
            for s in net.sinks:
                if s not in seen:
                    seen.add(s)
                    out.append(s)
        return out

    def predecessors(self, node: str, include_removed: bool = True) -> List[str]:
        seen: Set[str] = set()
        out: List[str] = []
        for net in self.in_nets(node, include_removed):
            if net.source not in seen:
                seen.add(net.source)
                out.append(net.source)
        return out

    @property
    def topo_version(self) -> int:
        """Monotonic counter of topology changes (node/net additions).

        :func:`repro.graphs.csr.compile_graph` keys its per-graph cache
        on this, so a stale compiled view is never served.
        """
        return self._topo_version

    @property
    def n_nodes(self) -> int:
        return len(self._kinds)

    @property
    def n_nets(self) -> int:
        return len(self._nets)

    def cut_nets(self) -> List[Net]:
        """Nets currently marked as removed (the cut set χ)."""
        return [n for n in self._nets.values() if n.removed]

    # ------------------------------------------------------------------
    # flow state management
    # ------------------------------------------------------------------
    def reset_flow_state(self, cap: float = 1.0) -> None:
        """Re-initialize all nets' flow/congestion state (Table 3, STEP 1)."""
        for net in self._nets.values():
            net.reset_flow(cap)

    def restore_cuts(self) -> None:
        """Un-remove every net, keeping flow/distance values."""
        for net in self._nets.values():
            net.removed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitGraph {self.name!r}: {self.n_nodes} nodes "
            f"({len(self.register_nodes())} R), {self.n_nets} nets>"
        )
