"""Netlist → circuit-graph conversion under the multi-pin net model.

Every primary input and every cell of the netlist becomes one node of
``G(V = R ∪ C, E)``; every signal with at least one reader becomes one
multi-pin net from its driver node to the reader nodes (Figure 2 of the
paper).  Primary outputs read their driving signal through an optional
virtual sink so that output nets are visible to the flow procedure.
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist.netlist import Netlist
from .digraph import CircuitGraph, NodeKind

__all__ = ["build_circuit_graph", "PO_NODE_PREFIX", "is_po_node"]

#: Prefix of the virtual primary-output sink nodes.
PO_NODE_PREFIX = "__po__"


def is_po_node(node: str) -> bool:
    """True for virtual primary-output sink nodes added by the builder."""
    return node.startswith(PO_NODE_PREFIX)


def build_circuit_graph(
    netlist: Netlist, with_po_nodes: bool = True
) -> CircuitGraph:
    """Build ``G(V = R ∪ C, E)`` from a validated netlist.

    Args:
        netlist: source circuit; ``netlist.validate()`` should have passed.
        with_po_nodes: when true, each primary output ``o`` gets a virtual
            combinational sink node ``__po__o`` so the output net exists in
            the graph even if no internal cell reads the signal.

    Returns:
        The circuit graph; node names equal signal names (the cell driving
        a signal and the signal share a name), and net names equal the
        driving signal's name.
    """
    g = CircuitGraph(netlist.name)
    for sig in netlist.inputs:
        g.add_node(sig, NodeKind.INPUT)
    for cell in netlist.cells():
        g.add_node(
            cell.output,
            NodeKind.REGISTER if cell.is_dff else NodeKind.COMB,
        )
    po_sinks: Dict[str, List[str]] = {}
    if with_po_nodes:
        for out in netlist.outputs:
            po = f"{PO_NODE_PREFIX}{out}"
            g.add_node(po, NodeKind.COMB)
            po_sinks.setdefault(out, []).append(po)
    readers: Dict[str, List[str]] = {s: [] for s in netlist.signals()}
    for cell in netlist.cells():
        for sig in cell.inputs:
            readers[sig].append(cell.output)
    for sig in netlist.signals():
        sinks = readers[sig] + po_sinks.get(sig, [])
        if sinks:
            g.add_net(sig, source=sig, sinks=sinks)
    return g
