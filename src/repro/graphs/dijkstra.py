"""Dijkstra shortest-path trees over the circuit graph (Table 3, STEP 3.2).

``Saturate_Network`` repeatedly asks for the shortest-path tree from a
random source to **all reachable sinks**, with the congestion distance
``d(e)`` as edge length.  The tree edges are nets; a multi-pin net charges
its distance once per traversal (its branches share the physical wire).

Determinism matters for reproducibility: ties are broken by insertion
order via a monotonically increasing heap counter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .digraph import CircuitGraph

__all__ = ["ShortestPathTree", "dijkstra_tree"]


@dataclass
class ShortestPathTree:
    """Result of :func:`dijkstra_tree`.

    Attributes:
        source: the tree root.
        dist: node → shortest distance from the source.
        parent_net: node → name of the net used to reach it (root maps to
            ``None``).
    """

    source: str
    dist: Dict[str, float]
    parent_net: Dict[str, Optional[str]]

    def reached(self) -> List[str]:
        """All nodes reachable from the source, including the source."""
        return list(self.dist)

    def tree_nets(self) -> List[str]:
        """Distinct nets participating in the tree (``e ∈ T_v`` of Table 3)."""
        seen: Set[str] = set()
        out: List[str] = []
        for net_name in self.parent_net.values():
            if net_name is not None and net_name not in seen:
                seen.add(net_name)
                out.append(net_name)
        return out

    def path_to(self, node: str) -> List[str]:
        """Net names along the tree path source → ``node``."""
        if node not in self.dist:
            raise KeyError(f"{node!r} not reached from {self.source!r}")
        path: List[str] = []
        # walk parents; parent_net[node] is the net whose source is the parent
        cur = node
        guard = len(self.dist) + 1
        while True:
            net_name = self.parent_net[cur]
            if net_name is None:
                break
            path.append(net_name)
            cur = self._net_source[net_name]
            guard -= 1
            if guard < 0:  # pragma: no cover - defensive
                raise RuntimeError("parent chain does not terminate")
        path.reverse()
        return path

    # populated by dijkstra_tree for path reconstruction
    _net_source: Dict[str, str] = field(default_factory=dict)


def dijkstra_tree(
    graph: CircuitGraph,
    source: str,
    use_removed: bool = False,
) -> ShortestPathTree:
    """Shortest-path tree from ``source`` over net distances ``d(e)``.

    Args:
        graph: the circuit graph carrying per-net ``dist`` values.
        source: root node.
        use_removed: when false (default), cut nets are not traversed.

    Returns:
        A :class:`ShortestPathTree` covering every node reachable from
        ``source``.
    """
    dist: Dict[str, float] = {source: 0.0}
    parent_net: Dict[str, Optional[str]] = {source: None}
    net_source: Dict[str, str] = {}
    done: Set[str] = set()
    counter = 0
    heap: List = [(0.0, counter, source)]
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for net in graph.out_net_objects(node):
            if net.removed and not use_removed:
                continue
            nd = d + net.dist
            for sink in net.sinks:
                if sink in done:
                    continue
                if sink not in dist or nd < dist[sink]:
                    dist[sink] = nd
                    parent_net[sink] = net.name
                    net_source[net.name] = net.source
                    counter += 1
                    heapq.heappush(heap, (nd, counter, sink))
    tree = ShortestPathTree(source=source, dist=dist, parent_net=parent_net)
    tree._net_source = net_source
    return tree
