"""Circuit-graph substrate: multi-pin digraph, SCCs, Dijkstra, path algebra."""

from .digraph import CircuitGraph, Net, NodeKind
from .build import build_circuit_graph, is_po_node, PO_NODE_PREFIX
from .csr import CompiledGraph, compile_graph
from .scc import (
    SCCIndex,
    SCCInfo,
    strongly_connected_components,
    strongly_connected_components_reference,
)
from .dijkstra import ShortestPathTree, dijkstra_tree
from .paths import (
    WeightedEdge,
    cycle_register_count,
    nodes_of_net_path,
    path_register_count,
    register_weighted_edges,
)

__all__ = [
    "CircuitGraph",
    "Net",
    "NodeKind",
    "build_circuit_graph",
    "is_po_node",
    "PO_NODE_PREFIX",
    "CompiledGraph",
    "compile_graph",
    "SCCIndex",
    "SCCInfo",
    "strongly_connected_components",
    "strongly_connected_components_reference",
    "ShortestPathTree",
    "dijkstra_tree",
    "WeightedEdge",
    "cycle_register_count",
    "nodes_of_net_path",
    "path_register_count",
    "register_weighted_edges",
]
