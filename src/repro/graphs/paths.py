"""Register-count algebra on circuit paths (Section 2.2).

The retiming lemmas speak about ``f(p)``, the number of registers on a path
``p``.  In our graph registers are *nodes* (the set ``R``), so ``f`` counts
the register nodes a path passes through.  For Leiserson–Saxe style
reasoning we also provide the classical *register-weighted* view: a graph
over non-register nodes whose edge weights ``w(u, v)`` count the registers
on the wiring between ``u`` and ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import GraphError
from .digraph import CircuitGraph, NodeKind

__all__ = [
    "nodes_of_net_path",
    "path_register_count",
    "cycle_register_count",
    "WeightedEdge",
    "register_weighted_edges",
]


def nodes_of_net_path(graph: CircuitGraph, nets: Sequence[str]) -> List[str]:
    """Expand a chain of net names into the node sequence ``v0, v1, ..., vn``.

    Each net must source at the previous net's chosen sink; the sink chosen
    for net ``i`` is the source of net ``i+1`` (it must be among the net's
    sinks).  The final net contributes its first sink unless a continuation
    disambiguates it — for path algebra the register count of the endpoint
    is what matters, so callers wanting a specific terminal sink should
    append it via :func:`path_register_count`'s ``final_sink``.
    """
    if not nets:
        return []
    seq: List[str] = [graph.net(nets[0]).source]
    for i, name in enumerate(nets):
        net = graph.net(name)
        if net.source != seq[-1]:
            raise GraphError(
                f"net {name!r} does not continue the path at {seq[-1]!r}"
            )
        if i + 1 < len(nets):
            nxt_source = graph.net(nets[i + 1]).source
            if nxt_source not in net.sinks:
                raise GraphError(
                    f"net {name!r} has no branch to {nxt_source!r}"
                )
            seq.append(nxt_source)
        else:
            seq.append(net.sinks[0])
    return seq


def path_register_count(
    graph: CircuitGraph,
    nets: Sequence[str],
    final_sink: str = None,
) -> int:
    """``f(p)``: registers on the path described by ``nets``.

    Registers are counted over the node sequence ``v0 .. vn`` *excluding the
    start node* ``v0`` (each edge delivers into its sink, so a register is
    charged to the path that enters it).  This makes ``f`` additive over
    path concatenation and makes cycle counts independent of the start
    node, as Corollary 2 requires.
    """
    seq = nodes_of_net_path(graph, nets)
    if final_sink is not None:
        last = graph.net(nets[-1])
        if final_sink not in last.sinks:
            raise GraphError(
                f"{final_sink!r} is not a sink of net {nets[-1]!r}"
            )
        seq[-1] = final_sink
    return sum(
        1 for node in seq[1:] if graph.kind(node) is NodeKind.REGISTER
    )


def cycle_register_count(graph: CircuitGraph, nets: Sequence[str]) -> int:
    """``f(λ)`` for a directed cycle given as a closed chain of nets.

    The last net must have a branch back to the first net's source.
    """
    if not nets:
        raise GraphError("empty cycle")
    first_source = graph.net(nets[0]).source
    last = graph.net(nets[-1])
    if first_source not in last.sinks:
        raise GraphError("net sequence does not close into a cycle")
    return path_register_count(graph, nets, final_sink=first_source)


@dataclass(frozen=True)
class WeightedEdge:
    """Edge of the register-weighted (Leiserson–Saxe) view."""

    tail: str
    head: str
    weight: int  # registers between tail and head
    via_nets: Tuple[str, ...]  # nets traversed tail -> head


def register_weighted_edges(graph: CircuitGraph) -> List[WeightedEdge]:
    """Collapse register nodes into edge weights.

    For every non-register node ``u`` and every maximal wiring path
    ``u -> r1 -> r2 -> ... -> v`` where the interior nodes are registers
    and ``v`` is the first non-register node, emit ``(u, v, #registers)``.
    Pure register cycles (a DFF ring with no combinational node) raise
    :class:`GraphError` since they have no Leiserson–Saxe representation.
    """
    edges: List[WeightedEdge] = []
    non_regs = [
        n for n in graph.nodes() if graph.kind(n) is not NodeKind.REGISTER
    ]
    n_regs = len(graph.register_nodes())
    for u in non_regs:
        # DFS through register-only interiors
        stack: List[Tuple[str, int, Tuple[str, ...]]] = [(u, 0, ())]
        while stack:
            node, w, via = stack.pop()
            for net in graph.out_nets(node):
                for sink in net.sinks:
                    nvia = via + (net.name,)
                    if graph.kind(sink) is NodeKind.REGISTER:
                        if w >= n_regs:
                            raise GraphError(
                                "pure register cycle detected; the circuit "
                                "has a DFF loop with no combinational node"
                            )
                        stack.append((sink, w + 1, nvia))
                    else:
                        edges.append(WeightedEdge(u, sink, w, nvia))
    return edges
