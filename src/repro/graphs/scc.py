"""Strongly connected components (Tarjan, iterative) and the SCC index.

Merced's STEP 2 (Table 2) identifies the SCCs of ``G`` because legal
retiming cannot change the number of registers on any directed cycle
(Corollary 2).  The :class:`SCCIndex` therefore records, per non-trivial
SCC ``λ``: its nodes, its register count ``f(λ)`` (existing DFFs available
to retiming), and its internal nets (the candidate cut positions whose
count ``χ(λ)`` is budgeted by Eq. 6).

Both the component search and the index construction run on the
:class:`~repro.graphs.csr.CompiledGraph` integer arrays; the original
string-keyed Tarjan is retained as
:func:`strongly_connected_components_reference` and the two are held
bit-identical (same component order, same node order within each
component) by ``tests/graphs/test_csr_equiv.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .csr import KIND_REGISTER, CompiledGraph, compile_graph
from .digraph import CircuitGraph, NodeKind

__all__ = [
    "strongly_connected_components",
    "strongly_connected_components_reference",
    "SCCInfo",
    "SCCIndex",
]


def _scc_id_components(cg: CompiledGraph) -> List[List[int]]:
    """Tarjan over the compiled successor CSR, components as node ids.

    Roots are tried in id order (graph insertion order) and successors in
    CSR order — the exact orders the reference implementation uses — so
    emission order and within-component order match it bit for bit.
    """
    n = cg.n_nodes
    succ_start = cg.succ_start
    succ_ids = cg.succ_ids
    index = [-1] * n
    lowlink = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    counter = 0
    result: List[List[int]] = []

    for root in range(n):
        if index[root] != -1:
            continue
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        work: List[List[int]] = [[root, succ_start[root]]]  # [node, ptr]
        while work:
            frame = work[-1]
            node = frame[0]
            p = frame[1]
            end = succ_start[node + 1]
            advanced = False
            while p < end:
                s = succ_ids[p]
                p += 1
                if index[s] == -1:
                    index[s] = lowlink[s] = counter
                    counter += 1
                    stack.append(s)
                    on_stack[s] = 1
                    frame[1] = p
                    work.append([s, succ_start[s]])
                    advanced = True
                    break
                if on_stack[s] and index[s] < lowlink[node]:
                    lowlink[node] = index[s]
            if advanced:
                continue
            work.pop()
            ll = lowlink[node]
            if work:
                parent = work[-1][0]
                if ll < lowlink[parent]:
                    lowlink[parent] = ll
            if ll == index[node]:
                comp: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    comp.append(w)
                    if w == node:
                        break
                result.append(comp)
    return result


def strongly_connected_components(graph: CircuitGraph) -> List[List[str]]:
    """Tarjan's algorithm, iterative (safe for >10^5-node circuits).

    Returns the SCCs as lists of node names, in reverse topological order
    of the condensation (standard Tarjan emission order).  Runs on the
    compiled CSR arrays; output is bit-identical to
    :func:`strongly_connected_components_reference`.
    """
    cg = compile_graph(graph)
    names = cg.node_names
    return [[names[i] for i in comp] for comp in _scc_id_components(cg)]


def strongly_connected_components_reference(
    graph: CircuitGraph,
) -> List[List[str]]:
    """Original string-keyed Tarjan, kept as the equivalence oracle."""
    index_counter = 0
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []

    for root in graph.nodes():
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(graph.successors(root)))
        ]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                result.append(comp)
    return result


@dataclass
class SCCInfo:
    """One non-trivial strongly connected component ``λ``."""

    scc_id: int
    nodes: Tuple[str, ...]
    register_count: int  # f(λ): DFF nodes inside the SCC
    internal_nets: Tuple[str, ...]  # nets with source and ≥1 sink in λ
    cut_count: int = 0  # c(λ): cuts charged so far (Table 7, STEP 2.1.1)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def cut_budget(self, beta: int) -> int:
        """Maximum cuts allowed by Eq. 6: ``β × f(λ)``."""
        return beta * self.register_count


class SCCIndex:
    """Node → SCC lookup plus per-SCC retiming bookkeeping.

    Only *non-trivial* SCCs are tracked: components with more than one node,
    or a single node with a self net (a cell feeding itself through one
    net).  Nodes outside any cycle map to ``None``.
    """

    def __init__(self, graph: CircuitGraph):
        self.graph = graph
        self._sccs: List[SCCInfo] = []
        self._node_to_scc: Dict[str, int] = {}
        self._net_to_scc: Dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        cg = compile_graph(self.graph)
        kind = cg.kind
        out_start = cg.out_start
        out_net_ids = cg.out_net_ids
        sink_start = cg.sink_start
        sink_ids = cg.sink_ids
        node_names = cg.node_names
        net_names = cg.net_names
        node_ep = cg.node_ep
        for comp in _scc_id_components(cg):
            if len(comp) == 1:
                node = comp[0]
                has_self = False
                for p in range(out_start[node], out_start[node + 1]):
                    ni = out_net_ids[p]
                    for q in range(sink_start[ni], sink_start[ni + 1]):
                        if sink_ids[q] == node:
                            has_self = True
                            break
                    if has_self:
                        break
                if not has_self:
                    continue
            ep = cg.next_epoch()
            for node in comp:
                node_ep[node] = ep
            scc_id = len(self._sccs)
            internal: List[str] = []
            n_regs = 0
            for node in comp:
                if kind[node] == KIND_REGISTER:
                    n_regs += 1
                for p in range(out_start[node], out_start[node + 1]):
                    ni = out_net_ids[p]
                    for q in range(sink_start[ni], sink_start[ni + 1]):
                        if node_ep[sink_ids[q]] == ep:
                            internal.append(net_names[ni])
                            break
            info = SCCInfo(
                scc_id=scc_id,
                nodes=tuple(node_names[i] for i in comp),
                register_count=n_regs,
                internal_nets=tuple(internal),
            )
            self._sccs.append(info)
            for node in comp:
                self._node_to_scc[node_names[node]] = scc_id
            for net_name in internal:
                self._net_to_scc[net_name] = scc_id

    # ------------------------------------------------------------------
    def sccs(self) -> Sequence[SCCInfo]:
        """All non-trivial SCCs."""
        return tuple(self._sccs)

    def scc_of_node(self, node: str) -> Optional[SCCInfo]:
        idx = self._node_to_scc.get(node)
        return None if idx is None else self._sccs[idx]

    def scc_of_net(self, net_name: str) -> Optional[SCCInfo]:
        """The SCC a net is internal to, or ``None`` for tree/cross nets."""
        idx = self._net_to_scc.get(net_name)
        return None if idx is None else self._sccs[idx]

    def net_on_scc(self, net_name: str) -> bool:
        return net_name in self._net_to_scc

    def registers_on_sccs(self) -> int:
        """Total DFFs sitting on cycles (the paper's "DFFs on SCC" column)."""
        return sum(s.register_count for s in self._sccs)

    def reset_cut_counts(self) -> None:
        for s in self._sccs:
            s.cut_count = 0

    def __len__(self) -> int:
        return len(self._sccs)
