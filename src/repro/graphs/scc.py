"""Strongly connected components (Tarjan, iterative) and the SCC index.

Merced's STEP 2 (Table 2) identifies the SCCs of ``G`` because legal
retiming cannot change the number of registers on any directed cycle
(Corollary 2).  The :class:`SCCIndex` therefore records, per non-trivial
SCC ``λ``: its nodes, its register count ``f(λ)`` (existing DFFs available
to retiming), and its internal nets (the candidate cut positions whose
count ``χ(λ)`` is budgeted by Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .digraph import CircuitGraph, NodeKind

__all__ = ["strongly_connected_components", "SCCInfo", "SCCIndex"]


def strongly_connected_components(graph: CircuitGraph) -> List[List[str]]:
    """Tarjan's algorithm, iterative (safe for >10^5-node circuits).

    Returns the SCCs as lists of node names, in reverse topological order
    of the condensation (standard Tarjan emission order).
    """
    index_counter = 0
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []

    for root in graph.nodes():
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(graph.successors(root)))
        ]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                result.append(comp)
    return result


@dataclass
class SCCInfo:
    """One non-trivial strongly connected component ``λ``."""

    scc_id: int
    nodes: Tuple[str, ...]
    register_count: int  # f(λ): DFF nodes inside the SCC
    internal_nets: Tuple[str, ...]  # nets with source and ≥1 sink in λ
    cut_count: int = 0  # c(λ): cuts charged so far (Table 7, STEP 2.1.1)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def cut_budget(self, beta: int) -> int:
        """Maximum cuts allowed by Eq. 6: ``β × f(λ)``."""
        return beta * self.register_count


class SCCIndex:
    """Node → SCC lookup plus per-SCC retiming bookkeeping.

    Only *non-trivial* SCCs are tracked: components with more than one node,
    or a single node with a self net (a cell feeding itself through one
    net).  Nodes outside any cycle map to ``None``.
    """

    def __init__(self, graph: CircuitGraph):
        self.graph = graph
        self._sccs: List[SCCInfo] = []
        self._node_to_scc: Dict[str, int] = {}
        self._net_to_scc: Dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        comps = strongly_connected_components(self.graph)
        for comp in comps:
            members = set(comp)
            if len(comp) == 1:
                node = comp[0]
                has_self = any(
                    node in net.sinks for net in self.graph.out_nets(node)
                )
                if not has_self:
                    continue
            scc_id = len(self._sccs)
            internal = []
            n_regs = 0
            for node in comp:
                if self.graph.kind(node) is NodeKind.REGISTER:
                    n_regs += 1
                for net in self.graph.out_nets(node):
                    if any(s in members for s in net.sinks):
                        internal.append(net.name)
            info = SCCInfo(
                scc_id=scc_id,
                nodes=tuple(comp),
                register_count=n_regs,
                internal_nets=tuple(internal),
            )
            self._sccs.append(info)
            for node in comp:
                self._node_to_scc[node] = scc_id
            for net_name in internal:
                self._net_to_scc[net_name] = scc_id

    # ------------------------------------------------------------------
    def sccs(self) -> Sequence[SCCInfo]:
        """All non-trivial SCCs."""
        return tuple(self._sccs)

    def scc_of_node(self, node: str) -> Optional[SCCInfo]:
        idx = self._node_to_scc.get(node)
        return None if idx is None else self._sccs[idx]

    def scc_of_net(self, net_name: str) -> Optional[SCCInfo]:
        """The SCC a net is internal to, or ``None`` for tree/cross nets."""
        idx = self._net_to_scc.get(net_name)
        return None if idx is None else self._sccs[idx]

    def net_on_scc(self, net_name: str) -> bool:
        return net_name in self._net_to_scc

    def registers_on_sccs(self) -> int:
        """Total DFFs sitting on cycles (the paper's "DFFs on SCC" column)."""
        return sum(s.register_count for s in self._sccs)

    def reset_cut_counts(self) -> None:
        for s in self._sccs:
            s.cut_count = 0

    def __len__(self) -> int:
        return len(self._sccs)
