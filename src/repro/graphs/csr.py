"""Compiled CSR view of a :class:`~repro.graphs.digraph.CircuitGraph`.

The partition and retiming kernels downstream of ``Saturate_Network``
(Tarjan SCC, the modified DFS of ``Make_Set``, ``Make_Group``'s boundary
selection, ``Assign_CBIT``'s merge-gain scoring) spend most of their time
chasing string-keyed dict lookups and rebuilding Python sets.
:class:`CompiledGraph` converts the graph **once** into dense
integer-indexed arrays:

* node and net names are *interned* to contiguous ids (``node_id`` /
  ``net_id``), in the graph's own insertion order — the same order
  :class:`~repro.flow.index.FlowIndex` uses, so the two layers share ids;
* out-/in-adjacency is stored CSR-style (one flat id array plus an
  offset array per node), as are per-net sink lists and the deduplicated
  successor lists that Tarjan traverses;
* per-node kinds and per-net "free boundary" flags live in bytearrays;
* per-net congestion distances are mirrored in a flat float list,
  refreshed from the authoritative ``Net`` objects via
  :meth:`reload_dist`;
* *epoch-stamped* scratch arrays (:meth:`next_epoch`) give kernels O(1)
  set-membership and visited flags without allocating a set per call.

A :class:`CompiledGraph` depends only on the graph's *topology* (nodes,
nets, kinds) — never on mutable flow state — so one instance is built
per circuit and reused across every kernel invocation and every sweep
point that shares the circuit.  :func:`compile_graph` caches the
instance on the graph and invalidates it when nodes or nets are added.
"""

from __future__ import annotations

from typing import Dict, List

from .digraph import CircuitGraph, Net, NodeKind

__all__ = ["KIND_INPUT", "KIND_REGISTER", "KIND_COMB", "CompiledGraph", "compile_graph"]

#: Integer codes stored in :attr:`CompiledGraph.kind` (one byte per node).
KIND_INPUT = 0
KIND_REGISTER = 1
KIND_COMB = 2

_KIND_CODE = {
    NodeKind.INPUT: KIND_INPUT,
    NodeKind.REGISTER: KIND_REGISTER,
    NodeKind.COMB: KIND_COMB,
}


class CompiledGraph:
    """Dense integer-id CSR snapshot of a circuit graph's topology.

    Attributes:
        node_names: id → node name (graph insertion order).
        node_id: node name → id.
        net_names: id → net name (graph insertion order, matching
            ``graph.nets()`` and :class:`~repro.flow.index.FlowIndex`).
        net_id: net name → id.
        kind: per-node kind code (``KIND_INPUT``/``KIND_REGISTER``/
            ``KIND_COMB``) as a bytearray.
        name_rank: per-node rank of its name in sorted order — sorting
            ids by ``name_rank`` reproduces ``sorted(names)`` exactly.
        net_src: per-net source node id.
        boundary_net: per-net flag — 1 when the source is a PI or DFF
            (a *permanent free boundary* in Make_Set terms).
        comb_src: per-net flag — 1 when the source is combinational.
        sink_start/sink_ids: CSR sink lists per net (fan-out branches in
            declaration order); ``fanout(i)`` is the sink count.
        out_start/out_net_ids: CSR net ids sourced at each node.
        in_start/in_net_ids: CSR net ids with a branch sinking at each
            node.
        succ_start/succ_ids: CSR deduplicated successor node ids, in the
            exact order ``CircuitGraph.successors`` yields them.
        dist: per-net congestion distance mirror (see
            :meth:`reload_dist`).
        nets: id → the live :class:`~repro.graphs.digraph.Net` object
            (for write-through of distance pins).
    """

    def __init__(self, graph: CircuitGraph):
        self.graph = graph
        self.version = graph.topo_version
        self.node_names: List[str] = list(graph.nodes())
        self.node_id: Dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)
        }
        n = len(self.node_names)
        self.kind = bytearray(n)
        for i, name in enumerate(self.node_names):
            self.kind[i] = _KIND_CODE[graph.kind(name)]
        self.name_rank: List[int] = [0] * n
        for rank, i in enumerate(
            sorted(range(n), key=self.node_names.__getitem__)
        ):
            self.name_rank[i] = rank

        nets: List[Net] = list(graph.nets())
        self.nets = nets
        m = len(nets)
        self.net_names: List[str] = [net.name for net in nets]
        self.net_id: Dict[str, int] = {
            name: i for i, name in enumerate(self.net_names)
        }
        node_id = self.node_id
        self.net_src: List[int] = [node_id[net.source] for net in nets]
        self.boundary_net = bytearray(m)
        self.comb_src = bytearray(m)
        for i, net in enumerate(nets):
            if self.kind[self.net_src[i]] == KIND_COMB:
                self.comb_src[i] = 1
            else:
                self.boundary_net[i] = 1

        # per-net sinks, CSR
        self.sink_start: List[int] = [0] * (m + 1)
        sink_ids: List[int] = []
        for i, net in enumerate(nets):
            sink_ids.extend(node_id[s] for s in net.sinks)
            self.sink_start[i + 1] = len(sink_ids)
        self.sink_ids = sink_ids

        # per-node out-/in-net lists, CSR (graph insertion order)
        net_id = self.net_id
        self.out_start: List[int] = [0] * (n + 1)
        out_net_ids: List[int] = []
        self.in_start: List[int] = [0] * (n + 1)
        in_net_ids: List[int] = []
        for i, name in enumerate(self.node_names):
            out_net_ids.extend(
                net_id[net.name] for net in graph.out_nets(name)
            )
            self.out_start[i + 1] = len(out_net_ids)
            in_net_ids.extend(net_id[net.name] for net in graph.in_nets(name))
            self.in_start[i + 1] = len(in_net_ids)
        self.out_net_ids = out_net_ids
        self.in_net_ids = in_net_ids

        # deduplicated successors, CSR, replicating CircuitGraph.successors
        self.succ_start: List[int] = [0] * (n + 1)
        succ_ids: List[int] = []
        seen = [-1] * n
        for i in range(n):
            for p in range(self.out_start[i], self.out_start[i + 1]):
                net_i = out_net_ids[p]
                for q in range(self.sink_start[net_i], self.sink_start[net_i + 1]):
                    s = sink_ids[q]
                    if seen[s] != i:
                        seen[s] = i
                        succ_ids.append(s)
            self.succ_start[i + 1] = len(succ_ids)
        self.succ_ids = succ_ids

        #: mutable per-net distance mirror; call :meth:`reload_dist`
        #: after anything rewrites ``Net.dist`` outside the kernels.
        self.dist: List[float] = [net.dist for net in nets]

        # epoch-stamped scratch (kernels call next_epoch per invocation)
        self._epoch = 0
        self.node_ep: List[int] = [0] * n
        self.node_ep2: List[int] = [0] * n
        self.net_ep: List[int] = [0] * m

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    def fanout(self, net_i: int) -> int:
        """Sink count of net ``net_i``."""
        return self.sink_start[net_i + 1] - self.sink_start[net_i]

    def next_epoch(self) -> int:
        """Fresh stamp value for the shared epoch scratch arrays.

        Kernels stamp ``node_ep``/``node_ep2``/``net_ep`` entries with
        the returned value; a new epoch invalidates every old stamp in
        O(1), replacing per-call set rebuilds.
        """
        self._epoch += 1
        return self._epoch

    def reload_dist(self) -> None:
        """Refresh the ``dist`` mirror from the authoritative nets."""
        dist = self.dist
        for i, net in enumerate(self.nets):
            dist[i] = net.dist

    def rebind(self, graph: CircuitGraph) -> None:
        """Point the compiled arrays at an isomorphic graph instance.

        The new graph must have identical topology (same node and net
        names in the same insertion order) — e.g. a graph rebuilt from
        the same ``.bench`` text.  Only the live object references (and
        the distance mirror) change; every id and CSR array is reused.
        """
        node_names = list(graph.nodes())
        if node_names != self.node_names:
            raise ValueError(
                "cannot rebind CompiledGraph: node sets differ"
            )
        nets = list(graph.nets())
        if [n.name for n in nets] != self.net_names:
            raise ValueError("cannot rebind CompiledGraph: net sets differ")
        self.graph = graph
        self.version = graph.topo_version
        self.nets = nets
        self.reload_dist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledGraph {self.graph.name!r}: {self.n_nodes} nodes, "
            f"{self.n_nets} nets>"
        )


def compile_graph(graph: CircuitGraph) -> CompiledGraph:
    """The (cached) :class:`CompiledGraph` of ``graph``.

    Built on first use and stored on the graph instance; invalidated
    automatically when the graph's topology version changes (nodes or
    nets added).  Mutable flow state never invalidates the cache — the
    compiled view holds topology only, plus a distance mirror that
    kernels refresh explicitly.
    """
    cached = getattr(graph, "_compiled", None)
    if cached is not None and cached.version == graph.topo_version:
        return cached
    compiled = CompiledGraph(graph)
    graph._compiled = compiled
    return compiled
