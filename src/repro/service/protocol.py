"""Minimal HTTP/1.1 codec for the ``merced serve`` compile service.

The service speaks plain HTTP so any client — ``curl``, a load
balancer's health checker, the bundled :mod:`repro.service.client` —
can talk to it, but it deliberately implements only the slice the
protocol needs: one JSON request per connection, ``Content-Length``
framing (no chunked encoding), and ``Connection: close`` responses.
Everything is stdlib ``asyncio`` stream reads; there is no third-party
HTTP dependency anywhere in the package.

Hard limits keep a misbehaving client from ballooning memory: request
heads are capped at :data:`MAX_HEAD_BYTES` and bodies at
:data:`MAX_BODY_BYTES` (both generous for ``.bench`` payloads — the
largest bundled benchmark serializes to well under 2 MB).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "MAX_HEAD_BYTES",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "HTTPRequest",
    "read_request",
    "render_response",
]

#: Upper bound on the request line + headers, in bytes.
MAX_HEAD_BYTES = 32 * 1024

#: Upper bound on a request body, in bytes.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A malformed or over-limit HTTP request.

    Carries the HTTP ``status`` the server should answer with; the
    connection handler renders it as a JSON error payload.
    """

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


@dataclass
class HTTPRequest:
    """One parsed HTTP request.

    Attributes:
        method: upper-cased HTTP method (``GET``, ``POST``, ...).
        path: the request target without any query string.
        headers: header map with lower-cased keys (last value wins).
        body: raw request body bytes (empty when no ``Content-Length``).
    """

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON; :class:`ProtocolError` (400) if invalid."""
        if not self.body:
            raise ProtocolError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[HTTPRequest]:
    """Read and parse one HTTP request from ``reader``.

    Returns ``None`` when the peer closed the connection before sending
    anything (a clean disconnect, e.g. a TCP health probe).  Malformed
    or over-limit requests raise :class:`ProtocolError` with the HTTP
    status to respond with.
    """
    # Read the head line by line so the MAX_HEAD_BYTES cap is enforced
    # *incrementally*: a client streaming headers without ever sending
    # the blank line gets its 431 after ~32 KB, not after filling the
    # stream buffer to its (much larger) limit.
    head = bytearray()
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and not head:
                return None
            raise ProtocolError(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise ProtocolError(431, "request head too large") from exc
        head += line
        if len(head) > MAX_HEAD_BYTES:
            raise ProtocolError(431, "request head too large")
        if line == b"\r\n":
            break
    head = bytes(head)

    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError(400, "invalid Content-Length") from exc
        if length < 0:
            raise ProtocolError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked request bodies are not supported")

    path = target.partition("?")[0]
    return HTTPRequest(
        method=method.upper(), path=path, headers=headers, body=body
    )


def render_response(
    status: int,
    payload: Optional[object] = None,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one ``Connection: close`` HTTP/1.1 JSON response.

    ``payload`` is JSON-encoded with sorted keys (byte-stable responses
    for identical results — the coalescing tests compare them
    verbatim); ``None`` sends an empty body.
    """
    body = b""
    if payload is not None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
