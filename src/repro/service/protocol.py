"""Minimal HTTP/1.1 codec for the ``merced serve`` compile service.

The service speaks plain HTTP so any client — ``curl``, a load
balancer's health checker, the bundled :mod:`repro.service.client` —
can talk to it, but it deliberately implements only the slice the
protocol needs: one JSON request per connection, ``Content-Length``
framing (no chunked encoding), and ``Connection: close`` responses.
Everything is stdlib ``asyncio`` stream reads; there is no third-party
HTTP dependency anywhere in the package.

Hard limits keep a misbehaving client from ballooning memory: request
heads are capped at :data:`MAX_HEAD_BYTES` and bodies at
:data:`MAX_BODY_BYTES` (both generous for ``.bench`` payloads — the
largest bundled benchmark serializes to well under 2 MB).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "MAX_HEAD_BYTES",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "HTTPRequest",
    "HTTPResponse",
    "RawJSON",
    "read_request",
    "read_response",
    "render_request",
    "render_response",
]

#: Upper bound on the request line + headers, in bytes.
MAX_HEAD_BYTES = 32 * 1024

#: Upper bound on a request body, in bytes.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class RawJSON:
    """Pre-serialized JSON body bytes, passed through verbatim.

    The service's hot tier stores payloads as already-serialized bytes;
    wrapping them in ``RawJSON`` lets :func:`render_response` (and the
    fleet router's proxy path) frame them without a decode/encode round
    trip.  The bytes must be a complete JSON document *without* a
    trailing newline (the renderer adds it, matching the dict path).
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data


class ProtocolError(Exception):
    """A malformed or over-limit HTTP request.

    Carries the HTTP ``status`` the server should answer with; the
    connection handler renders it as a JSON error payload.
    """

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


@dataclass
class HTTPRequest:
    """One parsed HTTP request.

    Attributes:
        method: upper-cased HTTP method (``GET``, ``POST``, ...).
        path: the request target without any query string.
        headers: header map with lower-cased keys (last value wins).
        body: raw request body bytes (empty when no ``Content-Length``).
    """

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON; :class:`ProtocolError` (400) if invalid."""
        if not self.body:
            raise ProtocolError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[HTTPRequest]:
    """Read and parse one HTTP request from ``reader``.

    Returns ``None`` when the peer closed the connection before sending
    anything (a clean disconnect, e.g. a TCP health probe).  Malformed
    or over-limit requests raise :class:`ProtocolError` with the HTTP
    status to respond with.
    """
    # Read the head line by line so the MAX_HEAD_BYTES cap is enforced
    # *incrementally*: a client streaming headers without ever sending
    # the blank line gets its 431 after ~32 KB, not after filling the
    # stream buffer to its (much larger) limit.
    head = bytearray()
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and not head:
                return None
            raise ProtocolError(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise ProtocolError(431, "request head too large") from exc
        head += line
        if len(head) > MAX_HEAD_BYTES:
            raise ProtocolError(431, "request head too large")
        if line == b"\r\n":
            break
    head = bytes(head)

    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError(400, "invalid Content-Length") from exc
        if length < 0:
            raise ProtocolError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked request bodies are not supported")

    path = target.partition("?")[0]
    return HTTPRequest(
        method=method.upper(), path=path, headers=headers, body=body
    )


def render_response(
    status: int,
    payload: Optional[object] = None,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one ``Connection: close`` HTTP/1.1 JSON response.

    ``payload`` is JSON-encoded with sorted keys (byte-stable responses
    for identical results — the coalescing tests compare them
    verbatim); a :class:`RawJSON` is framed as-is (the hot path's
    pre-serialized bytes); ``None`` sends an empty body.
    """
    body = b""
    if isinstance(payload, RawJSON):
        body = payload.data + b"\n"
    elif payload is not None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_request(
    method: str,
    path: str,
    payload: Optional[object] = None,
    host: str = "localhost",
) -> bytes:
    """Serialize one ``Connection: close`` HTTP/1.1 JSON request.

    The asyncio counterpart of the blocking client's ``http.client``
    path — the fleet router uses it to forward submissions to worker
    shards.  A :class:`RawJSON` payload (the original request body,
    re-framed) is passed through byte-for-byte, so proxying never
    perturbs key order or whitespace.
    """
    body = b""
    if isinstance(payload, RawJSON):
        body = payload.data
    elif payload is not None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
    lines = [
        f"{method.upper()} {path} HTTP/1.1",
        f"Host: {host}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


@dataclass
class HTTPResponse:
    """One parsed HTTP response (the router's view of a worker answer).

    Attributes:
        status: numeric status code.
        headers: header map with lower-cased keys (last value wins).
        body: raw response body bytes.
    """

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON; :class:`ProtocolError` (502) if invalid."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                502, f"invalid JSON from upstream: {exc}"
            ) from exc


async def read_response(reader: asyncio.StreamReader) -> HTTPResponse:
    """Read and parse one HTTP response from ``reader``.

    Mirrors :func:`read_request` (same head cap, ``Content-Length``
    framing only) but for the client side of the wire; bodies without a
    ``Content-Length`` are read to EOF, which ``Connection: close``
    servers terminate naturally.  Malformed or over-limit responses
    raise :class:`ProtocolError` with a 502 status (the router answers
    for a broken upstream).
    """
    head = bytearray()
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(502, "truncated upstream response") from exc
        except asyncio.LimitOverrunError as exc:
            raise ProtocolError(502, "upstream response head too large") from exc
        head += line
        if len(head) > MAX_HEAD_BYTES:
            raise ProtocolError(502, "upstream response head too large")
        if line == b"\r\n":
            break

    try:
        lines = bytes(head).decode("latin-1").split("\r\n")
        version, status_text, _ = (lines[0] + "  ").split(" ", 2)
        status = int(status_text)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(502, "malformed upstream status line") from exc
    if not version.startswith("HTTP/1."):
        raise ProtocolError(502, f"unsupported upstream protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(502, f"malformed upstream header {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError(502, "invalid upstream Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(502, "invalid upstream Content-Length")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(502, "truncated upstream body") from exc
    else:
        body = await reader.read(MAX_BODY_BYTES + 1)
        if len(body) > MAX_BODY_BYTES:
            raise ProtocolError(502, "upstream body too large")
    return HTTPResponse(status=status, headers=headers, body=body)
