"""Consistent-hash front router for a sharded compile fleet.

One asyncio process that owns the public port of a fleet of
:class:`~repro.service.server.CompileService` worker shards
(:mod:`repro.service.fleet` spawns them).  Submissions are validated
with the *same* :func:`~repro.service.server.parse_submission` the
workers use, keyed with the same
:func:`~repro.exec.hashing.point_key`, and routed over a consistent
hash ring — so identical submissions always land on the same shard,
which preserves the per-worker coalescing ("exactly one execution")
and keeps each shard's hot/disk cache tiers maximally local.

Routing mechanics:

* **Hash ring** — :class:`HashRing` places ``replicas`` virtual nodes
  per shard on a sha256 ring; a point key routes to the first virtual
  node clockwise.  Removing a shard only remaps the keys it owned
  (≈ 1/N of the space), so a shard loss degrades cache locality for
  its slice only — the survivors' hot tiers are untouched.
* **Shard loss** — a connection failure marks the shard dead, drops it
  from the ring, and re-routes the request to the next owner; the
  request is retried across survivors until none remain (then 503).
* **Graduated load-shedding** — when a worker answers 429 for a
  ``full`` submission the router does not give up: it retries the same
  shard with ``mode: "cache_only"`` (a stale-ok answer from the
  hot/disk tiers costs no execution slot), and on a cache miss retries
  with ``mode: "lint_only"`` (a degraded static analysis from the
  worker's side thread).  Only when the whole ladder is exhausted does
  the client see the original ``429`` + ``Retry-After``.
* **Fleet metrics** — ``GET /metrics`` aggregates every shard's
  ``/metrics`` into one document: counters summed, p50/p99 latency
  histograms merged bucket-wise
  (:meth:`~repro.perf.LatencyHistogram.merge`), cache/hot-tier stats
  summed, per-shard snapshots preserved under ``shards``.

The proxy path forwards the *original* request body bytes
(:class:`~repro.service.protocol.RawJSON`) and relays the worker's
response body verbatim, so a fleet answer is byte-identical to the
single-process answer for the same submission.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec.hashing import code_version, point_key_strict
from ..perf import LatencyHistogram
from .protocol import (
    MAX_HEAD_BYTES,
    HTTPRequest,
    HTTPResponse,
    ProtocolError,
    RawJSON,
    read_request,
    read_response,
    render_request,
    render_response,
)
from .server import ServiceMetrics, parse_submission

__all__ = ["HashRing", "RouterConfig", "FleetRouter"]


class HashRing:
    """Consistent hash ring over named shards (sha256 virtual nodes).

    Each shard contributes ``replicas`` virtual nodes at
    ``sha256(f"{shard}#{i}")`` positions; a key routes to the first
    virtual node at or clockwise of ``sha256(key)``.  Lookups are a
    binary search; add/remove rebuild the (small) sorted point list.

    Example:
        >>> ring = HashRing(["shard-0", "shard-1"])
        >>> ring.route("a" * 64) in ("shard-0", "shard-1")
        True
        >>> ring.route("a" * 64) == ring.route("a" * 64)  # deterministic
        True
    """

    def __init__(self, shards: Sequence[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._shards: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        for shard in shards:
            self.add(shard)

    @staticmethod
    def _position(label: str) -> int:
        return int.from_bytes(
            hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def shards(self) -> Tuple[str, ...]:
        """The live shard names, in insertion order."""
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def _rebuild(self) -> None:
        points = []
        for shard in self._shards:
            for i in range(self.replicas):
                points.append((self._position(f"{shard}#{i}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def add(self, shard: str) -> None:
        """Add ``shard``; no-op if already present."""
        if shard in self._shards:
            return
        self._shards.append(shard)
        self._rebuild()

    def remove(self, shard: str) -> None:
        """Remove ``shard``; no-op if absent.

        Only the keys the shard owned remap (to their next-clockwise
        owner) — every other key's route is unchanged.
        """
        if shard not in self._shards:
            return
        self._shards.remove(shard)
        self._rebuild()

    def route(self, key: str) -> str:
        """The owning shard for ``key``.

        Raises ``LookupError`` when the ring is empty.
        """
        if not self._points:
            raise LookupError("hash ring is empty (no live shards)")
        position = self._position(key)
        index = bisect.bisect_left(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of one :class:`FleetRouter` instance.

    Attributes:
        host: listen address.
        port: listen port (``0`` = ephemeral; bound port published as
            ``FleetRouter.port``).
        replicas: virtual nodes per shard on the hash ring.
        forward_timeout: seconds to wait for a worker connection +
            response before declaring the shard dead (``None`` = no
            limit — workers own the request deadline).
        shed: enable the graduated load-shedding ladder (429 →
            cache_only → lint_only → 429).
        retry_after: ``Retry-After`` hint (seconds) for requests the
            router itself must reject.
        allow_fault_kinds: accept underscore-prefixed fault-injection
            kinds at the routing layer (must mirror the workers'
            setting, or routing rejects what a worker would accept).
    """

    host: str = "127.0.0.1"
    port: int = 8355
    replicas: int = 64
    forward_timeout: Optional[float] = None
    shed: bool = True
    retry_after: float = 1.0
    allow_fault_kinds: bool = False


class FleetRouter:
    """The front process of a sharded compile fleet.

    Owns the public port; proxies ``/v1/compile`` and ``/v1/sweep`` to
    worker shards by consistent hash of the submission's point key, and
    aggregates ``/healthz`` + ``/metrics`` fleet-wide.

    ``shards`` maps shard name → ``(host, port)``.  The router does not
    spawn workers — :class:`~repro.service.fleet.CompileFleet` does —
    so it can also front externally managed processes.
    """

    def __init__(
        self,
        shards: Dict[str, Tuple[str, int]],
        config: Optional[RouterConfig] = None,
    ):
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        self.config = config or RouterConfig()
        self.shards = dict(shards)
        self.ring = HashRing(list(shards), replicas=self.config.replicas)
        self.dead: Dict[str, str] = {}  # name -> reason
        self.metrics = ServiceMetrics()
        self.metrics.counters.update(
            {
                "routed": 0,
                "shard_errors": 0,
                "shed_cache_only": 0,
                "shed_lint_only": 0,
                "shed_exhausted": 0,
                "rejected_no_shards": 0,
            }
        )
        self.port: Optional[int] = None
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._code: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the public listener."""
        # The first code_version() call hashes every package source
        # file from disk — keep it off the event loop.
        self._code = await asyncio.get_running_loop().run_in_executor(
            None, code_version
        )
        self._server = await asyncio.start_server(
            self._handle_conn,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_HEAD_BYTES + 4096,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Stop accepting; the fleet supervisor drains the workers."""
        self._draining = True
        await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun."""
        return self._draining

    def mark_dead(self, shard: str, reason: str) -> None:
        """Drop ``shard`` from the ring; its keys remap to survivors."""
        if shard in self.dead:
            return
        self.dead[shard] = reason
        self.ring.remove(shard)
        self.metrics.bump("shard_errors")

    # ------------------------------------------------------------------
    # HTTP plumbing (mirrors CompileService._handle_conn)
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        status, payload, extra = 500, {"ok": False, "error": "internal"}, None
        respond = True
        try:
            request = await read_request(reader)
            if request is None:
                respond = False
                return
            self.metrics.bump("requests")
            t0 = time.perf_counter()
            status, payload, extra = await self._dispatch(request)
            self.metrics.observe_latency("request", time.perf_counter() - t0)
        except ProtocolError as exc:
            self.metrics.bump("bad_requests")
            status, payload, extra = (
                exc.status,
                {
                    "ok": False,
                    "error": str(exc),
                    "error_type": "ProtocolError",
                },
                None,
            )
        except Exception as exc:  # never let a request kill the loop
            status, payload, extra = (
                500,
                {
                    "ok": False,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                },
                None,
            )
        finally:
            try:
                if respond:
                    writer.write(render_response(status, payload, extra))
                    await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: HTTPRequest
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, await self._health_payload(), None
        if route == ("GET", "/metrics"):
            return 200, await self.metrics_payload(), None
        if route == ("POST", "/v1/compile"):
            submission = request.json()
            if not isinstance(submission, dict):
                raise ProtocolError(400, "submission must be a JSON object")
            return await self.route_point(submission)
        if route == ("POST", "/v1/sweep"):
            document = request.json()
            points = (
                document.get("points")
                if isinstance(document, dict)
                else None
            )
            if not isinstance(points, list) or not points:
                raise ProtocolError(
                    400, 'sweep body must be {"points": [submission, ...]}'
                )
            rows = await asyncio.gather(
                *(
                    self.route_point(p)
                    if isinstance(p, dict)
                    else self._bad_submission("submission must be an object")
                    for p in points
                )
            )
            results = []
            for status, payload, _ in rows:
                if isinstance(payload, RawJSON):
                    payload = json.loads(payload.data)
                results.append(dict(payload, status=status))
            return 200, {"results": results}, None
        if request.path in ("/healthz", "/metrics", "/v1/compile", "/v1/sweep"):
            raise ProtocolError(405, f"{request.method} not allowed here")
        raise ProtocolError(404, f"no route for {request.path}")

    async def _bad_submission(self, message: str):
        return 400, {
            "ok": False,
            "error": message,
            "error_type": "ProtocolError",
        }, None

    # ------------------------------------------------------------------
    # routing + shedding
    # ------------------------------------------------------------------
    async def route_point(
        self, submission: Dict[str, object]
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        """Route one submission to its owning shard; returns the response.

        The submission is validated (and the routing key derived)
        exactly as a worker would, so a malformed submission is a local
        ``400`` and a valid one lands on the shard whose caches know
        it.  Shard failures re-route across survivors; worker
        backpressure walks the shedding ladder.
        """
        self.metrics.bump("submissions")
        try:
            point, _, mode = parse_submission(
                submission,
                allow_fault_kinds=self.config.allow_fault_kinds,
            )
        except Exception as exc:
            self.metrics.bump("bad_requests")
            return 400, {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }, None
        if self._draining:
            self.metrics.bump("rejected_draining")
            return 503, {
                "ok": False,
                "error": "fleet is draining; resubmit elsewhere",
                "error_type": "ServiceDraining",
            }, None
        key = point_key_strict(point, self._code)

        body = RawJSON(
            json.dumps(submission, sort_keys=True).encode("utf-8")
        )
        while True:
            try:
                shard = self.ring.route(key)
            except LookupError:
                self.metrics.bump("rejected_no_shards")
                return 503, {
                    "ok": False,
                    "error": "no live shards",
                    "error_type": "ServiceUnavailable",
                }, None
            try:
                response = await self._forward(shard, body)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                # Shard loss: drop it from the ring and re-route. Only
                # the keys it owned remap — survivors' caches are
                # untouched.
                self.mark_dead(shard, f"{type(exc).__name__}: {exc}")
                continue
            self.metrics.bump("routed")
            self.metrics.bump(f"routed_{shard}")
            if (
                response.status == 429
                and mode == "full"
                and self.config.shed
            ):
                return await self._shed(shard, submission, response)
            return self._relay(response)

    async def _forward(
        self, shard: str, body: RawJSON, path: str = "/v1/compile"
    ) -> HTTPResponse:
        """One request/response exchange with a worker shard."""
        host, port = self.shards[shard]
        exchange = self._exchange(host, port, "POST", path, body)
        if self.config.forward_timeout is not None:
            return await asyncio.wait_for(
                exchange, self.config.forward_timeout
            )
        return await exchange

    async def _exchange(
        self, host: str, port: int, method: str, path: str, payload
    ) -> HTTPResponse:
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_HEAD_BYTES + 4096
        )
        try:
            writer.write(render_request(method, path, payload, host=host))
            await writer.drain()
            return await read_response(reader)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _shed(
        self,
        shard: str,
        submission: Dict[str, object],
        rejection: HTTPResponse,
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        """Walk the degradation ladder after a worker 429.

        ``full`` got backpressured; try ``cache_only`` (stale-ok answer
        from the shard's hot/disk tiers — no execution slot needed),
        then ``lint_only`` (static analysis from the worker's side
        thread).  Each rung that fails falls through; when the ladder
        is exhausted the client gets the *original* 429, Retry-After
        intact, so a well-behaved client backs off exactly as if the
        router weren't there.
        """
        for mode, counter in (
            ("cache_only", "shed_cache_only"),
            ("lint_only", "shed_lint_only"),
        ):
            degraded = RawJSON(
                json.dumps(
                    dict(submission, mode=mode), sort_keys=True
                ).encode("utf-8")
            )
            try:
                response = await self._forward(shard, degraded)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                break  # shard died mid-ladder; the 429 still stands
            if response.status == 200:
                self.metrics.bump(counter)
                return self._relay(response)
        self.metrics.bump("shed_exhausted")
        return self._relay(rejection)

    def _relay(
        self, response: HTTPResponse
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        """Pass a worker response through byte-for-byte."""
        extra = None
        if "retry-after" in response.headers:
            extra = {"Retry-After": response.headers["retry-after"]}
        body = response.body
        if body.endswith(b"\n"):
            body = body[:-1]  # render_response re-adds the newline
        return response.status, RawJSON(body), extra

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    async def _poll_shards(self, path: str) -> Dict[str, object]:
        """Fetch ``path`` from every live shard concurrently."""

        async def fetch(name: str):
            host, port = self.shards[name]
            try:
                response = await asyncio.wait_for(
                    self._exchange(host, port, "GET", path, None),
                    self.config.forward_timeout or 10.0,
                )
                return name, response.json()
            except Exception as exc:
                return name, {"ok": False, "error": str(exc)}

        live = self.ring.shards
        results = await asyncio.gather(*(fetch(name) for name in live))
        return dict(results)

    async def _health_payload(self) -> Dict[str, object]:
        shard_health = await self._poll_shards("/healthz")
        return {
            "ok": any(
                isinstance(h, dict) and h.get("ok")
                for h in shard_health.values()
            ),
            "draining": self._draining,
            "shards": shard_health,
            "live": list(self.ring.shards),
            "dead": dict(self.dead),
        }

    async def metrics_payload(self) -> Dict[str, object]:
        """The fleet-wide ``/metrics`` document.

        Counters are summed across shards, latency histograms merged
        bucket-wise (fleet-true p50/p99, not an average of averages),
        disk/hot cache stats summed; each shard's raw snapshot is
        preserved under ``shards`` for per-shard debugging.
        """
        shard_metrics = await self._poll_shards("/metrics")
        counters: Dict[str, int] = {}
        latency: Dict[str, LatencyHistogram] = {}
        cache: Dict[str, float] = {}
        hot: Dict[str, float] = {}
        queue_depth = 0
        for payload in shard_metrics.values():
            if not isinstance(payload, dict) or "counters" not in payload:
                continue  # unreachable shard: error stub, nothing to sum
            for name, value in payload["counters"].items():
                counters[name] = counters.get(name, 0) + int(value)
            queue_depth += payload.get("service", {}).get("queue_depth", 0)
            for name, histogram in (payload.get("latency") or {}).items():
                try:
                    latency.setdefault(
                        name, LatencyHistogram()
                    ).merge(histogram)
                except (ValueError, KeyError, TypeError):
                    pass  # geometry drift across versions: skip, don't 500
            for target, source in ((cache, "cache"), (hot, "hot_cache")):
                stats = payload.get(source)
                if isinstance(stats, dict):
                    for name, value in stats.items():
                        if isinstance(value, (int, float)):
                            target[name] = target.get(name, 0) + value
        for tier in (cache, hot):
            lookups = tier.get("hits", 0) + tier.get("misses", 0)
            if "hit_rate" in tier:
                tier["hit_rate"] = (
                    tier.get("hits", 0) / lookups if lookups else 0.0
                )
        router_snapshot = self.metrics.as_dict()
        return {
            "router": {
                "draining": self._draining,
                "live_shards": list(self.ring.shards),
                "dead_shards": dict(self.dead),
                "counters": router_snapshot["counters"],
                "latency": router_snapshot["latency"],
            },
            "fleet": {
                "shards": len(self.shards),
                "live": len(self.ring),
                "queue_depth": queue_depth,
                "counters": counters,
                "latency": {
                    name: histogram.as_dict()
                    for name, histogram in latency.items()
                },
                "cache": cache or None,
                "hot_cache": hot or None,
            },
            "shards": shard_metrics,
        }
