"""`CompileFleet` — supervisor for a sharded compile fleet.

Spawns N :class:`~repro.service.server.CompileService` worker
*processes* (``multiprocessing`` spawn context — clean interpreters,
no inherited event loops or locks), each bound to its own ephemeral
port with its own hot tier and its own slice of the on-disk cache
(``<cache>/shard-i``), then fronts them with a consistent-hash
:class:`~repro.service.router.FleetRouter` on the public port.

Why processes, not threads: one CPython process serializes compiles on
the GIL, so a fleet's throughput lever on repeat-heavy traffic is
*aggregate hot-tier capacity* — consistent hashing partitions the key
space, so four shards hold four hot tiers' worth of distinct circuits,
and a working set that thrashes one shard's LRU fits the fleet's.
On multi-core hosts the same layout also buys CPU parallelism for the
cold misses, with no code change.

Lifecycle:

* **Boot** — each worker reports its bound port back over a pipe
  before the router starts; a worker that fails to bind fails the
  whole boot (and the already-started workers are cleaned up).
* **SIGTERM** — the CLI wiring (``merced serve --shards N``) drains
  the router first (public port answers 503), then SIGTERMs every
  worker, which runs the single-process graceful drain (finish
  in-flight, flush cache temp files); workers that outlive the grace
  period are killed.
* **Embedding** — :class:`FleetThread` mirrors
  :class:`~repro.service.server.ServiceThread`: the whole fleet behind
  one blocking ``start()``/``stop()`` pair, for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import threading
from dataclasses import asdict, replace
from typing import Dict, List, Optional, Tuple

from .router import FleetRouter, RouterConfig
from .server import CompileService, ServiceConfig

__all__ = ["CompileFleet", "FleetThread"]


def _worker_main(conn, config_kwargs: Dict[str, object]) -> None:
    """Worker-process entry: run one CompileService until SIGTERM.

    Reports ``("ready", port)`` or ``("error", message)`` over ``conn``
    once the listener is (or fails to be) bound, then serves until
    SIGTERM/SIGINT and drains gracefully.  Top-level so the spawn
    context can import it.
    """

    async def run() -> None:
        service = CompileService(ServiceConfig(**config_kwargs))
        try:
            await service.start()
        except Exception as exc:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
            return
        conn.send(("ready", service.port))
        conn.close()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        await service.drain()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass


class CompileFleet:
    """N worker shards + one router, managed as a unit.

    Blocking process management (spawn/signal/join) plus an async
    router lifecycle — the split mirrors how the pieces run: workers
    are OS processes, the router lives on the caller's event loop.

    Example (see :class:`FleetThread` for the blocking embedding)::

        fleet = CompileFleet(shards=4, config=ServiceConfig(...))
        fleet.start_workers()          # blocking: spawn + wait for ports
        await fleet.start()            # router binds; fleet.port is set
        ...
        await fleet.drain()            # router stops accepting
        fleet.shutdown()               # SIGTERM workers, reap
    """

    def __init__(
        self,
        shards: int = 2,
        config: Optional[ServiceConfig] = None,
        router_config: Optional[RouterConfig] = None,
        boot_timeout: float = 60.0,
    ):
        if shards < 1:
            raise ValueError(f"a fleet needs >= 1 shard, got {shards}")
        self.n_shards = shards
        self.config = config or ServiceConfig()
        self.router_config = router_config or RouterConfig()
        self.boot_timeout = boot_timeout
        self.workers: Dict[str, multiprocessing.process.BaseProcess] = {}
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self.router: Optional[FleetRouter] = None

    @property
    def port(self) -> Optional[int]:
        """The router's bound public port, once :meth:`start` returned."""
        return self.router.port if self.router is not None else None

    def _shard_config(self, name: str) -> ServiceConfig:
        """Per-shard ServiceConfig: own ephemeral port, own cache slice."""
        cache_dir = self.config.cache_dir
        if cache_dir:
            cache_dir = os.path.join(cache_dir, name)
        return replace(
            self.config, port=0, cache_dir=cache_dir, shard_name=name
        )

    def start_workers(self) -> Dict[str, Tuple[str, int]]:
        """Spawn every worker and wait for its bound port (blocking).

        Raises ``RuntimeError`` (after cleaning up whatever did start)
        if any worker fails to report ready within ``boot_timeout``.
        """
        ctx = multiprocessing.get_context("spawn")
        pending: List[Tuple[str, object]] = []
        try:
            for i in range(self.n_shards):
                name = f"shard-{i}"
                shard_config = self._shard_config(name)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, asdict(shard_config)),
                    name=f"merced-{name}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.workers[name] = process
                pending.append((name, parent_conn))
            for name, parent_conn in pending:
                if not parent_conn.poll(self.boot_timeout):
                    raise RuntimeError(f"{name} did not report in time")
                status, value = parent_conn.recv()
                if status != "ready":
                    raise RuntimeError(f"{name} failed to start: {value}")
                self.addresses[name] = (self.config.host, int(value))
        except BaseException:
            self.shutdown(grace=2.0)
            raise
        finally:
            for _, parent_conn in pending:
                parent_conn.close()
        return dict(self.addresses)

    async def start(self) -> None:
        """Bind the router over the (already started) worker shards."""
        if not self.addresses:
            raise RuntimeError("call start_workers() before start()")
        self.router = FleetRouter(self.addresses, self.router_config)
        await self.router.start()

    async def drain(self) -> None:
        """Stop the public listener; workers keep finishing in-flight."""
        if self.router is not None:
            await self.router.drain()

    def stop_worker(self, name: str, sig: int = signal.SIGTERM) -> None:
        """Signal one worker (fleet tests use SIGKILL for shard loss)."""
        process = self.workers.get(name)
        if process is not None and process.is_alive() and process.pid:
            os.kill(process.pid, sig)

    def shutdown(self, grace: float = 30.0) -> None:
        """SIGTERM every worker, join with ``grace``, kill stragglers."""
        for name in self.workers:
            self.stop_worker(name, signal.SIGTERM)
        for process in self.workers.values():
            process.join(grace)
        for process in self.workers.values():
            if process.is_alive():
                process.kill()
                process.join(5.0)


class FleetThread:
    """Run a whole :class:`CompileFleet` behind a blocking start/stop.

    The fleet counterpart of
    :class:`~repro.service.server.ServiceThread` — worker processes are
    spawned from the calling thread, the router's event loop runs on a
    daemon thread::

        handle = FleetThread(shards=4, config=ServiceConfig(...))
        handle.start()                  # blocks until the fleet is up
        client = ServiceClient(port=handle.port)
        ...
        handle.stop()                   # drain router, SIGTERM workers
    """

    def __init__(
        self,
        shards: int = 2,
        config: Optional[ServiceConfig] = None,
        router_config: Optional[RouterConfig] = None,
        boot_timeout: float = 60.0,
    ):
        self.fleet = CompileFleet(
            shards=shards,
            config=config,
            router_config=router_config,
            boot_timeout=boot_timeout,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> Optional[int]:
        """The router's public port once :meth:`start` has returned."""
        return self.fleet.port

    @property
    def router(self) -> Optional[FleetRouter]:
        """The live router (for metrics/ring inspection in tests)."""
        return self.fleet.router

    def start(self, timeout: float = 120.0) -> "FleetThread":
        """Spawn workers, then the router loop; blocks until bound."""
        self.fleet.start_workers()
        self._thread = threading.Thread(
            target=self._run, name="merced-fleet", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            self.fleet.shutdown(grace=2.0)
            raise RuntimeError("fleet router failed to start in time")
        if self._startup_error is not None:
            self.fleet.shutdown(grace=2.0)
            raise RuntimeError(
                f"fleet router failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            try:
                self._loop.run_until_complete(self.fleet.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._started.set()
            self._loop.run_forever()
        finally:
            self._loop.close()

    def stop_worker(self, name: str, sig: int = signal.SIGTERM) -> None:
        """Signal one worker shard (shard-loss tests)."""
        self.fleet.stop_worker(name, sig)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the router, stop its loop, then shut the workers down."""
        if self._loop is not None and not self._loop.is_closed():
            if self.fleet.router is not None:
                future = asyncio.run_coroutine_threadsafe(
                    self.fleet.drain(), self._loop
                )
                try:
                    future.result(timeout)
                except Exception:
                    pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout)
        self.fleet.shutdown()
