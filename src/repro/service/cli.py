"""``merced serve`` and ``merced submit`` — the service's CLI surface.

``serve`` runs a :class:`~repro.service.server.CompileService` in the
foreground until SIGTERM/SIGINT, then drains gracefully (finish
in-flight, reject new, flush cache temp files).  With ``--shards N``
(N > 1) it instead boots a sharded fleet
(:mod:`repro.service.fleet`): N worker processes behind one
consistent-hash router on the public port.  ``submit`` is the matching
client: it posts circuits to a running service (or fleet — same
protocol, same port shape) and prints one JSON row per point, honoring
``Retry-After`` backpressure with bounded jittered retries
(``--no-retry`` to fail fast).

Examples::

    merced serve --port 8356 --cache ~/.merced-cache --workers 4
    merced serve --shards 4 --cache ~/.merced-cache
    merced submit s27 s510 --lk 16 24 --url http://127.0.0.1:8356
    merced submit --bench mydesign.bench --lk 24 --json results.json
    merced submit --metrics-only
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import ReproError, ServiceError
from .client import ServiceClient
from .fleet import CompileFleet
from .router import RouterConfig
from .server import CompileService, ServiceConfig

__all__ = [
    "build_serve_parser",
    "serve_main",
    "build_submit_parser",
    "submit_main",
]


def build_serve_parser() -> argparse.ArgumentParser:
    """Construct the ``merced serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="merced serve",
        description=(
            "Long-running compile service: accepts compile/sweep "
            "submissions over HTTP/JSON, routes them through the sweep "
            "farm with request coalescing, bounded admission, enforced "
            "per-request deadlines, and an on-disk result cache.  "
            "SIGTERM drains gracefully."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port",
        type=int,
        default=8356,
        help="listen port (0 picks a free port and prints it)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="execution threads = max concurrently running requests",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        metavar="N",
        help="admitted-but-unfinished bound; beyond it submissions get 429",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="farm worker processes per execution (1 = inline, default)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SEC",
        help="default + ceiling per-request deadline (enforced off the "
        "main thread by the watchdog)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra farm attempts per failing request",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="on-disk result cache directory (created if missing)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SEC",
        help="how long a drain waits for in-flight work",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="worker shard processes; >1 boots a consistent-hash fleet "
        "(router on --port, one hot tier + cache slice per shard)",
    )
    parser.add_argument(
        "--hot-entries",
        type=int,
        default=512,
        metavar="N",
        help="in-memory hot-tier entries per shard (0 disables)",
    )
    parser.add_argument(
        "--hot-bytes",
        type=int,
        default=64 << 20,
        metavar="B",
        help="in-memory hot-tier payload-byte bound per shard",
    )
    parser.add_argument(
        "--lint-capacity",
        type=int,
        default=8,
        metavar="N",
        help="pending lint-only (degraded) answers per shard "
        "(0 disables the shedding ladder's lint rung)",
    )
    parser.add_argument(
        "--no-shed",
        action="store_true",
        help="fleet only: disable the router's graduated load-shedding "
        "(429s pass through instead of degrading to cached/lint answers)",
    )
    return parser


async def _serve(config: ServiceConfig) -> None:
    """Run the service until SIGTERM/SIGINT, then drain."""
    service = CompileService(config)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-POSIX loops
            pass
    print(
        f"merced serve: listening on http://{config.host}:{service.port} "
        f"(workers={config.workers}, queue={config.queue_capacity}, "
        f"cache={config.cache_dir or 'off'})",
        flush=True,
    )
    await stop.wait()
    print("merced serve: draining (finish in-flight, reject new)", flush=True)
    await service.drain()
    counters = service.metrics.as_dict()["counters"]
    print(
        f"merced serve: drained; {counters['admitted']} executed, "
        f"{counters['coalesced']} coalesced, "
        f"{counters['rejected_backpressure']} rejected",
        flush=True,
    )


async def _serve_fleet(fleet: CompileFleet) -> None:
    """Run the (already worker-booted) fleet router until SIGTERM."""
    await fleet.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-POSIX loops
            pass
    router = fleet.router_config
    print(
        f"merced serve: fleet of {fleet.n_shards} shards behind "
        f"http://{router.host}:{fleet.port} "
        f"(cache={fleet.config.cache_dir or 'off'}, "
        f"hot={fleet.config.hot_entries}/shard)",
        flush=True,
    )
    await stop.wait()
    print("merced serve: draining fleet (router first, then shards)",
          flush=True)
    await fleet.drain()


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``merced serve``; returns the exit code."""
    args = build_serve_parser().parse_args(argv)
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=args.cache,
        drain_grace=args.drain_grace,
        hot_entries=args.hot_entries,
        hot_bytes=args.hot_bytes,
        lint_capacity=args.lint_capacity,
    )
    try:
        if args.shards == 1:
            asyncio.run(_serve(config))
        else:
            fleet = CompileFleet(
                shards=args.shards,
                config=config,
                router_config=RouterConfig(
                    host=args.host, port=args.port, shed=not args.no_shed
                ),
            )
            fleet.start_workers()
            try:
                asyncio.run(_serve_fleet(fleet))
            finally:
                fleet.shutdown(grace=config.drain_grace)
                print("merced serve: fleet drained", flush=True)
    except KeyboardInterrupt:
        pass
    except (OSError, RuntimeError) as exc:  # port in use, shard boot, ...
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    """Construct the ``merced submit`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="merced submit",
        description=(
            "Submit compile points to a running 'merced serve' instance "
            "and print one JSON row per point (identical payloads to the "
            "inline pipeline)."
        ),
    )
    parser.add_argument("circuits", nargs="*", help="benchmark names")
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="FILE",
        help="also submit an ISCAS89 .bench file (repeatable)",
    )
    parser.add_argument(
        "--lk",
        type=int,
        nargs="+",
        default=[16],
        metavar="L",
        help="l_k grid (default: 16)",
    )
    parser.add_argument("--seed", type=int, default=1996, help="flow RNG seed")
    parser.add_argument(
        "--beta", type=int, default=50, help="SCC cut budget factor (Eq. 6)"
    )
    parser.add_argument(
        "--max-sources", type=int, default=None, help="Dijkstra source cap"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-point deadline request (service may cap it lower)",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8356",
        help="service endpoint (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the raw result rows as a JSON array to FILE",
    )
    parser.add_argument(
        "--metrics-only",
        action="store_true",
        help="just fetch and print /metrics from the service, then exit",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=4,
        metavar="N",
        help="busy (429) retries, honoring the service's Retry-After "
        "hint with jittered exponential backoff (default: %(default)s)",
    )
    parser.add_argument(
        "--no-retry",
        action="store_true",
        help="fail fast on 429 backpressure instead of retrying",
    )
    parser.add_argument(
        "--optimize",
        choices=["fast", "anneal"],
        default=None,
        help="ask the service to refine each point's partition with the "
        "local-search tier (same semantics as 'merced --optimize')",
    )
    parser.add_argument(
        "--optimize-budget",
        type=float,
        default=5.0,
        metavar="SEC",
        help="advisory refinement budget per point (deterministic "
        "schedule; default: 5.0)",
    )
    return parser


def submit_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``merced submit``; returns the exit code.

    Exit status: 0 when every submitted point succeeded, 1 when any
    degraded or was rejected, 2 for usage/transport errors.
    """
    args = build_submit_parser().parse_args(argv)
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    try:
        client = ServiceClient.from_url(args.url)
        client.retries = args.retries
        client.retry_on_busy = not args.no_retry
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.metrics_only:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0

        if not args.circuits and not args.bench:
            print(
                "error: give benchmark names and/or --bench FILE",
                file=sys.stderr,
            )
            return 2

        submissions: List[dict] = []
        base = {"seed": args.seed, "beta": args.beta}
        if args.max_sources is not None:
            base["max_sources"] = args.max_sources
        if args.optimize is not None:
            base["optimize"] = args.optimize
            base["optimize_budget"] = args.optimize_budget
        if args.timeout is not None:
            base["timeout"] = args.timeout
        for lk in args.lk:
            for name in args.circuits:
                submissions.append(dict(base, circuit=name, lk=lk))
            for path in args.bench:
                text = Path(path).read_text()
                submissions.append(
                    dict(base, circuit=Path(path).stem, bench=text, lk=lk)
                )

        rows = client.sweep(submissions)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ReproError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for row in rows:
        print(json.dumps(row, sort_keys=True))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.json}", file=sys.stderr)
    degraded = sum(
        1 for row in rows if not row.get("ok") or row.get("status") != 200
    )
    return 1 if degraded else 0
