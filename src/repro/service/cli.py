"""``merced serve`` and ``merced submit`` — the service's CLI surface.

``serve`` runs a :class:`~repro.service.server.CompileService` in the
foreground until SIGTERM/SIGINT, then drains gracefully (finish
in-flight, reject new, flush cache temp files).  ``submit`` is the
matching client: it posts circuits to a running service over the same
protocol the tests and any future sharding layer use, and prints one
JSON row per point.

Examples::

    merced serve --port 8356 --cache ~/.merced-cache --workers 4
    merced submit s27 s510 --lk 16 24 --url http://127.0.0.1:8356
    merced submit --bench mydesign.bench --lk 24 --json results.json
    merced submit --metrics-only
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import ReproError, ServiceError
from .client import ServiceClient
from .server import CompileService, ServiceConfig

__all__ = [
    "build_serve_parser",
    "serve_main",
    "build_submit_parser",
    "submit_main",
]


def build_serve_parser() -> argparse.ArgumentParser:
    """Construct the ``merced serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="merced serve",
        description=(
            "Long-running compile service: accepts compile/sweep "
            "submissions over HTTP/JSON, routes them through the sweep "
            "farm with request coalescing, bounded admission, enforced "
            "per-request deadlines, and an on-disk result cache.  "
            "SIGTERM drains gracefully."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port",
        type=int,
        default=8356,
        help="listen port (0 picks a free port and prints it)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="execution threads = max concurrently running requests",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        metavar="N",
        help="admitted-but-unfinished bound; beyond it submissions get 429",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="farm worker processes per execution (1 = inline, default)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SEC",
        help="default + ceiling per-request deadline (enforced off the "
        "main thread by the watchdog)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra farm attempts per failing request",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="on-disk result cache directory (created if missing)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SEC",
        help="how long a drain waits for in-flight work",
    )
    return parser


async def _serve(config: ServiceConfig) -> None:
    """Run the service until SIGTERM/SIGINT, then drain."""
    service = CompileService(config)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-POSIX loops
            pass
    print(
        f"merced serve: listening on http://{config.host}:{service.port} "
        f"(workers={config.workers}, queue={config.queue_capacity}, "
        f"cache={config.cache_dir or 'off'})",
        flush=True,
    )
    await stop.wait()
    print("merced serve: draining (finish in-flight, reject new)", flush=True)
    await service.drain()
    counters = service.metrics.as_dict()["counters"]
    print(
        f"merced serve: drained; {counters['admitted']} executed, "
        f"{counters['coalesced']} coalesced, "
        f"{counters['rejected_backpressure']} rejected",
        flush=True,
    )


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``merced serve``; returns the exit code."""
    args = build_serve_parser().parse_args(argv)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=args.cache,
        drain_grace=args.drain_grace,
    )
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # port in use, bad cache dir, ...
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    """Construct the ``merced submit`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="merced submit",
        description=(
            "Submit compile points to a running 'merced serve' instance "
            "and print one JSON row per point (identical payloads to the "
            "inline pipeline)."
        ),
    )
    parser.add_argument("circuits", nargs="*", help="benchmark names")
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="FILE",
        help="also submit an ISCAS89 .bench file (repeatable)",
    )
    parser.add_argument(
        "--lk",
        type=int,
        nargs="+",
        default=[16],
        metavar="L",
        help="l_k grid (default: 16)",
    )
    parser.add_argument("--seed", type=int, default=1996, help="flow RNG seed")
    parser.add_argument(
        "--beta", type=int, default=50, help="SCC cut budget factor (Eq. 6)"
    )
    parser.add_argument(
        "--max-sources", type=int, default=None, help="Dijkstra source cap"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-point deadline request (service may cap it lower)",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8356",
        help="service endpoint (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the raw result rows as a JSON array to FILE",
    )
    parser.add_argument(
        "--metrics-only",
        action="store_true",
        help="just fetch and print /metrics from the service, then exit",
    )
    return parser


def submit_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``merced submit``; returns the exit code.

    Exit status: 0 when every submitted point succeeded, 1 when any
    degraded or was rejected, 2 for usage/transport errors.
    """
    args = build_submit_parser().parse_args(argv)
    try:
        client = ServiceClient.from_url(args.url)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.metrics_only:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0

        if not args.circuits and not args.bench:
            print(
                "error: give benchmark names and/or --bench FILE",
                file=sys.stderr,
            )
            return 2

        submissions: List[dict] = []
        base = {"seed": args.seed, "beta": args.beta}
        if args.max_sources is not None:
            base["max_sources"] = args.max_sources
        if args.timeout is not None:
            base["timeout"] = args.timeout
        for lk in args.lk:
            for name in args.circuits:
                submissions.append(dict(base, circuit=name, lk=lk))
            for path in args.bench:
                text = Path(path).read_text()
                submissions.append(
                    dict(base, circuit=Path(path).stem, bench=text, lk=lk)
                )

        rows = client.sweep(submissions)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ReproError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for row in rows:
        print(json.dumps(row, sort_keys=True))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.json}", file=sys.stderr)
    degraded = sum(
        1 for row in rows if not row.get("ok") or row.get("status") != 200
    )
    return 1 if degraded else 0
