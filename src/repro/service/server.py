"""`CompileService` — the long-running asyncio compile server.

One process, one event loop, a bounded thread-pool of execution slots.
Requests arrive over the minimal HTTP codec
(:mod:`repro.service.protocol`), are validated into
:class:`~repro.exec.task.SweepPoint` form, and are executed by the
hardened :class:`~repro.exec.pool.SweepFarm` on executor threads — off
the main thread, which is exactly the embedding the farm's deadline
watchdog (:mod:`repro.exec.watchdog`) was built for.

Core mechanics:

* **Coalescing** — in-flight requests are keyed by
  :func:`~repro.exec.hashing.point_key`; N identical concurrent
  submissions share one execution and all N get the (bit-identical)
  payload.  Completed results then serve later duplicates from the
  on-disk :class:`~repro.exec.cache.ResultCache`, so "exactly one
  execution" holds across the in-flight *and* the cached regime.
* **Backpressure** — admission is bounded by ``queue_capacity``
  primary (non-coalesced) requests; beyond that the service answers a
  ``429``-style JSON payload with a ``Retry-After`` hint instead of
  queueing unboundedly.
* **Deadlines** — every request carries a wall-clock budget
  (``timeout`` in the submission, capped by the service default).  The
  farm's watchdog enforces it inside the executor thread; a belt
  timeout in the event loop guarantees the client still gets a timeout
  row even if enforcement is impossible on the platform.
* **Graceful drain** — SIGTERM (wired by ``merced serve``) finishes
  in-flight work, answers new submissions with ``503``, flushes
  orphaned cache temp files, and only then releases the executor.
* **Hot tier** — above the on-disk :class:`~repro.exec.cache.ResultCache`
  sits a bounded in-memory :class:`~repro.exec.cache.HotCache` of
  already-serialized payload bytes.  A hot hit is answered on the event
  loop *before* admission — no executor hop, no disk I/O, no JSON
  re-serialization (the stored bytes are spliced into the response) —
  so repeat-hot circuits cost microseconds and never occupy an
  execution slot.
* **Degraded modes** — a submission may carry ``"mode"``:
  ``"cache_only"`` answers from the hot/disk tiers or 404s without
  touching admission, and ``"lint_only"`` returns a lint-only analysis
  of the circuit from a dedicated side executor.  The fleet router uses
  these as its graduated load-shedding ladder (full → cached → lint →
  429); they are equally callable by any direct client.
* **Observability** — ``GET /metrics`` aggregates the service
  counters, the service-level :class:`~repro.perf.PerfTrace` stage
  timers, p50/p99 request/execute latency histograms
  (:class:`~repro.perf.LatencyHistogram`), queue depth,
  :class:`~repro.exec.cache.CacheStats`, hot-tier stats, and the
  watchdog's armed/fired/unenforced counters.

Endpoints: ``GET /healthz``, ``GET /metrics``, ``POST /v1/compile``
(one submission object), ``POST /v1/sweep`` (``{"points": [...]}``,
each admitted/coalesced/rejected independently).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from ..circuits.library import load_circuit
from ..config import MercedConfig
from ..errors import ReproError
from ..exec.cache import HotCache, ResultCache
from ..exec.hashing import code_version, point_key_strict, short_key
from ..exec.pool import SweepFarm
from ..exec.task import SweepPoint, TaskResult, known_kinds
from ..exec.watchdog import watchdog_stats
from ..netlist.bench import parse_bench, write_bench
from ..perf import LatencyHistogram, PerfTrace
from .protocol import (
    MAX_HEAD_BYTES,
    HTTPRequest,
    ProtocolError,
    RawJSON,
    read_request,
    render_response,
)

__all__ = [
    "ServiceConfig",
    "ServiceMetrics",
    "CompileService",
    "ServiceThread",
    "parse_submission",
    "SUBMISSION_MODES",
]

#: MercedConfig field names accepted at a submission's top level.
_CONFIG_KEYS = tuple(f.name for f in fields(MercedConfig))

#: Non-config keys accepted at a submission's top level.
_SUBMISSION_KEYS = ("kind", "circuit", "bench", "params", "timeout", "mode")

#: Service-level execution modes a submission may request.
SUBMISSION_MODES = ("full", "cache_only", "lint_only")

#: Placeholder the hot path splices pre-serialized payload bytes over.
#: ``"value"`` sorts last among the envelope keys, so an ``rpartition``
#: on the quoted sentinel always finds the value slot even if a client
#: names a circuit after the sentinel string.
_HOT_SENTINEL = "__MERCED_HOT_PAYLOAD__"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`CompileService` instance.

    Attributes:
        host: listen address.
        port: listen port (``0`` = pick a free ephemeral port; the
            bound port is published as ``CompileService.port``).
        workers: executor threads = maximum concurrently *running*
            requests.
        queue_capacity: maximum admitted-but-unfinished primary
            requests (running + queued); beyond this, submissions are
            rejected with a ``429`` payload instead of queueing.
        jobs: farm worker processes per execution (``1`` = inline in
            the executor thread — the right default for a service that
            parallelizes across requests, not within them).
        timeout: default + ceiling per-request deadline in seconds
            (``None`` = no limit; a submission's own ``timeout`` may
            only lower it).
        retries: farm attempts beyond the first per request.
        cache_dir: on-disk result cache directory (``None`` = no cache;
            coalescing still works for concurrent duplicates).
        drain_grace: seconds :meth:`CompileService.drain` waits for
            in-flight work before giving up on it.
        retry_after: ``Retry-After`` hint (seconds) sent with
            backpressure rejections.
        belt_slack: extra seconds the event-loop belt timeout grants
            beyond the per-attempt deadlines before abandoning an
            execution whose in-thread watchdog failed to fire.
        allow_fault_kinds: admit underscore-prefixed fault-injection
            task kinds (``_sleep``/``_spin``/``_raise``/``_exit``/...)
            from the network.  **Off by default** — these kinds exist
            to exercise the farm's failure paths and would let any
            client kill the server process (``_exit``) or pin executor
            slots (``_sleep``/``_spin``); enable only for test
            deployments.
        hot_entries: in-memory hot-tier entry bound (``0`` disables the
            hot tier entirely).
        hot_bytes: in-memory hot-tier payload-byte bound.
        lint_capacity: maximum pending ``lint_only`` answers (they run
            on a dedicated side thread so shedding still degrades when
            every executor slot is busy); ``0`` disables lint-only
            answers (requests get 429 instead).
        shard_name: label for this process in ``/metrics`` — the fleet
            sets ``shard-0``..``shard-N``; empty for standalone serves.
    """

    host: str = "127.0.0.1"
    port: int = 8356
    workers: int = 2
    queue_capacity: int = 16
    jobs: int = 1
    timeout: Optional[float] = 300.0
    retries: int = 0
    cache_dir: Optional[str] = None
    drain_grace: float = 30.0
    retry_after: float = 1.0
    belt_slack: float = 5.0
    allow_fault_kinds: bool = False
    hot_entries: int = 512
    hot_bytes: int = 64 << 20
    lint_capacity: int = 8
    shard_name: str = ""


class ServiceMetrics:
    """Thread-safe counters + service-level stage timers.

    The execution path crosses threads (event loop → executor), so all
    mutation goes through a lock; :meth:`as_dict` snapshots are
    consistent.  Stage timers accumulate into a
    :class:`~repro.perf.PerfTrace` via its ``add_stage`` API —
    ``request`` (whole HTTP request) and ``execute`` (admission to farm
    completion, queue wait included).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.trace = PerfTrace(label="service")
        self.latency: Dict[str, LatencyHistogram] = {
            "request": LatencyHistogram(),
            "execute": LatencyHistogram(),
        }
        self.counters: Dict[str, int] = {
            "requests": 0,
            "bad_requests": 0,
            "submissions": 0,
            "admitted": 0,
            "coalesced": 0,
            "rejected_backpressure": 0,
            "rejected_draining": 0,
            "rejected_lint_queue": 0,
            "executed": 0,
            "cache_hits": 0,
            "hot_hits": 0,
            "hot_stores": 0,
            "cache_only_hits": 0,
            "cache_only_misses": 0,
            "lint_only_served": 0,
            "completed_ok": 0,
            "failed": 0,
            "timeouts": 0,
            "watchdog_missed": 0,
        }

    def bump(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def record_stage(self, name: str, seconds: float) -> None:
        """Fold one externally timed stage interval into the trace."""
        with self._lock:
            self.trace.add_stage(name, seconds)

    def observe_latency(self, name: str, seconds: float) -> None:
        """Record one latency sample on histogram ``name``."""
        with self._lock:
            histogram = self.latency.get(name)
            if histogram is None:
                histogram = self.latency[name] = LatencyHistogram()
            histogram.observe(seconds)

    def as_dict(self) -> Dict[str, object]:
        """Consistent snapshot of counters + perf trace + latency."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "perf": self.trace.to_dict(),
                "latency": {
                    name: histogram.as_dict()
                    for name, histogram in self.latency.items()
                },
            }


def parse_submission(
    submission: Dict[str, object],
    *,
    default_timeout: Optional[float] = None,
    allow_fault_kinds: bool = False,
) -> Tuple[SweepPoint, Optional[float], str]:
    """Validate a submission dict into ``(SweepPoint, deadline, mode)``.

    Shared by :class:`CompileService` (admission) and the fleet router
    (consistent-hash routing needs the very same
    :func:`~repro.exec.hashing.point_key` the workers coalesce and
    cache by, so both sides must canonicalize submissions identically).

    ``mode`` is the service-level execution mode (one of
    :data:`SUBMISSION_MODES`); it does not enter the point, so a
    ``cache_only`` probe looks up exactly the key its ``full``
    counterpart stored.

    Raises ``ValueError``/:class:`~repro.errors.ReproError` for
    malformed submissions (rendered as 400 responses).
    """
    unknown = [
        k
        for k in submission
        if k not in _SUBMISSION_KEYS and k not in _CONFIG_KEYS
    ]
    if unknown:
        raise ValueError(
            f"unknown submission key(s) {sorted(unknown)}; "
            f"accepted: {sorted(_SUBMISSION_KEYS + _CONFIG_KEYS)}"
        )
    mode = submission.get("mode", "full")
    if mode not in SUBMISSION_MODES:
        raise ValueError(
            f"unknown mode {mode!r} (known: {list(SUBMISSION_MODES)})"
        )
    kind = submission.get("kind", "merced")
    if kind not in known_kinds():
        raise ValueError(
            f"unknown task kind {kind!r} (known: {list(known_kinds())})"
        )
    if str(kind).startswith("_") and not allow_fault_kinds:
        # Fault-injection kinds run arbitrary failure paths —
        # _exit would os._exit() the service process itself when
        # jobs=1 runs the point inline on an executor thread.
        raise ValueError(
            f"fault-injection kind {kind!r} is disabled; set "
            f"ServiceConfig.allow_fault_kinds for test deployments"
        )
    circuit = submission.get("circuit")
    bench = submission.get("bench")
    if bench is not None and not isinstance(bench, str):
        raise ValueError("'bench' must be a string of .bench text")
    if kind in ("merced", "beta"):
        if bench is None:
            if not circuit:
                raise ValueError(
                    "submission needs 'circuit' (a bundled benchmark "
                    "name) or 'bench' (ISCAS89 netlist text)"
                )
            netlist = load_circuit(str(circuit))
            bench = write_bench(netlist)
        else:
            # Parse up front so malformed netlists are a clean 400
            # (with line context) instead of a degraded row.
            parsed = parse_bench(
                bench, name=str(circuit) if circuit else "submission"
            )
            circuit = circuit or parsed.name
    else:
        bench = bench or ""
        circuit = circuit or kind
    config_kwargs = {
        k: submission[k] for k in _CONFIG_KEYS if k in submission
    }
    config = MercedConfig(**config_kwargs)
    params = submission.get("params") or {}
    if not isinstance(params, dict):
        raise ValueError("'params' must be an object")
    point = SweepPoint(
        kind=str(kind),
        circuit=str(circuit),
        bench=bench,
        config=config,
        params=SweepPoint.make_params(params),
    )
    deadline_s = default_timeout
    requested = submission.get("timeout")
    if requested is not None:
        requested = float(requested)
        if requested <= 0:
            raise ValueError(f"timeout must be positive, got {requested}")
        deadline_s = (
            requested if deadline_s is None else min(requested, deadline_s)
        )
    return point, deadline_s, str(mode)


class CompileService:
    """The asyncio compile service behind ``merced serve``.

    All request bookkeeping (coalescing map, admission counter, drain
    flag) lives on the event loop thread — only the farm execution hops
    to the executor — so no locks guard it.

    Example (embedded, see also :class:`ServiceThread`)::

        service = CompileService(ServiceConfig(port=0))
        await service.start()          # service.port is now bound
        ...
        await service.drain()
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self.hot = (
            HotCache(
                max_entries=self.config.hot_entries,
                max_bytes=self.config.hot_bytes,
            )
            if self.config.hot_entries > 0
            else None
        )
        self.metrics = ServiceMetrics()
        self.port: Optional[int] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._active = 0
        self._stranded = 0
        self._lint_pending = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lint_executor: Optional[ThreadPoolExecutor] = None
        self._code: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and ready the execution slots."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="merced-service",
        )
        if self.config.lint_capacity > 0:
            # One side thread keeps lint-only answers flowing even when
            # every execution slot is pinned — that is the whole point
            # of the load-shedding ladder's last useful rung.
            self._lint_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="merced-lint"
            )
        # Hash the code tree once up front, not per request — and off
        # the loop: the first code_version() call reads every package
        # source file from disk.
        self._code = await asyncio.get_running_loop().run_in_executor(
            None, code_version
        )
        # The stream limit only bounds readline/readuntil (the request
        # head); bodies go through readexactly, which is not subject to
        # it.  Keeping the limit head-sized means a client that never
        # sends the head terminator can buffer ~36 KB, not megabytes.
        self._server = await asyncio.start_server(
            self._handle_conn,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_HEAD_BYTES + 4096,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight, reject new, flush cache.

        New submissions are answered with ``503`` the moment draining
        starts; in-flight requests get up to ``drain_grace`` seconds to
        finish.  The listener closes afterwards (so health checks see
        the port go away last), orphaned cache temp files are flushed,
        and the executor is released.  ``drain_grace`` is a real upper
        bound: stranded threads (belt-expired work stuck in a blocking
        C call) are abandoned, never waited on — the executor is shut
        down without joining, and the cache flush spares temp files
        young enough to belong to a still-running writer.
        """
        self._draining = True
        loop = asyncio.get_running_loop()
        give_up = loop.time() + self.config.drain_grace
        while (self._active or self._stranded) and loop.time() < give_up:
            await asyncio.sleep(0.02)
        # Let the final response writes flush before tearing down.
        await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.cache is not None:
            # With writers provably quiesced every temp file is an
            # orphan; otherwise spare anything young enough to belong
            # to a stranded writer still mid-store.
            quiesced = not self._active and not self._stranded
            min_age = 0.0 if quiesced else max(self.config.drain_grace, 60.0)
            # flush() walks and unlinks on disk; keep it off the loop so
            # a slow filesystem can't stall the final response writes.
            await loop.run_in_executor(
                None, lambda: self.cache.flush(min_age_s=min_age)
            )
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._lint_executor is not None:
            self._lint_executor.shutdown(wait=False)

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun rejecting new work."""
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Admitted-but-unfinished primary requests (running + queued)."""
        return self._active

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        status, payload, extra = 500, {"ok": False, "error": "internal"}, None
        respond = True
        try:
            request = await read_request(reader)
            if request is None:
                # Clean disconnect (e.g. a TCP health probe): close
                # without writing — a probe that reads the socket must
                # not see a spurious 500.
                respond = False
                return
            self.metrics.bump("requests")
            t0 = time.perf_counter()
            status, payload, extra = await self._dispatch(request)
            dt = time.perf_counter() - t0
            self.metrics.record_stage("request", dt)
            self.metrics.observe_latency("request", dt)
        except ProtocolError as exc:
            self.metrics.bump("bad_requests")
            status, payload, extra = (
                exc.status,
                {
                    "ok": False,
                    "error": str(exc),
                    "error_type": "ProtocolError",
                },
                None,
            )
        except Exception as exc:  # never let a request kill the loop
            status, payload, extra = (
                500,
                {
                    "ok": False,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                },
                None,
            )
        finally:
            try:
                if respond:
                    writer.write(render_response(status, payload, extra))
                    await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: HTTPRequest
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, self._health_payload(), None
        if route == ("GET", "/metrics"):
            return 200, self.metrics_payload(), None
        if route == ("POST", "/v1/compile"):
            submission = request.json()
            if not isinstance(submission, dict):
                raise ProtocolError(400, "submission must be a JSON object")
            return await self.submit_point(submission)
        if route == ("POST", "/v1/sweep"):
            document = request.json()
            points = (
                document.get("points")
                if isinstance(document, dict)
                else None
            )
            if not isinstance(points, list) or not points:
                raise ProtocolError(
                    400, 'sweep body must be {"points": [submission, ...]}'
                )
            rows = await asyncio.gather(
                *(
                    self.submit_point(p)
                    if isinstance(p, dict)
                    else self._bad_submission("submission must be an object")
                    for p in points
                )
            )
            results = []
            for status, payload, _ in rows:
                if isinstance(payload, RawJSON):
                    # Hot hits splice bytes for the single-point path;
                    # the sweep envelope needs a dict to add `status`.
                    payload = json.loads(payload.data)
                results.append(dict(payload, status=status))
            return 200, {"results": results}, None
        if request.path in ("/healthz", "/metrics", "/v1/compile", "/v1/sweep"):
            raise ProtocolError(405, f"{request.method} not allowed here")
        raise ProtocolError(404, f"no route for {request.path}")

    async def _bad_submission(self, message: str):
        return 400, {
            "ok": False,
            "error": message,
            "error_type": "ProtocolError",
        }, None

    def _health_payload(self) -> Dict[str, object]:
        return {
            "ok": True,
            "draining": self._draining,
            "queue_depth": self._active,
            "stranded": self._stranded,
            "inflight_keys": len(self._inflight),
        }

    def metrics_payload(self) -> Dict[str, object]:
        """The ``/metrics`` document (also handy for embedded use)."""
        snapshot = self.metrics.as_dict()
        return {
            "service": {
                "shard": self.config.shard_name,
                "draining": self._draining,
                "queue_depth": self._active,
                "stranded": self._stranded,
                "queue_capacity": self.config.queue_capacity,
                "inflight_keys": len(self._inflight),
                "workers": self.config.workers,
            },
            "counters": snapshot["counters"],
            "perf": snapshot["perf"],
            "latency": snapshot["latency"],
            "cache": (
                self.cache.stats_snapshot()
                if self.cache is not None
                else None
            ),
            "hot_cache": (
                self.hot.as_dict() if self.hot is not None else None
            ),
            "watchdog": watchdog_stats(),
        }

    # ------------------------------------------------------------------
    # submission path
    # ------------------------------------------------------------------
    async def submit_point(
        self, submission: Dict[str, object]
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        """Admit, coalesce, or reject one submission; returns the response.

        The returned tuple is ``(status, payload, extra_headers)``.
        Runs on the event loop; only the farm execution hops to an
        executor thread.
        """
        self.metrics.bump("submissions")
        try:
            point, deadline_s, mode = self._point_from(submission)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            self.metrics.bump("bad_requests")
            return 400, {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }, None

        if self._draining:
            self.metrics.bump("rejected_draining")
            return 503, {
                "ok": False,
                "error": "service is draining; resubmit elsewhere",
                "error_type": "ServiceDraining",
            }, None

        key = point_key_strict(point, self._code)

        # Hot tier first, whatever the mode: answered on the event loop
        # with the stored bytes spliced straight into the response — no
        # admission slot, no executor hop, no disk, no re-serialization.
        if self.hot is not None:
            blob = self.hot.get(key)
            if blob is not None:
                self.metrics.bump("hot_hits")
                return 200, self._hot_response(point, key, blob), None

        if mode == "cache_only":
            return await self._cache_only(point, key)
        if mode == "lint_only":
            return await self._lint_only(point, key)

        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.bump("coalesced")
            response = dict(await asyncio.shield(existing))
            response["coalesced"] = True
            return 200, response, None

        # Stranded slots (belt-expired work still pinning an executor
        # thread) count against capacity: the workers are genuinely
        # busy, so admitting more would only queue work invisibly.
        occupied = self._active + self._stranded
        if occupied >= self.config.queue_capacity:
            self.metrics.bump("rejected_backpressure")
            retry = self.config.retry_after
            return 429, {
                "ok": False,
                "error": (
                    f"admission queue full "
                    f"({occupied}/{self.config.queue_capacity})"
                ),
                "error_type": "ServiceOverloaded",
                "retry_after": retry,
            }, {"Retry-After": f"{retry:g}"}

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._active += 1
        self.metrics.bump("admitted")
        try:
            response = await self._run_point(point, key, deadline_s)
        except Exception as exc:  # defensive: resolve waiters regardless
            response = {
                "ok": False,
                "key": short_key(key),
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        finally:
            self._active -= 1
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(response)
        return 200, response, None

    async def _run_point(
        self, point: SweepPoint, key: str, deadline_s: Optional[float]
    ) -> Dict[str, object]:
        """Execute one admitted point on an executor thread."""
        farm = SweepFarm(
            jobs=self.config.jobs,
            timeout=deadline_s,
            retries=self.config.retries,
            cache=self.cache,
        )
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        call = loop.run_in_executor(self._executor, farm.map, [point])
        # Belt over the watchdog's braces: if per-attempt enforcement is
        # impossible (no SIGALRM, no async-exc injection, or delivery is
        # stuck behind a blocking C call), the client still gets a
        # timeout row; the stranded thread is abandoned.
        belt = None
        if deadline_s is not None:
            belt = (
                deadline_s * (self.config.retries + 1)
                + self.config.belt_slack
            )
        try:
            if belt is None:
                results = await call
            else:
                results = await asyncio.wait_for(asyncio.shield(call), belt)
        except asyncio.TimeoutError:
            # The abandoned call keeps pinning its executor thread until
            # the watchdog's async-exc finally lands; account for that
            # slot so admission doesn't oversubscribe the workers.
            self._stranded += 1
            call.add_done_callback(self._release_stranded)
            self.metrics.bump("watchdog_missed")
            self.metrics.bump("timeouts")
            self.metrics.bump("failed")
            return {
                "ok": False,
                "key": short_key(key),
                "kind": point.kind,
                "circuit": point.circuit,
                "error": (
                    f"deadline {deadline_s:g}s expired and the in-thread "
                    f"watchdog did not fire"
                ),
                "error_type": "SweepTimeoutError",
                "coalesced": False,
            }
        dt = time.perf_counter() - t0
        self.metrics.record_stage("execute", dt)
        self.metrics.observe_latency("execute", dt)
        return self._result_response(results[0], key)

    def _release_stranded(self, call: asyncio.Future) -> None:
        """Free a stranded slot once its abandoned execution finishes.

        Runs on the event loop (future done-callback), so the counter
        needs no lock; the result/exception is consumed so an abandoned
        failure never logs as "exception was never retrieved".
        """
        self._stranded -= 1
        if not call.cancelled():
            call.exception()

    # ------------------------------------------------------------------
    # hot tier + degraded modes
    # ------------------------------------------------------------------
    def _spliced_response(
        self, point: SweepPoint, key: str, blob: bytes, hot: bool
    ) -> RawJSON:
        """Build a response around pre-serialized payload ``blob`` bytes.

        The envelope is rendered normally (sorted keys) with a sentinel
        in the ``value`` slot, then the payload bytes are spliced over
        it — the cached JSON is never decoded.  ``rpartition`` is safe
        because ``value`` sorts last among the envelope keys, so the
        final sentinel occurrence is always the value slot.
        """
        envelope = {
            "ok": True,
            "key": short_key(key),
            "kind": point.kind,
            "circuit": point.circuit,
            "cache_hit": True,
            "hot": hot,
            "coalesced": False,
            "attempts": 0,
            "seconds": 0.0,
            "value": _HOT_SENTINEL,
        }
        rendered = json.dumps(envelope, sort_keys=True)
        head, _, tail = rendered.rpartition(f'"{_HOT_SENTINEL}"')
        return RawJSON(head.encode("utf-8") + blob + tail.encode("utf-8"))

    def _hot_response(
        self, point: SweepPoint, key: str, blob: bytes
    ) -> RawJSON:
        """The zero-copy response for an in-memory hot-tier hit."""
        return self._spliced_response(point, key, blob, hot=True)

    def _store_hot(self, key: str, blob: Optional[bytes]) -> None:
        """Insert serialized payload bytes into the hot tier, if enabled."""
        if self.hot is not None and blob is not None:
            if self.hot.put(key, blob):
                self.metrics.bump("hot_stores")

    async def _cache_only(
        self, point: SweepPoint, key: str
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        """Answer from the disk tier without touching admission.

        The hot tier was already consulted by :meth:`submit_point`; a
        disk hit is promoted into it so the next repeat is a memory
        splice.  A miss is a ``404`` — the router's shedding ladder
        falls through to ``lint_only`` on it.  The disk read happens on
        an executor thread, not the event loop.
        """
        if self.cache is not None:
            blob = await asyncio.get_running_loop().run_in_executor(
                None, self.cache.get_bytes, key
            )
        else:
            blob = None
        if blob is None:
            self.metrics.bump("cache_only_misses")
            return 404, {
                "ok": False,
                "key": short_key(key),
                "kind": point.kind,
                "circuit": point.circuit,
                "error": "result not cached",
                "error_type": "CacheMiss",
                "coalesced": False,
            }, None
        self.metrics.bump("cache_only_hits")
        self._store_hot(key, blob)
        return 200, self._spliced_response(point, key, blob, hot=False), None

    async def _lint_only(
        self, point: SweepPoint, key: str
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        """Serve a lint-only analysis instead of a compile.

        The last useful rung of the shedding ladder: runs the static
        linter on a dedicated side thread with its own small pending
        bound, so clients still get circuit feedback when every
        execution slot is busy.  The answer is a *degraded* row
        (``ok: false``, ``degraded: "lint_only"``) — data, not an
        error, matching the farm's degraded-row convention.
        """
        if point.kind not in ("merced", "beta"):
            self.metrics.bump("bad_requests")
            return 400, {
                "ok": False,
                "error": f"mode 'lint_only' needs a circuit kind, "
                f"not {point.kind!r}",
                "error_type": "ValueError",
            }, None
        if (
            self._lint_executor is None
            or self._lint_pending >= self.config.lint_capacity
        ):
            self.metrics.bump("rejected_lint_queue")
            retry = self.config.retry_after
            return 429, {
                "ok": False,
                "error": "lint-only queue full",
                "error_type": "ServiceOverloaded",
                "retry_after": retry,
            }, {"Retry-After": f"{retry:g}"}

        def _run_lint() -> Dict[str, object]:
            from ..analysis.lint import lint_circuit

            netlist = parse_bench(point.bench, name=point.circuit)
            report = lint_circuit(netlist, point.config)
            return {
                "summary": report.summary(),
                "has_errors": report.has_errors,
                "report": report.to_dict(),
            }

        self._lint_pending += 1
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        try:
            lint = await loop.run_in_executor(self._lint_executor, _run_lint)
        except Exception as exc:
            return 200, {
                "ok": False,
                "key": short_key(key),
                "kind": point.kind,
                "circuit": point.circuit,
                "degraded": "lint_only",
                "coalesced": False,
                "error": f"lint-only answer failed: {exc}",
                "error_type": type(exc).__name__,
            }, None
        finally:
            self._lint_pending -= 1
        self.metrics.bump("lint_only_served")
        self.metrics.observe_latency("lint", time.perf_counter() - t0)
        return 200, {
            "ok": False,
            "key": short_key(key),
            "kind": point.kind,
            "circuit": point.circuit,
            "degraded": "lint_only",
            "coalesced": False,
            "error": "degraded under load: lint-only analysis, no compile",
            "error_type": "DegradedAnswer",
            "lint": lint,
        }, None

    def _result_response(
        self, result: TaskResult, key: str
    ) -> Dict[str, object]:
        """Shape one farm :class:`TaskResult` into the wire payload."""
        if result.cache_hit:
            self.metrics.bump("cache_hits")
        elif result.ok:
            self.metrics.bump("executed")
        response: Dict[str, object] = {
            "ok": result.ok,
            "key": short_key(key),
            "kind": result.point.kind,
            "circuit": result.point.circuit,
            "cache_hit": result.cache_hit,
            "coalesced": False,
            "attempts": result.attempts,
            "seconds": result.seconds,
        }
        if result.ok:
            self.metrics.bump("completed_ok")
            response["value"] = result.value
            # Feed the hot tier: fresh executions and disk-cache hits
            # alike, so the repeat traffic that dominates fleet replays
            # is answered from memory from the second occurrence on.
            try:
                blob = json.dumps(result.value, sort_keys=True).encode(
                    "utf-8"
                )
            except (TypeError, ValueError):
                blob = None
            self._store_hot(key, blob)
        else:
            self.metrics.bump("failed")
            if result.error_type == "SweepTimeoutError":
                self.metrics.bump("timeouts")
            response["error"] = result.error
            response["error_type"] = result.error_type
            response["stage"] = result.stage
            if result.diagnostics:
                response["diagnostics"] = list(result.diagnostics)
        return response

    def _point_from(
        self, submission: Dict[str, object]
    ) -> Tuple[SweepPoint, Optional[float], str]:
        """Validate a submission under this service's config."""
        return parse_submission(
            submission,
            default_timeout=self.config.timeout,
            allow_fault_kinds=self.config.allow_fault_kinds,
        )


class ServiceThread:
    """Run a :class:`CompileService` on a private loop in a daemon thread.

    The embedding used by the test-suite and by blocking callers (e.g.
    a notebook) that want the service without owning an event loop::

        handle = ServiceThread(ServiceConfig(port=0))
        handle.start()                  # blocks until the port is bound
        client = ServiceClient(port=handle.port)
        ...
        handle.stop()                   # drains, then stops the loop
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.service = CompileService(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port once :meth:`start` has returned."""
        return self.service.port

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        """Start the loop thread; blocks until the listener is bound."""
        self._thread = threading.Thread(
            target=self._run, name="merced-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            try:
                self._loop.run_until_complete(self.service.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._started.set()
            self._loop.run_forever()
        finally:
            self._loop.close()

    def drain(self, timeout: float = 60.0) -> None:
        """Run the service's graceful drain from the calling thread."""
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(), self._loop
        )
        future.result(timeout)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain, stop the loop, and join the thread."""
        if self._loop is None:
            return
        if not self.service.draining:
            self.drain(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
