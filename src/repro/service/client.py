"""Thin blocking client for the ``merced serve`` compile service.

One class, stdlib-only (``http.client``), speaking the JSON protocol of
:mod:`repro.service.server`.  Used by the ``merced submit`` CLI, the
test-suite, and any embedding that wants compile results over the wire
— all three therefore exercise the exact same protocol surface, which
is what makes future multi-host sharding a client-side change.

Transport errors surface as :class:`~repro.errors.ServiceError`;
non-200 responses (backpressure ``429``, drain ``503``, malformed
``400``) raise :class:`~repro.errors.ServiceRejectedError` with the
response payload attached.  A ``200`` with ``"ok": false`` is *not* an
exception — that is a degraded compile result, delivered as data, same
as the farm's error rows.

Backpressure is retried, not failed: a ``429`` answer carries the
service's ``Retry-After`` hint, and the client honors it with bounded,
jittered, exponentially backed-off retries (``retries`` attempts,
``retry_on_busy=False`` to opt out) before surfacing the rejection.
Jitter matters — the 429 means the service is saturated, and N clients
retrying on the exact same hint would arrive as one synchronized
stampede.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, List, Optional, Tuple

from ..errors import ServiceError, ServiceRejectedError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON-over-HTTP client for one compile service endpoint.

    Example::

        client = ServiceClient(port=8356)
        client.wait_ready()
        row = client.compile_point(circuit="s27", lk=3)
        assert row["ok"] and row["value"]["n_partitions"] >= 1
    """

    #: Backoff ceiling for one busy-retry sleep, in seconds.
    MAX_RETRY_SLEEP = 30.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8356,
        timeout: float = 600.0,
        retries: int = 4,
        retry_on_busy: bool = True,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_on_busy = retry_on_busy
        # Backoff jitter must differ *between* clients (that's the
        # point of jitter), so this RNG is deliberately OS-seeded —
        # not the deterministic stream the kernels require.
        self._jitter = random.Random()  # lint: disable=KRN002

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[object] = None
    ) -> Tuple[int, object, Optional[float]]:
        """One exchange; returns ``(status, json_body, retry_after)``."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"compile service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(
                f"malformed response from service (HTTP {response.status})"
            ) from exc
        retry_after = None
        hint = response.getheader("Retry-After")
        if hint is not None:
            try:
                retry_after = float(hint)
            except ValueError:
                pass  # HTTP-date form: fall back to the payload/default
        return response.status, document, retry_after

    def _checked(self, method: str, path: str, payload=None) -> object:
        budget = self.retries if self.retry_on_busy else 0
        for attempt in range(budget + 1):
            status, document, retry_after = self._request(
                method, path, payload
            )
            if status != 429 or attempt == budget:
                break
            if retry_after is None and isinstance(document, dict):
                hinted = document.get("retry_after")
                if isinstance(hinted, (int, float)):
                    retry_after = float(hinted)
            # Exponential backoff from the service's hint, jittered so
            # coordinated clients don't re-stampede in lockstep.
            base = min(
                (retry_after or 0.5) * (2**attempt), self.MAX_RETRY_SLEEP
            )
            time.sleep(base * (0.75 + 0.5 * self._jitter.random()))
        if status != 200:
            raise ServiceRejectedError(status, document)
        return document

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """``GET /healthz`` — liveness + drain state + queue depth."""
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics`` — counters, stage timers, cache + watchdog stats."""
        return self._checked("GET", "/metrics")

    def wait_ready(self, timeout: float = 10.0) -> Dict[str, object]:
        """Poll ``/healthz`` until the service answers; returns the payload.

        Raises :class:`~repro.errors.ServiceError` when the budget runs
        out (e.g. ``merced serve`` crashed during startup).
        """
        give_up = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < give_up:
            try:
                return self.health()
            except ServiceError as exc:
                last = exc
                time.sleep(0.05)
        raise ServiceError(
            f"service at {self.host}:{self.port} not ready "
            f"after {timeout:g}s: {last}"
        )

    def compile_point(
        self,
        circuit: Optional[str] = None,
        bench: Optional[str] = None,
        kind: str = "merced",
        params: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
        **config,
    ) -> Dict[str, object]:
        """``POST /v1/compile`` one submission; returns the result row.

        ``config`` keys are :class:`~repro.config.MercedConfig` fields
        (``lk``, ``beta``, ``seed``, ...).  Raises
        :class:`~repro.errors.ServiceRejectedError` on 4xx/5xx; a
        degraded result (``"ok": false``) is returned as data.
        """
        submission: Dict[str, object] = {"kind": kind, **config}
        if circuit is not None:
            submission["circuit"] = circuit
        if bench is not None:
            submission["bench"] = bench
        if params:
            submission["params"] = params
        if timeout is not None:
            submission["timeout"] = timeout
        return self._checked("POST", "/v1/compile", submission)

    def sweep(
        self, submissions: List[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """``POST /v1/sweep`` many submissions; returns one row per point.

        Rows carry their individual ``status`` (200 result, 429
        backpressure rejection, ...) — an over-capacity burst degrades
        per-point instead of failing the whole batch.
        """
        document = self._checked("POST", "/v1/sweep", {"points": submissions})
        return document["results"]

    def base_url(self) -> str:
        """The service endpoint as a URL string (for logs and messages)."""
        return f"http://{self.host}:{self.port}"

    @classmethod
    def from_url(cls, url: str, timeout: float = 600.0) -> "ServiceClient":
        """Build a client from ``http://host:port`` (scheme optional)."""
        stripped = url.strip()
        for prefix in ("http://", "https://"):
            if stripped.startswith(prefix):
                stripped = stripped[len(prefix):]
        stripped = stripped.rstrip("/")
        host, _, port_text = stripped.partition(":")
        if not host:
            raise ServiceError(f"invalid service URL {url!r}")
        try:
            port = int(port_text) if port_text else 8356
        except ValueError as exc:
            raise ServiceError(f"invalid service URL {url!r}") from exc
        return cls(host=host, port=port, timeout=timeout)
