"""The ``merced serve`` compile service: HTTP/JSON over the sweep farm.

The ROADMAP's north star is a system that serves traffic from many
clients, and the sweep farm (:mod:`repro.exec`) already hardened
per-point execution — this package puts a long-running, asyncio
front-end on top of it so work can arrive from *outside* the process:

* :mod:`repro.service.protocol` — a minimal stdlib HTTP/1.1 codec
  (JSON in, JSON out, ``Content-Length`` framing, hard size limits);
* :mod:`repro.service.server` — :class:`CompileService`: request
  coalescing keyed by :func:`~repro.exec.hashing.point_key`, a bounded
  admission queue with ``429`` backpressure, per-request deadlines
  enforced off the main thread by :mod:`repro.exec.watchdog`, graceful
  SIGTERM drain, and a ``/metrics`` endpoint;
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin
  blocking client the ``merced submit`` CLI, the tests, and the fleet
  all share, with ``Retry-After``-honoring busy retries;
* :mod:`repro.service.router` — :class:`FleetRouter`: a consistent-hash
  front router that keys on the same
  :func:`~repro.exec.hashing.point_key` the workers coalesce by, with
  graduated load-shedding (full → cache_only → lint_only → 429) and
  fleet-wide ``/metrics`` aggregation;
* :mod:`repro.service.fleet` — :class:`CompileFleet` /
  :class:`FleetThread`: N worker shard processes (each with its own
  in-memory hot tier and cache slice) behind one router — the
  ``merced serve --shards N`` deployment;
* :mod:`repro.service.cli` — the ``merced serve`` / ``merced submit``
  subcommand entry points.

Payloads returned over the wire are bit-identical to inline
:class:`~repro.core.merced.Merced` runs: the service executes the same
:func:`~repro.exec.task.run_point` kinds through the same farm and
cache, and its responses are JSON-stable (sorted keys) so equality is
byte equality.
"""

from .client import ServiceClient
from .fleet import CompileFleet, FleetThread
from .router import FleetRouter, HashRing, RouterConfig
from .server import CompileService, ServiceConfig, ServiceMetrics, ServiceThread

__all__ = [
    "ServiceClient",
    "CompileService",
    "CompileFleet",
    "FleetRouter",
    "FleetThread",
    "HashRing",
    "RouterConfig",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceThread",
]
