"""The ``merced serve`` compile service: HTTP/JSON over the sweep farm.

The ROADMAP's north star is a system that serves traffic from many
clients, and the sweep farm (:mod:`repro.exec`) already hardened
per-point execution — this package puts a long-running, asyncio
front-end on top of it so work can arrive from *outside* the process:

* :mod:`repro.service.protocol` — a minimal stdlib HTTP/1.1 codec
  (JSON in, JSON out, ``Content-Length`` framing, hard size limits);
* :mod:`repro.service.server` — :class:`CompileService`: request
  coalescing keyed by :func:`~repro.exec.hashing.point_key`, a bounded
  admission queue with ``429`` backpressure, per-request deadlines
  enforced off the main thread by :mod:`repro.exec.watchdog`, graceful
  SIGTERM drain, and a ``/metrics`` endpoint;
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin
  blocking client the ``merced submit`` CLI, the tests, and future
  multi-host sharding all share;
* :mod:`repro.service.cli` — the ``merced serve`` / ``merced submit``
  subcommand entry points.

Payloads returned over the wire are bit-identical to inline
:class:`~repro.core.merced.Merced` runs: the service executes the same
:func:`~repro.exec.task.run_point` kinds through the same farm and
cache, and its responses are JSON-stable (sorted keys) so equality is
byte equality.
"""

from .client import ServiceClient
from .server import CompileService, ServiceConfig, ServiceMetrics, ServiceThread

__all__ = [
    "ServiceClient",
    "CompileService",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceThread",
]
