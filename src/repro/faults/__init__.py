"""Stuck-at fault substrate: model, collapsing, simulation, coverage."""

from .model import StuckAtFault, fault_masks, full_fault_list
from .collapse import CollapseResult, collapse_faults
from .fsim import FaultSimResult, detecting_patterns, simulate_faults
from .coverage import CoverageReport, merge_coverage
from .scoap import ScoapNumbers, compute_scoap, hardest_sites

__all__ = [
    "StuckAtFault",
    "fault_masks",
    "full_fault_list",
    "CollapseResult",
    "collapse_faults",
    "FaultSimResult",
    "detecting_patterns",
    "simulate_faults",
    "CoverageReport",
    "merge_coverage",
    "ScoapNumbers",
    "compute_scoap",
    "hardest_sites",
]
