"""SCOAP testability analysis (Goldstein's controllability/observability).

The classic static testability measures used throughout the DFT
literature contemporary with the paper:

* ``CC0(s)`` / ``CC1(s)`` — combinational 0/1-controllability: the least
  number of input assignments (counted as per-gate effort, +1 per level)
  needed to drive signal ``s`` to 0/1;
* ``CO(s)`` — combinational observability: the effort to propagate ``s``
  to an observation point.

DFF outputs count as pseudo-primary inputs and DFF data inputs as
pseudo-primary outputs (the scan view, matching the rest of the fault
stack).  High SCOAP numbers flag the low-detectability faults that make
random BIST slow (see :mod:`repro.ppet.random_test`) and that motivate
pseudo-exhaustive segment testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from ..sim.levelize import levelize
from .model import StuckAtFault

__all__ = ["ScoapNumbers", "compute_scoap", "hardest_sites"]

#: SCOAP's conventional "infinite" (untestable) sentinel.
INF = 10**9


@dataclass(frozen=True)
class ScoapNumbers:
    """Per-signal controllability/observability."""

    cc0: Dict[str, int]
    cc1: Dict[str, int]
    co: Dict[str, int]

    def difficulty(self, fault: StuckAtFault) -> int:
        """SCOAP detection effort: activate (control opposite) + observe."""
        control = (
            self.cc1[fault.signal] if fault.value == 0 else self.cc0[fault.signal]
        )
        observe = self.co[fault.signal]
        if control >= INF or observe >= INF:
            return INF
        return control + observe


def _controllability(
    gtype: GateType, in0: List[int], in1: List[int]
) -> Tuple[int, int]:
    """(CC0, CC1) of a gate output from its inputs' numbers."""

    def add1(x: int) -> int:
        return x + 1 if x < INF else INF

    def s(vals: List[int]) -> int:
        total = sum(v for v in vals)
        return total if total < INF else INF

    if gtype in (GateType.AND, GateType.NAND):
        all1 = s(in1)
        any0 = min(in0)
        c0, c1 = any0, all1
    elif gtype in (GateType.OR, GateType.NOR):
        all0 = s(in0)
        any1 = min(in1)
        c0, c1 = all0, any1
    elif gtype in (GateType.XOR, GateType.XNOR):
        # parity gates: cheapest assignment achieving even/odd parity
        even, odd = 0, INF  # zero inputs have even parity for free
        for z, o in zip(in0, in1):
            new_even = min(even + z, odd + o)
            new_odd = min(even + o, odd + z)
            even, odd = new_even, new_odd
        c0, c1 = min(even, INF), min(odd, INF)
    elif gtype is GateType.NOT:
        c0, c1 = in1[0], in0[0]
    elif gtype is GateType.BUF:
        c0, c1 = in0[0], in1[0]
    elif gtype is GateType.MUX2:
        d0_0, d1_0, s_0 = in0
        d0_1, d1_1, s_1 = in1
        c0 = min(s_0 + d0_0, s_1 + d1_0)
        c1 = min(s_0 + d0_1, s_1 + d1_1)
    else:  # pragma: no cover - all types handled
        raise SimulationError(f"no SCOAP rule for {gtype}")
    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR):
        c0, c1 = c1, c0
    return add1(min(c0, INF)), add1(min(c1, INF))


def compute_scoap(
    netlist: Netlist, observe: Optional[Sequence[str]] = None
) -> ScoapNumbers:
    """Compute CC0/CC1/CO for every signal of the combinational core."""
    order = levelize(netlist).order
    cc0: Dict[str, int] = {}
    cc1: Dict[str, int] = {}
    pseudo_inputs = list(netlist.inputs) + [
        c.output for c in netlist.dff_cells()
    ]
    for sig in pseudo_inputs:
        cc0[sig] = cc1[sig] = 1
    for cell in order:
        in0 = [cc0[s] for s in cell.inputs]
        in1 = [cc1[s] for s in cell.inputs]
        cc0[cell.output], cc1[cell.output] = _controllability(
            cell.gtype, in0, in1
        )

    if observe is None:
        pseudo = [c.inputs[0] for c in netlist.dff_cells()]
        seen = set()
        observe = [
            o
            for o in tuple(netlist.outputs) + tuple(pseudo)
            if not (o in seen or seen.add(o))
        ]
    co: Dict[str, int] = {s: INF for s in cc0}
    for o in observe:
        co[o] = 0
    # reverse topological: propagate observability to gate inputs
    for cell in reversed(order):
        out_co = co[cell.output]
        if out_co >= INF:
            continue
        for pin, sig in enumerate(cell.inputs):
            others0 = [cc0[s] for i, s in enumerate(cell.inputs) if i != pin]
            others1 = [cc1[s] for i, s in enumerate(cell.inputs) if i != pin]
            if cell.gtype in (GateType.AND, GateType.NAND):
                side = sum(others1)  # others at non-controlling 1
            elif cell.gtype in (GateType.OR, GateType.NOR):
                side = sum(others0)
            elif cell.gtype in (GateType.XOR, GateType.XNOR):
                side = sum(min(a, b) for a, b in zip(others0, others1))
            elif cell.gtype in (GateType.NOT, GateType.BUF):
                side = 0
            elif cell.gtype is GateType.MUX2:
                if pin == 2:  # select: needs the data inputs to differ
                    side = min(
                        cc0[cell.inputs[0]] + cc1[cell.inputs[1]],
                        cc1[cell.inputs[0]] + cc0[cell.inputs[1]],
                    )
                else:  # data pin: select must route this pin
                    sel = cell.inputs[2]
                    side = cc1[sel] if pin == 1 else cc0[sel]
            else:  # pragma: no cover
                raise SimulationError(f"no SCOAP rule for {cell.gtype}")
            cand = out_co + side + 1
            if cand < co.get(sig, INF):
                co[sig] = cand
    return ScoapNumbers(cc0=cc0, cc1=cc1, co=co)


def hardest_sites(
    netlist: Netlist, top: int = 10, observe: Optional[Sequence[str]] = None
) -> List[Tuple[StuckAtFault, int]]:
    """The ``top`` hardest stuck-at faults by SCOAP detection effort."""
    numbers = compute_scoap(netlist, observe=observe)
    ranked: List[Tuple[StuckAtFault, int]] = []
    for sig in numbers.cc0:
        for v in (0, 1):
            fault = StuckAtFault(sig, v)
            ranked.append((fault, numbers.difficulty(fault)))
    ranked.sort(key=lambda fd: (-fd[1], fd[0]))
    return ranked[:top]
