"""Structural fault collapsing by equivalence.

Two faults are equivalent when every test for one detects the other; the
fault simulator then only needs one representative per class.  We collapse
the unconditional structural equivalences among *stem* faults:

* through a NOT with a fanout-free input: ``in/sa0 ≡ out/sa1`` and
  ``in/sa1 ≡ out/sa0``;
* through a BUF or DFF with a fanout-free input: same polarity.

(The classic input-pin collapses of AND/OR gates relate *pin* faults,
which are outside the stem-fault universe; stem collapsing is exact for
the universe we simulate.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from .model import StuckAtFault

__all__ = ["CollapseResult", "collapse_faults"]


@dataclass
class CollapseResult:
    """Representatives plus the class map of a fault-collapse run."""

    representatives: List[StuckAtFault]
    class_of: Dict[StuckAtFault, StuckAtFault]  # fault -> its representative

    @property
    def collapse_ratio(self) -> float:
        total = len(self.class_of)
        return len(self.representatives) / total if total else 1.0

    def expand(self, detected: Iterable[StuckAtFault]) -> Set[StuckAtFault]:
        """All faults whose representative is in ``detected``."""
        det = set(detected)
        return {f for f, rep in self.class_of.items() if rep in det}


def collapse_faults(
    netlist: Netlist, faults: Iterable[StuckAtFault]
) -> CollapseResult:
    """Collapse ``faults`` into equivalence-class representatives.

    The representative of a class is the fault on the most-downstream
    signal (the chain's sink), which keeps observation closest to the
    outputs.
    """
    faults = list(faults)
    fan = netlist.fanout_map()
    out_set = set(netlist.outputs)

    def chain_parent(fault: StuckAtFault) -> StuckAtFault:
        """The downstream-equivalent fault one inverter/buffer later."""
        readers = fan.get(fault.signal, [])
        if len(readers) != 1 or fault.signal in out_set:
            return fault
        reader = readers[0]
        if reader.inputs.count(fault.signal) != 1:
            return fault
        if reader.gtype is GateType.NOT:
            return StuckAtFault(reader.output, 1 - fault.value)
        if reader.gtype in (GateType.BUF, GateType.DFF):
            return StuckAtFault(reader.output, fault.value)
        return fault

    universe = set(faults)
    class_of: Dict[StuckAtFault, StuckAtFault] = {}
    for fault in faults:
        rep = fault
        seen = {rep}
        while True:
            nxt = chain_parent(rep)
            if nxt == rep or nxt in seen:
                break
            # only chain through faults that exist in the universe or are
            # pure bookkeeping hops (the hop target is what we simulate)
            rep = nxt
            seen.add(rep)
        class_of[fault] = rep
    representatives = sorted(set(class_of.values()))
    return CollapseResult(representatives=representatives, class_of=class_of)
