"""Serial-fault, parallel-pattern stuck-at fault simulation.

The fault-free circuit is evaluated once per pattern block; each fault is
then re-evaluated with its stuck signal overridden and compared at the
observation points.  Pattern blocks ride in Python big-ints, so a block
is as wide as memory allows (pseudo-exhaustive CUT spaces of ≤ 2^20
patterns are evaluated in a single pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import SimulationError
from ..netlist.netlist import Netlist
from ..sim.logicsim import CombSimulator
from .model import StuckAtFault, fault_masks

__all__ = ["FaultSimResult", "simulate_faults", "detecting_patterns"]


@dataclass
class FaultSimResult:
    """Outcome of one fault-simulation run."""

    detected: Set[StuckAtFault]
    undetected: Set[StuckAtFault]
    n_patterns: int
    observation_points: Tuple[str, ...]

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def simulate_faults(
    netlist: Netlist,
    faults: Sequence[StuckAtFault],
    input_words: Mapping[str, int],
    n_patterns: int,
    observe: Optional[Sequence[str]] = None,
    simulator: Optional[CombSimulator] = None,
) -> FaultSimResult:
    """Fault-simulate a combinational pattern block.

    Args:
        netlist: circuit (its DFK outputs count as pseudo-primary inputs
            and must be driven via ``input_words``).
        faults: stuck-at faults to grade.
        input_words: parallel pattern words per pseudo-primary input.
        n_patterns: patterns in the block.
        observe: observation signals (default: the primary outputs).

    Returns:
        A :class:`FaultSimResult` splitting ``faults`` into detected /
        undetected at the observation points.
    """
    sim = simulator or CombSimulator(netlist)
    observe = tuple(observe if observe is not None else netlist.outputs)
    if not observe:
        raise SimulationError("no observation points")
    good = sim.run(input_words, n_patterns)
    good_obs = [good[o] for o in observe]
    detected: Set[StuckAtFault] = set()
    undetected: Set[StuckAtFault] = set()
    for fault in faults:
        if not netlist.has_signal(fault.signal):
            raise SimulationError(f"fault on unknown signal {fault.signal!r}")
        bad = sim.run(
            input_words, n_patterns, faults=fault_masks(fault, n_patterns)
        )
        if any(bad[o] != g for o, g in zip(observe, good_obs)):
            detected.add(fault)
        else:
            undetected.add(fault)
    return FaultSimResult(
        detected=detected,
        undetected=undetected,
        n_patterns=n_patterns,
        observation_points=observe,
    )


def detecting_patterns(
    netlist: Netlist,
    fault: StuckAtFault,
    input_words: Mapping[str, int],
    n_patterns: int,
    observe: Optional[Sequence[str]] = None,
) -> List[int]:
    """Indices of the patterns that detect ``fault`` (diagnostic helper)."""
    sim = CombSimulator(netlist)
    observe = tuple(observe if observe is not None else netlist.outputs)
    good = sim.run(input_words, n_patterns)
    bad = sim.run(input_words, n_patterns, faults=fault_masks(fault, n_patterns))
    diff = 0
    for o in observe:
        diff |= good[o] ^ bad[o]
    return [i for i in range(n_patterns) if (diff >> i) & 1]
