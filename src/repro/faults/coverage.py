"""Fault-coverage aggregation and reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from .model import StuckAtFault

__all__ = ["CoverageReport", "merge_coverage"]


@dataclass
class CoverageReport:
    """Coverage rollup, optionally per test segment (CUT)."""

    detected: Set[StuckAtFault] = field(default_factory=set)
    total: Set[StuckAtFault] = field(default_factory=set)
    per_segment: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    # segment id -> (detected, total)

    @property
    def coverage(self) -> float:
        return len(self.detected) / len(self.total) if self.total else 1.0

    @property
    def undetected(self) -> Set[StuckAtFault]:
        return self.total - self.detected

    def add_segment(
        self,
        segment_id: int,
        detected: Iterable[StuckAtFault],
        total: Iterable[StuckAtFault],
    ) -> None:
        detected, total = set(detected), set(total)
        self.detected |= detected
        self.total |= total
        self.per_segment[segment_id] = (len(detected), len(total))

    def render(self) -> str:
        lines = [
            f"fault coverage: {len(self.detected)}/{len(self.total)}"
            f" = {100 * self.coverage:.2f}%"
        ]
        for seg, (d, t) in sorted(self.per_segment.items()):
            pct = 100 * d / t if t else 100.0
            lines.append(f"  segment {seg:>4}: {d:>6}/{t:<6} = {pct:6.2f}%")
        return "\n".join(lines)


def merge_coverage(reports: Iterable[CoverageReport]) -> CoverageReport:
    """Union several reports (a fault detected anywhere counts detected).

    Segment entries are re-keyed sequentially to avoid id collisions
    between reports.
    """
    merged = CoverageReport()
    next_key = 0
    for r in reports:
        merged.detected |= r.detected
        merged.total |= r.total
        for _seg, dt in sorted(r.per_segment.items()):
            merged.per_segment[next_key] = dt
            next_key += 1
    return merged
