"""Single stuck-at fault model on netlist signals.

PPET's claim (Section 1) is high coverage of **stuck faults**; this module
provides the fault universe used to validate that claim on our circuits:
one stuck-at-0 and one stuck-at-1 fault per signal stem (primary inputs,
gate outputs, DFF outputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..netlist.netlist import Netlist

__all__ = ["StuckAtFault", "full_fault_list", "fault_masks"]


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """Signal ``signal`` permanently stuck at ``value`` (0 or 1)."""

    signal: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.value}")

    def __str__(self) -> str:
        return f"{self.signal}/sa{self.value}"


def full_fault_list(
    netlist: Netlist, include_inputs: bool = True
) -> List[StuckAtFault]:
    """Both polarities on every stem of ``netlist``.

    >>> from repro.circuits import s27_netlist
    >>> len(full_fault_list(s27_netlist()))
    34
    """
    faults: List[StuckAtFault] = []
    signals: List[str] = []
    if include_inputs:
        signals.extend(netlist.inputs)
    signals.extend(c.output for c in netlist.cells())
    for sig in signals:
        faults.append(StuckAtFault(sig, 0))
        faults.append(StuckAtFault(sig, 1))
    return faults


def fault_masks(fault: StuckAtFault, n_patterns: int) -> Dict[str, Tuple[int, int]]:
    """Simulator override masks for one fault.

    Returns the ``signal -> (and_mask, or_mask)`` mapping consumed by
    :meth:`repro.sim.logicsim.CombSimulator.run`.
    """
    mask = (1 << n_patterns) - 1
    if fault.value == 0:
        return {fault.signal: (0, 0)}
    return {fault.signal: (mask, mask)}
