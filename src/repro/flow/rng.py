"""Deterministic random source selection for ``Saturate_Network``.

Table 3's STEP 3.1 "randomly pick a node" with the fairness requirement
that every node reach ``min_visit`` visits.  :class:`FairSampler` draws
uniformly from the nodes that are still below the threshold, which keeps
the sampling equi-probable (the paper's stated goal) while guaranteeing
termination in ``min_visit × |V|`` draws instead of the unbounded
coupon-collector tail of naive uniform sampling.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

__all__ = ["FairSampler"]


class FairSampler:
    """Uniform sampling over nodes that still owe visits.

    Example:
        >>> s = FairSampler(["a", "b"], min_visit=2, seed=0)
        >>> picks = [s.pick() for _ in range(4)]
        >>> s.exhausted
        True
        >>> sorted(picks).count("a")
        2
    """

    def __init__(
        self,
        nodes: Sequence[str],
        min_visit: int,
        seed: Optional[int] = None,
    ):
        if min_visit < 1:
            raise ValueError("min_visit must be >= 1")
        self._rng = random.Random(seed)
        self._min_visit = min_visit
        self.visit: Dict[str, int] = {n: 0 for n in nodes}
        self._pending: List[str] = list(nodes)

    @property
    def exhausted(self) -> bool:
        """True once every node has reached ``min_visit`` visits."""
        return not self._pending

    @property
    def total_visits(self) -> int:
        return sum(self.visit.values())

    def pick(self) -> str:
        """Draw one node still below the visit threshold and count the visit."""
        if not self._pending:
            raise RuntimeError("all nodes already visited min_visit times")
        idx = self._rng.randrange(len(self._pending))
        node = self._pending[idx]
        self.visit[node] += 1
        if self.visit[node] >= self._min_visit:
            last = self._pending.pop()
            if idx < len(self._pending):
                self._pending[idx] = last
        return node

    def __iter__(self):
        while not self.exhausted:
            yield self.pick()
