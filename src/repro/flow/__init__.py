"""Probabilistic multicommodity-flow saturation (Table 3 of the paper)."""

from .distance import distance_levels, inject_flow, update_distance
from .rng import FairSampler
from .saturate import SaturationResult, saturate_network

__all__ = [
    "distance_levels",
    "inject_flow",
    "update_distance",
    "FairSampler",
    "SaturationResult",
    "saturate_network",
]
