"""Probabilistic multicommodity-flow saturation (Table 3 of the paper)."""

from .distance import distance_levels, exp_distance, inject_flow, update_distance
from .index import FlowIndex
from .rng import FairSampler
from .saturate import SaturationResult, saturate_network

__all__ = [
    "distance_levels",
    "exp_distance",
    "inject_flow",
    "update_distance",
    "FlowIndex",
    "FairSampler",
    "SaturationResult",
    "saturate_network",
]
