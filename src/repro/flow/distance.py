"""The congestion distance function ``d(e) = exp(α · flow(e) / cap(e))``.

Table 3, STEP 3.3.2.  The exponential maps accumulated random flow into an
edge length, so subsequent Dijkstra runs *avoid* congested nets; nets that
stay congested despite the avoidance pressure are structurally central —
exactly the nets the paper cuts first (highest ``d``).
"""

from __future__ import annotations

import math
from typing import List

from ..graphs.digraph import CircuitGraph, Net

__all__ = ["update_distance", "distance_levels", "inject_flow"]


def update_distance(net: Net, alpha: float) -> float:
    """Recompute and store ``d(e)`` for one net; returns the new value."""
    net.dist = math.exp(alpha * net.flow / net.cap)
    return net.dist


def inject_flow(net: Net, delta: float, alpha: float) -> None:
    """STEP 3.3: add ``Δ`` of flow to ``net`` and refresh its distance."""
    net.flow += delta
    update_distance(net, alpha)


def distance_levels(graph: CircuitGraph) -> List[float]:
    """Distinct ``d(e)`` values, sorted from max to min (Table 4, STEP 3).

    These are the candidate *boundary* values the clustering loop walks
    down; the paper calls this the "sorted stack of all different values of
    d(E)".
    """
    return sorted({net.dist for net in graph.nets()}, reverse=True)
