"""The congestion distance function ``d(e) = exp(α · flow(e) / cap(e))``.

Table 3, STEP 3.3.2.  The exponential maps accumulated random flow into an
edge length, so subsequent Dijkstra runs *avoid* congested nets; nets that
stay congested despite the avoidance pressure are structurally central —
exactly the nets the paper cuts first (highest ``d``).
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..graphs.digraph import CircuitGraph, Net

__all__ = ["exp_distance", "update_distance", "distance_levels", "inject_flow"]

#: Memo of ``exp(x)`` keyed on the exact float exponent.  Saturation
#: re-evaluates ``d(e)`` after every flow injection, but with uniform Δ and
#: capacity the exponent takes only as many distinct values as there are
#: distinct injection counts — a few hundred on even the largest circuits —
#: so the transcendental is computed once per level instead of once per
#: injection (millions of times on the s38xxx benches).
_EXP_CACHE: Dict[float, float] = {}
_EXP_CACHE_LIMIT = 1 << 16


def exp_distance(exponent: float) -> float:
    """``exp(exponent)`` with memoization over repeated exponent values.

    Bit-identical to :func:`math.exp` — the cache only skips recomputing
    the same float argument, it never substitutes a nearby value.

    >>> import math
    >>> exp_distance(0.08) == math.exp(0.08)
    True
    """
    try:
        return _EXP_CACHE[exponent]
    except KeyError:
        value = math.exp(exponent)
        if len(_EXP_CACHE) >= _EXP_CACHE_LIMIT:  # pragma: no cover - bound
            _EXP_CACHE.clear()
        _EXP_CACHE[exponent] = value
        return value


def update_distance(net: Net, alpha: float) -> float:
    """Recompute and store ``d(e)`` for one net; returns the new value."""
    net.dist = exp_distance(alpha * net.flow / net.cap)
    return net.dist


def inject_flow(net: Net, delta: float, alpha: float) -> None:
    """STEP 3.3: add ``Δ`` of flow to ``net`` and refresh its distance."""
    net.flow += delta
    update_distance(net, alpha)


def distance_levels(graph: CircuitGraph) -> List[float]:
    """Distinct ``d(e)`` values, sorted from max to min (Table 4, STEP 3).

    These are the candidate *boundary* values the clustering loop walks
    down; the paper calls this the "sorted stack of all different values of
    d(E)".
    """
    return sorted({net.dist for net in graph.nets()}, reverse=True)
