"""``Saturate_Network`` — probabilistic multicommodity-flow congestion probe.

Faithful implementation of Table 3 of the paper:

1. every net starts with ``d(e) = 1``, ``flow(e) = 0``, ``cap(e) = b``;
2. every node starts with ``visit(v) = 0``;
3. while some node has been a source fewer than ``min_visit`` times:
   pick such a node uniformly at random, compute the Dijkstra
   shortest-path tree from it under the current distances, and add ``Δ``
   of flow (re-exponentiating the distance) to every net of the tree;
4. the graph now carries a congestion profile ``d(E)``.

Nets inside strongly connected regions absorb flow from many sources and
end up with the largest distances (the paper's Figure 5), which is what
drives the ``Make_Group`` cut ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import MercedConfig
from ..graphs.digraph import CircuitGraph
from ..perf import count as perf_count
from ..perf import stage as perf_stage
from .index import FlowIndex
from .rng import FairSampler

__all__ = ["SaturationResult", "saturate_network"]


@dataclass(frozen=True)
class SaturationResult:
    """Summary statistics of one saturation run.

    The congestion itself lives on the graph (each net's ``flow``/``dist``).
    """

    n_sources: int  # Dijkstra runs performed
    total_flow: float  # sum of flow over all nets
    max_flow: float
    max_dist: float
    visit: Dict[str, int]  # per-node source counts

    @property
    def mean_visit(self) -> float:
        return (
            sum(self.visit.values()) / len(self.visit) if self.visit else 0.0
        )


def saturate_network(
    graph: CircuitGraph,
    config: Optional[MercedConfig] = None,
    index: Optional[FlowIndex] = None,
) -> SaturationResult:
    """Run the modified ``Saturate_Network`` procedure on ``graph`` in place.

    The ``min_visit × |V|`` Dijkstra runs all execute on one prebuilt
    :class:`~repro.flow.index.FlowIndex` (integer-indexed adjacency +
    dense flow arrays), which is bit-identical to — and much faster than —
    driving :func:`repro.graphs.dijkstra.dijkstra_tree` per source.

    Args:
        graph: circuit graph; its per-net flow state is reset first.
        config: supplies ``Δ``, ``α``, ``b``, ``min_visit`` and the RNG
            seed.  Defaults to the paper's published parameters.
        index: a prebuilt :class:`FlowIndex` over ``graph`` to reuse
            (e.g. across parameter sweeps); built here when omitted.

    Returns:
        A :class:`SaturationResult`; the graph's nets now carry the
        congestion distances ``d(E)`` consumed by ``Make_Group``.
    """
    config = config or MercedConfig()
    graph.reset_flow_state(cap=config.cap)
    if index is None:
        from ..graphs.csr import compile_graph

        index = FlowIndex(graph, compiled=compile_graph(graph))
    else:
        index.reload()
    sampler = FairSampler(
        list(graph.nodes()), min_visit=config.min_visit, seed=config.seed
    )
    n_sources = 0
    n_relaxations = 0
    n_injections = 0
    with perf_stage("saturate"):
        for source in sampler:
            n_sources += 1
            tree_nets, relaxed = index.tree_nets_from(source)
            n_relaxations += relaxed
            n_injections += len(tree_nets)
            index.inject(tree_nets, config.delta, config.alpha)
            if (
                config.max_sources is not None
                and n_sources >= config.max_sources
            ):
                break
        index.flush()
    perf_count("dijkstra_runs", n_sources)
    perf_count("relaxations", n_relaxations)
    perf_count("flow_injections", n_injections)
    total = max_flow = max_dist = 0.0
    for net in graph.nets():
        total += net.flow
        if net.flow > max_flow:
            max_flow = net.flow
        if net.dist > max_dist:
            max_dist = net.dist
    return SaturationResult(
        n_sources=n_sources,
        total_flow=total,
        max_flow=max_flow,
        max_dist=max_dist,
        visit=dict(sampler.visit),
    )
