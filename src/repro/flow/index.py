"""Prebuilt integer-indexed graph view for ``Saturate_Network``'s hot loop.

``Saturate_Network`` runs ``min_visit × |V|`` Dijkstra shortest-path
trees.  :func:`repro.graphs.dijkstra.dijkstra_tree` is a faithful but
string-keyed implementation: every run rebuilds ``dist``/``parent`` dicts
keyed by node *names* and chases ``Net`` attribute lookups per edge.  At
the s38xxx scale that dominates the compile.

:class:`FlowIndex` converts the graph **once** into dense integer arrays —
node ids, per-node adjacency of ``(net id, sink ids)`` pairs, per-net
``flow``/``dist``/``cap`` arrays — and then answers every subsequent
Dijkstra/injection query on those arrays.  Per-run state (tentative
distance, settled flag, tree parent) lives in version-stamped scratch
arrays, so repeated runs allocate nothing.

The traversal order, tie-breaking counter, and floating-point operations
replicate :func:`dijkstra_tree` exactly, and flow accumulation/distance
exponentiation replicate :func:`repro.flow.distance.inject_flow` exactly,
so a saturation driven through the index is **bit-identical** to one
driven through the reference implementations (the regression tests assert
this).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.csr import CompiledGraph
from ..graphs.digraph import CircuitGraph
from .distance import exp_distance

__all__ = ["FlowIndex"]


class FlowIndex:
    """Reusable indexed adjacency + flow state for repeated Dijkstra runs.

    Build once per saturation (after ``graph.reset_flow_state``); call
    :meth:`tree_nets_from` per source and :meth:`inject` per tree; call
    :meth:`flush` at the end to write the accumulated ``flow``/``dist``
    back onto the graph's :class:`~repro.graphs.digraph.Net` objects.

    The index snapshots net ``removed`` flags at construction (use
    :meth:`reload` after cut-state changes); saturation always runs on an
    uncut graph, so the snapshot is the common case.

    A prebuilt :class:`~repro.graphs.csr.CompiledGraph` of the same graph
    can be passed to share its interning tables and CSR adjacency —
    the two layers use the identical id assignment (graph insertion
    order for both nodes and nets), so ids are interchangeable.
    """

    def __init__(
        self, graph: CircuitGraph, compiled: Optional[CompiledGraph] = None
    ):
        self.graph = graph
        if compiled is not None and compiled.graph is graph:
            self.node_names = compiled.node_names
            self.node_ids = compiled.node_id
            nets = compiled.nets
            self._nets = nets
            self.net_names = compiled.net_names
            # adjacency rows straight off the CSR arrays (same net order
            # as graph.out_net_objects: both follow graph insertion order)
            out_start = compiled.out_start
            out_net_ids = compiled.out_net_ids
            sink_start = compiled.sink_start
            sink_ids = compiled.sink_ids
            self.adj = []
            for i in range(len(self.node_names)):
                row = []
                for p in range(out_start[i], out_start[i + 1]):
                    ni = out_net_ids[p]
                    row.append(
                        (
                            ni,
                            tuple(
                                sink_ids[
                                    sink_start[ni] : sink_start[ni + 1]
                                ]
                            ),
                        )
                    )
                self.adj.append(row)
        else:
            self.node_names: List[str] = list(graph.nodes())
            self.node_ids: Dict[str, int] = {
                name: i for i, name in enumerate(self.node_names)
            }
            nets = list(graph.nets())
            self._nets = nets
            self.net_names: List[str] = [n.name for n in nets]
            net_ids = {n.name: i for i, n in enumerate(nets)}
            #: per-node list of (net id, tuple of sink node ids), in the
            #: same order ``graph.out_net_objects`` yields nets.
            self.adj: List[List[Tuple[int, Tuple[int, ...]]]] = []
            for name in self.node_names:
                row = [
                    (
                        net_ids[net.name],
                        tuple(self.node_ids[s] for s in net.sinks),
                    )
                    for net in graph.out_net_objects(name)
                ]
                self.adj.append(row)
        n_nets = len(nets)
        self.flow: List[float] = [0.0] * n_nets
        self.dist: List[float] = [1.0] * n_nets
        self.cap: List[float] = [1.0] * n_nets
        self.removed: List[bool] = [False] * n_nets
        self.reload()
        # version-stamped per-run scratch (no per-run allocation)
        n = len(self.node_names)
        self._run = 0
        self._seen: List[int] = [0] * n
        self._done: List[int] = [0] * n
        self._tdist: List[float] = [0.0] * n
        self._parent: List[int] = [-1] * n
        self._net_seen: List[int] = [0] * n_nets

    # ------------------------------------------------------------------
    # state sync with the graph
    # ------------------------------------------------------------------
    def reload(self) -> None:
        """Re-snapshot ``flow``/``dist``/``cap``/``removed`` from the graph."""
        for i, net in enumerate(self._nets):
            self.flow[i] = net.flow
            self.dist[i] = net.dist
            self.cap[i] = net.cap
            self.removed[i] = net.removed

    def flush(self) -> None:
        """Write the index's accumulated flow state back to the graph."""
        for i, net in enumerate(self._nets):
            net.flow = self.flow[i]
            net.dist = self.dist[i]

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------
    def tree_nets_from(self, source: str) -> Tuple[List[int], int]:
        """Distinct net ids of the shortest-path tree rooted at ``source``.

        Returns ``(net_ids, n_relaxations)``; the net set is identical to
        ``dijkstra_tree(graph, source).tree_nets()``.
        """
        src = self.node_ids[source]
        self._run += 1
        run = self._run
        seen, done, tdist, parent = (
            self._seen,
            self._done,
            self._tdist,
            self._parent,
        )
        adj, ndist, removed = self.adj, self.dist, self.removed
        heappush, heappop = heapq.heappush, heapq.heappop
        seen[src] = run
        tdist[src] = 0.0
        parent[src] = -1
        counter = 0
        relaxations = 0
        heap: List[Tuple[float, int, int]] = [(0.0, 0, src)]
        settled: List[int] = []
        settle = settled.append
        while heap:
            d, _, node = heappop(heap)
            if done[node] == run:
                continue
            done[node] = run
            settle(node)
            for net_i, sinks in adj[node]:
                if removed[net_i]:
                    continue
                nd = d + ndist[net_i]
                for sink in sinks:
                    if done[sink] == run:
                        continue
                    if seen[sink] != run or nd < tdist[sink]:
                        seen[sink] = run
                        tdist[sink] = nd
                        parent[sink] = net_i
                        relaxations += 1
                        counter += 1
                        heappush(heap, (nd, counter, sink))
        net_seen = self._net_seen
        tree: List[int] = []
        for node in settled:
            net_i = parent[node]
            if net_i >= 0 and net_seen[net_i] != run:
                net_seen[net_i] = run
                tree.append(net_i)
        return tree, relaxations

    def inject(
        self, net_indices: Sequence[int], delta: float, alpha: float
    ) -> None:
        """Add ``Δ`` of flow to each net and refresh its distance.

        Float-for-float identical to calling
        :func:`repro.flow.distance.inject_flow` on each net.
        """
        flow, dist, cap = self.flow, self.dist, self.cap
        for i in net_indices:
            f = flow[i] + delta
            flow[i] = f
            dist[i] = exp_distance(alpha * f / cap[i])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowIndex {self.graph.name!r}: {len(self.node_names)} nodes, "
            f"{len(self.net_names)} nets>"
        )
