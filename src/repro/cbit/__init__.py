"""CBIT hardware models: A_CELLs, LFSR/MISR registers, the Table 1 catalogue."""

from .acell import ACell, ACellVariant, acell_area_dff, acell_area_units
from .assemble import CBITAssignment, CBITPlan, assemble_cbits
from .insert import BISTCircuit, insert_test_hardware
from .lfsr import LFSR
from .misr import MISR, CBITMode, CBITRegister, aliasing_probability
from .polynomials import (
    MAXIMAL_LFSR_TAPS,
    feedback_taps,
    find_primitive,
    is_irreducible,
    is_primitive,
    poly_degree,
    poly_weight,
    primitive_polynomial,
)
from .types import (
    CBITType,
    PAPER_CBIT_TYPES,
    cbit_cost_for_inputs,
    cbit_type_by_name,
    estimate_cbit_area_dff,
    smallest_type_for,
    testing_time_cycles,
)

__all__ = [
    "ACell",
    "ACellVariant",
    "acell_area_dff",
    "acell_area_units",
    "CBITAssignment",
    "CBITPlan",
    "assemble_cbits",
    "BISTCircuit",
    "insert_test_hardware",
    "LFSR",
    "MISR",
    "CBITMode",
    "CBITRegister",
    "aliasing_probability",
    "MAXIMAL_LFSR_TAPS",
    "feedback_taps",
    "find_primitive",
    "is_irreducible",
    "is_primitive",
    "poly_degree",
    "poly_weight",
    "primitive_polynomial",
    "CBITType",
    "PAPER_CBIT_TYPES",
    "cbit_cost_for_inputs",
    "cbit_type_by_name",
    "estimate_cbit_area_dff",
    "smallest_type_for",
    "testing_time_cycles",
]
