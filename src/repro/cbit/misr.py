"""MISR / dual-mode CBIT register simulation.

A CBIT is a cascadable multiple-input shift register with two operating
modes (Section 1):

* **TPG** — autonomous complete LFSR emitting all ``2^n`` patterns;
* **PSA** — multiple-input signature register: each clock, the LFSR shift
  is XORed bit-wise with the circuit-under-test response word, compacting
  the response stream into an ``n``-bit signature.

:class:`CBITRegister` models one CBIT switching between the two modes, plus
the scan-chain access used for initialization and signature read-out.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Optional

from ..errors import CBITError
from .lfsr import LFSR
from .polynomials import primitive_polynomial

__all__ = ["CBITMode", "MISR", "CBITRegister", "aliasing_probability"]


class CBITMode(enum.Enum):
    TPG = "tpg"  # test pattern generation (autonomous LFSR)
    PSA = "psa"  # parallel signature analysis (MISR)
    SCAN = "scan"  # serial shift for init / read-out


class MISR:
    """Multiple-input signature register over a primitive polynomial.

    Galois form: each clock multiplies the state by ``x`` modulo the
    feedback polynomial and XORs the parallel response word in — the
    standard internal-XOR MISR hardware.

    >>> m = MISR(4, seed=0)
    >>> for word in [0b1010, 0b0001, 0b1111]:
    ...     _ = m.absorb(word)
    >>> 0 <= m.signature < 16
    True
    """

    def __init__(self, width: int, poly: Optional[int] = None, seed: int = 0):
        if width < 2:
            raise CBITError(f"MISR width must be >= 2, got {width}")
        self.width = width
        self.poly = poly if poly is not None else primitive_polynomial(width)
        self._mask = (1 << width) - 1
        self._taps = self.poly & self._mask
        self.state = seed & self._mask

    def absorb(self, word: int) -> int:
        """Clock once with response ``word`` on the parallel inputs."""
        top = (self.state >> (self.width - 1)) & 1
        shifted = (self.state << 1) & self._mask
        if top:
            shifted ^= self._taps
        self.state = shifted ^ (word & self._mask)
        return self.state

    def absorb_stream(self, words: Iterable[int]) -> int:
        for w in words:
            self.absorb(w)
        return self.state

    @property
    def signature(self) -> int:
        return self.state

    def reset(self, seed: int = 0) -> None:
        self.state = seed & self._mask


def aliasing_probability(width: int) -> float:
    """Asymptotic MISR aliasing probability ``2^-width``.

    For long response streams the probability that a faulty response
    stream compacts to the fault-free signature approaches ``2^-n``.
    """
    if width < 1:
        raise CBITError("width must be positive")
    return 2.0 ** (-width)


class CBITRegister:
    """One cascadable built-in tester: dual-mode LFSR/MISR with scan access."""

    def __init__(
        self,
        name: str,
        width: int,
        poly: Optional[int] = None,
        seed: int = 1,
    ):
        if width < 2:
            raise CBITError(f"CBIT width must be >= 2, got {width}")
        self.name = name
        self.width = width
        self.poly = poly if poly is not None else primitive_polynomial(width)
        self._mask = (1 << width) - 1
        self.mode = CBITMode.TPG
        self._lfsr = LFSR(width, poly=self.poly, seed=seed, complete=True)
        self._misr = MISR(width, poly=self.poly, seed=seed)

    # ------------------------------------------------------------------
    @property
    def state(self) -> int:
        return (
            self._lfsr.state if self.mode is CBITMode.TPG else self._misr.state
        )

    def set_mode(self, mode: CBITMode) -> None:
        """Switch mode, carrying the register state across."""
        current = self.state
        self.mode = mode
        self._lfsr.state = current
        self._misr.state = current

    def load(self, value: int) -> None:
        """Parallel initialization (modelling the global scan preload)."""
        self._lfsr.state = value & self._mask
        self._misr.state = value & self._mask

    def clock(self, response_word: int = 0) -> int:
        """Advance one test clock.

        In TPG mode the response word is ignored (the CBIT runs
        autonomously); in PSA mode it is compacted into the signature.
        """
        if self.mode is CBITMode.TPG:
            return self._lfsr.step()
        if self.mode is CBITMode.PSA:
            return self._misr.absorb(response_word)
        raise CBITError("clock() is undefined in SCAN mode; use scan_shift()")

    def scan_shift(self, scan_in: int = 0) -> int:
        """Serial shift by one bit; returns the bit shifted out (MSB)."""
        state = self.state
        out = (state >> (self.width - 1)) & 1
        state = ((state << 1) | (scan_in & 1)) & self._mask
        self.load(state)
        return out

    def patterns(self, n: Optional[int] = None) -> Iterator[int]:
        """TPG pattern stream (all ``2^width`` patterns by default)."""
        if self.mode is not CBITMode.TPG:
            raise CBITError("patterns() requires TPG mode")
        return self._lfsr.sequence(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CBIT {self.name}: width={self.width}, mode={self.mode.value}, "
            f"state={self.state:#x}>"
        )
