"""CBIT size catalogue (Table 1) and the CBIT area/cost model.

Table 1 of the paper lists six CBIT types ``d1..d6`` with lengths 4, 8,
12, 16, 24, 32.  Column 3 (``p_k``, area relative to one DFF) is the cost
of a CBIT whose every register is a fresh A_CELL and whose feedback
polynomial is primitive; column 4 is the per-bit cost ``σ_k = p_k / l_k``,
which *decreases* with length — the economy that motivates the greedy
cluster merging of ``Assign_CBIT``.

We keep the paper's published ``p_k`` values as canonical and also provide
a first-principles estimate (A_CELLs + feedback XOR tree + mode control)
for arbitrary lengths; the bench for Table 1 prints both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import CBITError
from ..netlist.area import ACELL_AREA_UNITS, DFF_AREA_UNITS
from ..netlist.gates import GateType, gate_area_units
from .polynomials import feedback_taps, primitive_polynomial

__all__ = [
    "CBITType",
    "PAPER_CBIT_TYPES",
    "cbit_type_by_name",
    "smallest_type_for",
    "estimate_cbit_area_dff",
    "testing_time_cycles",
    "cbit_cost_for_inputs",
]


@dataclass(frozen=True)
class CBITType:
    """One row of Table 1."""

    name: str  # d1..d6
    length: int  # l_k
    area_dff: float  # p_k: area relative to one plain DFF

    @property
    def area_per_bit(self) -> float:
        """σ_k = p_k / l_k (Table 1, column 4)."""
        return self.area_dff / self.length

    @property
    def testing_time(self) -> int:
        """Pseudo-exhaustive pattern count: 2^l_k clock cycles."""
        return 1 << self.length


#: Table 1 of the paper, verbatim.
PAPER_CBIT_TYPES: Tuple[CBITType, ...] = (
    CBITType("d1", 4, 8.14),
    CBITType("d2", 8, 16.68),
    CBITType("d3", 12, 24.48),
    CBITType("d4", 16, 32.21),
    CBITType("d5", 24, 47.66),
    CBITType("d6", 32, 63.12),
)

_BY_NAME: Dict[str, CBITType] = {t.name: t for t in PAPER_CBIT_TYPES}
_BY_LENGTH: Dict[int, CBITType] = {t.length: t for t in PAPER_CBIT_TYPES}


def cbit_type_by_name(name: str) -> CBITType:
    """Look up a Table 1 CBIT type (``"d1"`` .. ``"d6"``) by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CBITError(f"unknown CBIT type {name!r}") from None


def smallest_type_for(width: int) -> CBITType:
    """Smallest catalogue type whose length covers ``width`` inputs."""
    if width < 0:
        raise CBITError(f"width must be non-negative, got {width}")
    for t in PAPER_CBIT_TYPES:
        if t.length >= width:
            return t
    raise CBITError(
        f"width {width} exceeds the largest CBIT type "
        f"(d6, length {PAPER_CBIT_TYPES[-1].length})"
    )


def estimate_cbit_area_dff(length: int) -> float:
    """First-principles CBIT area estimate in DFF equivalents.

    ``length`` fresh A_CELLs (1.9 each) + the feedback XOR tree of the
    canonical primitive polynomial (one 2-input XOR per tap beyond the
    first) + one 2-input NOR of mode control.  This tracks the paper's
    ``p_k`` within a few percent; the published values remain canonical.
    """
    if length < 2:
        raise CBITError(f"CBIT length must be >= 2, got {length}")
    taps = feedback_taps(primitive_polynomial(length))
    n_xors = max(0, len(taps))  # taps + constant term fold into XOR chain
    units = (
        length * ACELL_AREA_UNITS
        + n_xors * gate_area_units(GateType.XOR, 2)
        + gate_area_units(GateType.NOR, 2)
    )
    return units / DFF_AREA_UNITS


def testing_time_cycles(length: int) -> int:
    """Pseudo-exhaustive testing time of a width-``length`` CBIT: 2^length."""
    if length < 0:
        raise CBITError("length must be non-negative")
    return 1 << length


def cbit_cost_for_inputs(
    n_inputs: int, catalogue: Sequence[CBITType] = PAPER_CBIT_TYPES
) -> Tuple[float, List[CBITType]]:
    """Cheapest catalogue CBIT (cascade) covering ``n_inputs`` bits.

    Clusters wider than the largest type use cascaded CBITs (CBITs are
    cascadable by construction); within the catalogue the smallest
    covering type is also the cheapest because ``p_k`` grows with length.

    Returns:
        ``(total p cost in DFF equivalents, list of types used)``.
    """
    if n_inputs < 0:
        raise CBITError(f"n_inputs must be non-negative, got {n_inputs}")
    if n_inputs == 0:
        return 0.0, []
    ordered = sorted(catalogue, key=lambda t: t.length)
    largest = ordered[-1]
    types: List[CBITType] = []
    remaining = n_inputs
    while remaining > largest.length:
        types.append(largest)
        remaining -= largest.length
    for t in ordered:
        if t.length >= remaining:
            types.append(t)
            break
    return sum(t.area_dff for t in types), types
