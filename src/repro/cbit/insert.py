"""Emit the test-ready netlist: A_CELLs, CBIT feedback, mode and scan wiring.

This is the BIST compiler's actual output artifact.  Given the original
circuit and Merced's partition, it rebuilds the netlist with the test
hardware *in place*:

* every existing DFF that serves a CBIT is **converted** to an A_CELL:
  its data input becomes ``XOR(D, AND(chain_in, test_mode))`` — in normal
  mode the AND forces 0 and the XOR is transparent, so the functional
  behaviour is bit-identical (this is exactly why Figure 3's A_CELL gates
  the feedback with an AND);
* every **cut net** receives a MUXED A_CELL (Figure 3(c)): a fresh DFF
  behind the same XOR/AND pair, with a 2-to-1 MUX steering the original
  combinational value in normal mode and the test register in test mode;
* cells of one cluster are chained into a CBIT: cell ``i`` receives cell
  ``i−1``'s output on its test path, and cell 0 closes the feedback
  through an XOR tree over primitive-polynomial tap positions plus a NOR
  zero-injection term (complete-LFSR-style feedback; the exact-sequence
  behavioural model lives in :mod:`repro.cbit.lfsr`);
* optionally a scan path (``scan_en``/``scan_in``/``scan_out``) threads
  every test register for initialization and signature read-out.

Structure vs accounting: the emitted gates are the functionally minimal
realisation (one NOR per CBIT rather than per cell); the paper's Table 1
area constants remain the canonical *cost model* (`repro.core.cost`), and
:attr:`BISTCircuit.added_area_units` reports the literal inserted area for
cross-checking.

Normal-mode equivalence of the emitted netlist is verified by simulation
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import CBITError
from ..graphs.digraph import NodeKind
from ..netlist.cells import Cell
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from ..netlist.transform import fresh_signal_name
from ..partition.clusters import Partition
from .polynomials import primitive_polynomial

__all__ = ["BISTCircuit", "insert_test_hardware"]

TEST_MODE = "test_mode"
SCAN_EN = "scan_en"
SCAN_IN = "scan_in"
SCAN_OUT = "scan_out"


@dataclass
class BISTCircuit:
    """The emitted test-ready netlist plus its bookkeeping."""

    netlist: Netlist
    original_name: str
    converted_dffs: Tuple[str, ...]  # existing DFFs now inside CBITs
    cut_cells: Dict[str, str]  # cut net -> test register (DFF output)
    cbit_chains: Dict[int, Tuple[str, ...]]  # cluster -> register chain
    has_scan: bool
    added_area_units: int

    @property
    def n_test_registers(self) -> int:
        return len(self.cut_cells)

    @property
    def chain_order(self) -> List[str]:
        out: List[str] = []
        for cid in sorted(self.cbit_chains):
            out.extend(self.cbit_chains[cid])
        return out


class _Inserter:
    def __init__(self, source: Netlist):
        self.src = source
        self.out = Netlist(f"{source.name}_bist")
        self.added_area = 0

    def gate(self, base: str, gtype: GateType, inputs: Sequence[str]) -> str:
        name = fresh_signal_name(self.out, base)
        self.out.add_gate(name, gtype, list(inputs))
        self.added_area += self.out.cell(name).area_units
        return name

    def dff(self, base: str, data: str) -> str:
        name = fresh_signal_name(self.out, base)
        self.out.add_dff(name, data)
        self.added_area += 10
        return name


def _xor_tree(ins: _Inserter, base: str, terms: Sequence[str]) -> str:
    """Balanced XOR reduction of ``terms`` (at least one)."""
    terms = list(terms)
    if not terms:
        raise CBITError("empty XOR tree")
    while len(terms) > 1:
        nxt = []
        for i in range(0, len(terms) - 1, 2):
            nxt.append(ins.gate(f"{base}_x", GateType.XOR, terms[i : i + 2]))
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]


def insert_test_hardware(
    netlist: Netlist,
    partition: Partition,
    include_scan: bool = False,
    include_primary_inputs: bool = False,
    include_primary_outputs: bool = False,
    dual_mode_controls: bool = False,
) -> BISTCircuit:
    """Rebuild ``netlist`` with PPET test hardware inserted.

    Args:
        netlist: the compiled circuit (must match ``partition.graph``).
        partition: Merced's final partition; its cut nets receive MUXED
            A_CELLs and its clusters define the CBIT chains.
        include_scan: thread a scan path through every test register
            (adds one MUX per register beyond the paper's area model).
        include_primary_inputs: also place test registers on primary
            input nets (full in-situ TPG; off by default — the paper's
            area tables count internal cut nets only).
        include_primary_outputs: add shadow observer A_CELLs on primary
            output nets (the output CBITs of Figure 1(a)); they compact
            POs in test mode and drive nothing functional, so normal-mode
            behaviour is untouched.
        dual_mode_controls: give every CBIT chain its own ``psa_en_<id>``
            input selecting PSA (fold responses) vs TPG (pure LFSR) —
            the dual-mode role switching of Section 1 that test pipes
            exploit.  Adds one AND per cell and an OR per chain; normal
            mode stays transparent for any control values.

    Returns:
        A :class:`BISTCircuit`; its netlist has one extra primary input
        ``test_mode`` (plus scan pins when requested) and is bit-identical
        to the original when ``test_mode = 0``.
    """
    graph = partition.graph
    ins = _Inserter(netlist)
    out = ins.out
    for pi in netlist.inputs:
        out.add_input(pi)
    out.add_input(TEST_MODE)
    if include_scan:
        out.add_input(SCAN_EN)
        out.add_input(SCAN_IN)
    not_tm = None
    if dual_mode_controls:
        not_tm = ins.gate("ntm", GateType.NOT, [TEST_MODE])

    cut_nets = sorted(partition.cut_nets())
    cut_set = set(cut_nets)
    pi_sites: List[str] = []
    if include_primary_inputs:
        pi_sites = [
            pi
            for pi in netlist.inputs
            if graph.has_net(pi)
        ]

    # ------------------------------------------------------------------
    # Pass 1: copy combinational cells verbatim; their input signals are
    # rewired in pass 3 (cut nets reroute through the A_CELL muxes).
    rewire: Dict[str, str] = {}  # original signal -> signal sinks should read

    # ------------------------------------------------------------------
    # Pass 2: group test-register sites by cluster and build the cells.
    # A cut net belongs to the CBIT of (the first) cluster reading it.
    site_cluster: Dict[str, int] = {}
    for cluster in partition.clusters:
        for net_name in sorted(cluster.input_nets):
            if net_name in cut_set or net_name in pi_sites:
                site_cluster.setdefault(net_name, cluster.cluster_id)
    # converted DFFs: existing registers whose output feeds some cluster
    converted: List[str] = []
    dff_cluster: Dict[str, int] = {}
    for cluster in partition.clusters:
        for net_name in sorted(cluster.input_nets):
            src = graph.net(net_name).source
            if graph.kind(src) is NodeKind.REGISTER:
                if src not in dff_cluster:
                    dff_cluster[src] = cluster.cluster_id
                    converted.append(src)

    chains: Dict[int, List[Tuple[str, str]]] = {}
    # per cluster: list of (site kind marker, placeholder) — we build the
    # actual gates after choosing chain order, since cell i needs cell
    # i-1's register output.
    for net_name, cid in sorted(site_cluster.items()):
        chains.setdefault(cid, []).append(("cut", net_name))
    for dff_name, cid in sorted(dff_cluster.items()):
        chains.setdefault(cid, []).append(("dff", dff_name))
    if include_primary_outputs:
        for po in netlist.outputs:
            cl = partition.cluster_of(po)
            if cl is None:
                continue  # PO driven by a PI feed-through
            chains.setdefault(cl.cluster_id, []).append(("po", po))

    cut_cells: Dict[str, str] = {}
    cbit_chains: Dict[int, Tuple[str, ...]] = {}
    scan_prev = SCAN_IN if include_scan else None

    # DFF conversion data inputs must exist before we reference them, but
    # gates reference *signals*, which the netlist validates lazily — we
    # can create everything and validate once at the end.
    psa_inputs: Dict[int, str] = {}
    for cid in sorted(chains):
        if dual_mode_controls:
            pin = f"psa_en_{cid}"
            out.add_input(pin)
            psa_inputs[cid] = pin
    for cid in sorted(chains):
        sites = chains[cid]
        psa_gate = None
        if dual_mode_controls:
            # 1 in normal mode (data transparent) and in PSA role;
            # 0 only in test-mode TPG role (pure LFSR shifting)
            psa_gate = ins.gate(
                f"cbit{cid}_psa", GateType.OR, [psa_inputs[cid], not_tm]
            )
        regs: List[str] = []
        # register output names, in chain order (needed for feedback)
        planned: List[str] = []
        for kind, name in sites:
            if kind == "dff":
                planned.append(name)  # keep the original register name
            elif kind == "po":
                planned.append(f"{name}__pocell_q")
            else:
                planned.append(f"{name}__acell_q")
        width = len(planned)
        # Feedback into cell 0, emulating repro.cbit.lfsr.LFSR exactly:
        # cell i holds LFSR bit (w_eff-1-i); the new top bit is the parity
        # of the characteristic polynomial's tap bits, XOR the NOR of the
        # surviving bits (the complete-cycle zero injection).  Chains
        # longer than 32 keep shifting past the feedback span (the
        # sequence is then non-maximal but still live).
        w_eff = min(width, 32)
        if w_eff >= 2:
            poly = primitive_polynomial(w_eff)
            mask = (1 << w_eff) - 1
            tap_regs = [
                planned[w_eff - 1 - t]
                for t in range(w_eff)
                if (poly >> t) & 1
            ]
            fb_terms = list(dict.fromkeys(tap_regs))
            fb = (
                _xor_tree(ins, f"cbit{cid}_fb", fb_terms)
                if len(fb_terms) > 1
                else fb_terms[0]
            )
            survivors = planned[: w_eff - 1]
            if len(survivors) == 1:
                survivors = survivors * 2  # 2-input NOR minimum
            zero_inj = ins.gate(
                f"cbit{cid}_zero", GateType.NOR, survivors
            )
            fb = ins.gate(f"cbit{cid}_fbz", GateType.XOR, [fb, zero_inj])
        else:
            # single-cell chain: complete cycle = toggle (fb = NOT state)
            fb = ins.gate(
                f"cbit{cid}_zero", GateType.NOR, [planned[0], planned[0]]
            )

        prev = fb
        for (kind, name), reg_name in zip(sites, planned):
            # test-path injection: XOR(D, AND(prev, test_mode))
            gate_in = ins.gate(
                f"{reg_name}_and", GateType.AND, [prev, TEST_MODE]
            )
            if kind == "dff":
                data = netlist.cell(name).inputs[0]
            else:
                data = name  # the cut/PI/PO signal being registered
            if psa_gate is not None:
                data = ins.gate(
                    f"{reg_name}_gate", GateType.AND, [data, psa_gate]
                )
            xored = ins.gate(f"{reg_name}_xor", GateType.XOR, [data, gate_in])
            d_in = xored
            if include_scan:
                d_in = ins.gate(
                    f"{reg_name}_scan",
                    GateType.MUX2,
                    [xored, scan_prev, SCAN_EN],
                )
            if kind == "dff":
                # the original register, now fed through the test XOR
                out.add_dff(name, d_in)
            elif kind == "po":
                # shadow observer: compacts the PO, drives nothing
                ins.dff(reg_name, d_in)
            else:
                q = ins.dff(reg_name, d_in)
                mux = ins.gate(
                    f"{name}__acell_mux",
                    GateType.MUX2,
                    [name, q, TEST_MODE],
                )
                cut_cells[name] = q
                rewire[name] = mux
            prev = reg_name
            if include_scan:
                scan_prev = reg_name
            regs.append(reg_name)
        cbit_chains[cid] = tuple(regs)

    # ------------------------------------------------------------------
    # Pass 3: copy combinational cells, rerouting reads of cut nets to the
    # A_CELL muxes (reads *inside the source's own cluster* keep the direct
    # wire — the register serves the downstream cluster).
    for cell in netlist.comb_cells():
        reader_cluster = partition.cluster_of(cell.output)
        new_inputs = []
        for sig in cell.inputs:
            if sig in rewire:
                src_cluster = partition.cluster_of(graph.net(sig).source)
                if reader_cluster is not None and reader_cluster is src_cluster:
                    new_inputs.append(sig)
                else:
                    new_inputs.append(rewire[sig])
            else:
                new_inputs.append(sig)
        out.add_cell(Cell(cell.output, cell.gtype, tuple(new_inputs)))
    # original DFFs not converted: copy verbatim
    for cell in netlist.dff_cells():
        if cell.output not in dff_cluster:
            out.add_cell(cell)

    for po in netlist.outputs:
        out.add_output(po)
    if include_scan and scan_prev is not None:
        buf = ins.gate(SCAN_OUT, GateType.BUF, [scan_prev])
        out.add_output(buf)

    out.validate()
    return BISTCircuit(
        netlist=out,
        original_name=netlist.name,
        converted_dffs=tuple(converted),
        cut_cells=cut_cells,
        cbit_chains=cbit_chains,
        has_scan=include_scan,
        added_area_units=ins.added_area,
    )
