"""Assemble concrete CBIT hardware assignments from a partition.

Each cluster of the final partition receives one (cascaded) CBIT spanning
its input nets; the catalogue type is the smallest Table 1 entry covering
the cluster's input count.  The plan records the net ordering so the PPET
session simulator can map LFSR state bits onto circuit signals
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import CBITError
from ..partition.clusters import Partition
from .types import CBITType, cbit_cost_for_inputs

__all__ = ["CBITAssignment", "CBITPlan", "assemble_cbits"]


@dataclass(frozen=True)
class CBITAssignment:
    """CBIT serving one cluster's inputs."""

    cluster_id: int
    input_nets: Tuple[str, ...]  # bit i of the TPG state drives net i
    types: Tuple[CBITType, ...]  # catalogue types (cascade when > d6)
    cost_dff: float  # Σ p_k for this assignment

    @property
    def width(self) -> int:
        return len(self.input_nets)

    @property
    def testing_time(self) -> int:
        """Exhaustive pattern count for this CUT: 2^width."""
        return 1 << self.width


@dataclass(frozen=True)
class CBITPlan:
    """Full CBIT complement for a partition (Eq. 4's Σ = Σ p_k n_k)."""

    assignments: Tuple[CBITAssignment, ...]
    total_cost_dff: float

    @property
    def n_cbits(self) -> int:
        return sum(len(a.types) for a in self.assignments)

    def widest(self) -> int:
        return max((a.width for a in self.assignments), default=0)

    def by_cluster(self, cluster_id: int) -> CBITAssignment:
        for a in self.assignments:
            if a.cluster_id == cluster_id:
                return a
        raise CBITError(f"no CBIT assigned to cluster {cluster_id}")


def assemble_cbits(partition: Partition) -> CBITPlan:
    """Build the CBIT plan for ``partition``.

    Clusters with no combinational inputs (pure register clusters) get no
    CBIT.  Input nets are ordered deterministically (sorted) so simulation
    runs are reproducible.
    """
    assignments: List[CBITAssignment] = []
    total = 0.0
    for cluster in partition.clusters:
        if cluster.input_count == 0:
            continue
        cost, types = cbit_cost_for_inputs(cluster.input_count)
        assignments.append(
            CBITAssignment(
                cluster_id=cluster.cluster_id,
                input_nets=tuple(sorted(cluster.input_nets)),
                types=tuple(types),
                cost_dff=cost,
            )
        )
        total += cost
    return CBITPlan(assignments=tuple(assignments), total_cost_dff=total)
