"""Primitive feedback polynomials over GF(2) for CBIT/LFSR construction.

A CBIT in TPG mode is a maximal-length LFSR; its feedback polynomial must
be *primitive* so the register cycles through all ``2^n - 1`` non-zero
states (plus the all-zero state injected by the A_CELL's NOR term — see
:mod:`repro.cbit.lfsr`).  This module provides:

* a vetted table of minimal-tap primitive polynomials for degrees 2–32
  (the classic maximal-LFSR tap table);
* full primitivity testing (irreducibility via Rabin's test + order check
  against the prime factorization of ``2^n − 1``), used by the test suite
  to verify every table entry from first principles.

Polynomials are encoded as Python ints: bit ``i`` is the coefficient of
``x^i`` (so ``x^4 + x^3 + 1`` is ``0b11001`` = 25).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from ..errors import CBITError

__all__ = [
    "MAXIMAL_LFSR_TAPS",
    "primitive_polynomial",
    "poly_degree",
    "poly_weight",
    "feedback_taps",
    "poly_mul_mod",
    "poly_pow_mod",
    "is_irreducible",
    "is_primitive",
    "find_primitive",
]

#: Maximal-length LFSR tap positions per register length (degree).  Each
#: entry lists the exponents (including the degree itself) whose sum with
#: the constant 1 forms the characteristic polynomial.
MAXIMAL_LFSR_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


def primitive_polynomial(degree: int) -> int:
    """The library's canonical primitive polynomial of ``degree``.

    >>> bin(primitive_polynomial(4))
    '0b11001'
    """
    try:
        taps = MAXIMAL_LFSR_TAPS[degree]
    except KeyError:
        raise CBITError(
            f"no primitive polynomial tabulated for degree {degree}; "
            f"supported degrees are 2..32"
        ) from None
    poly = 1  # the +1 term
    for t in taps:
        poly |= 1 << t
    return poly


def poly_degree(poly: int) -> int:
    """Degree of a GF(2) polynomial (``-1`` for the zero polynomial)."""
    return poly.bit_length() - 1


def poly_weight(poly: int) -> int:
    """Number of non-zero coefficients."""
    return bin(poly).count("1")


def feedback_taps(poly: int) -> List[int]:
    """Exponents of the non-constant, non-leading terms (the XOR taps)."""
    deg = poly_degree(poly)
    return [i for i in range(1, deg) if (poly >> i) & 1]


def poly_mul_mod(a: int, b: int, mod: int) -> int:
    """``a·b mod m`` in GF(2)[x]."""
    deg = poly_degree(mod)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if poly_degree(a) >= deg:
            a ^= mod
    return result


def poly_pow_mod(base: int, exponent: int, mod: int) -> int:
    """``base^exponent mod m`` in GF(2)[x] by square-and-multiply."""
    result = 1
    base %= 1 << (poly_degree(mod) + 1)
    while exponent:
        if exponent & 1:
            result = poly_mul_mod(result, base, mod)
        base = poly_mul_mod(base, base, mod)
        exponent >>= 1
    return result


def _poly_gcd(a: int, b: int) -> int:
    while b:
        deg_a, deg_b = poly_degree(a), poly_degree(b)
        if deg_a < deg_b:
            a, b = b, a
            continue
        a ^= b << (deg_a - deg_b)
    return a


@lru_cache(maxsize=None)
def _prime_factors(n: int) -> Tuple[int, ...]:
    """Distinct prime factors by trial division (fine for n ≤ 2^32)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return tuple(factors)


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test over GF(2).

    ``poly`` is irreducible iff ``x^(2^n) ≡ x (mod poly)`` and for every
    prime divisor ``q`` of ``n``, ``gcd(x^(2^(n/q)) − x, poly) = 1``.
    """
    n = poly_degree(poly)
    if n <= 0:
        return False
    if not poly & 1:  # divisible by x
        return n == 1 and poly == 0b10
    x = 0b10
    if poly_pow_mod(x, 1 << n, poly) != x:
        return False
    for q in _prime_factors(n):
        h = poly_pow_mod(x, 1 << (n // q), poly) ^ x
        if _poly_gcd(poly, h) != 1:
            return False
    return True


def is_primitive(poly: int) -> bool:
    """True iff ``poly`` is primitive over GF(2).

    Primitive ⇔ irreducible and the root's multiplicative order equals
    ``2^n − 1``: checked via ``x^((2^n−1)/q) ≠ 1`` for every prime ``q``
    dividing ``2^n − 1``.
    """
    n = poly_degree(poly)
    if n < 1:
        return False
    if n == 1:
        return poly == 0b11  # x + 1
    if not is_irreducible(poly):
        return False
    order = (1 << n) - 1
    x = 0b10
    for q in _prime_factors(order):
        if poly_pow_mod(x, order // q, poly) == 1:
            return False
    return True


def find_primitive(degree: int, max_weight: int = 7) -> int:
    """Search for a minimal-weight primitive polynomial of ``degree``.

    Enumerates candidate tap sets by increasing weight; used to validate
    (and, if ever needed, regenerate) :data:`MAXIMAL_LFSR_TAPS`.
    """
    from itertools import combinations

    if degree < 2:
        raise CBITError("degree must be at least 2")
    base = (1 << degree) | 1
    for weight in range(3, max_weight + 1):
        n_taps = weight - 2
        for taps in combinations(range(1, degree), n_taps):
            poly = base
            for t in taps:
                poly |= 1 << t
            if is_primitive(poly):
                return poly
    raise CBITError(
        f"no primitive polynomial of degree {degree} with weight "
        f"<= {max_weight} found"
    )
