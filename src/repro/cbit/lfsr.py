"""Maximal-length LFSR with all-state (complete-cycle) modification.

In TPG mode a CBIT behaves as an autonomous LFSR.  The plain Fibonacci
LFSR over a primitive polynomial cycles through the ``2^n − 1`` non-zero
states; the A_CELL's NOR term injects the all-zero state into the cycle
(the classic *complete* LFSR trick: the feedback bit is additionally
inverted when the ``n−1`` low-order state bits are all zero), so a CBIT of
width ``n`` emits **all** ``2^n`` patterns — the pseudo-exhaustive test
set of its circuit segment — in ``2^n`` clocks.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..errors import CBITError
from .polynomials import is_primitive, poly_degree, primitive_polynomial

__all__ = ["LFSR"]


class LFSR:
    """Fibonacci LFSR, optionally with the complete-cycle modification.

    State convention: bit ``j`` of :attr:`state` holds sequence element
    ``a_{k+j}``; each step shifts toward lower indices and inserts the
    feedback bit at stage ``n−1``.  With characteristic polynomial
    ``p(x) = x^n + Σ c_j x^j`` the recurrence is
    ``a_{k+n} = Σ c_j a_{k+j}``, i.e. the feedback is the parity of
    ``state & (p & (2^n − 1))`` — maximal period for primitive ``p``.

    Example — a complete width-4 CBIT visits all 16 states:
        >>> lfsr = LFSR(4)
        >>> states = [lfsr.step() for _ in range(16)]
        >>> sorted(states) == list(range(16))
        True
    """

    def __init__(
        self,
        width: int,
        poly: Optional[int] = None,
        seed: int = 1,
        complete: bool = True,
    ):
        if width < 2:
            raise CBITError(f"LFSR width must be >= 2, got {width}")
        self.width = width
        self.poly = poly if poly is not None else primitive_polynomial(width)
        if poly_degree(self.poly) != width:
            raise CBITError(
                f"polynomial degree {poly_degree(self.poly)} does not match "
                f"width {width}"
            )
        if not is_primitive(self.poly):
            raise CBITError(
                f"feedback polynomial {bin(self.poly)} is not primitive; "
                f"the CBIT would not be maximal-length"
            )
        self.complete = complete
        self._mask = (1 << width) - 1
        #: Feedback tap mask: state bits XORed to form the feedback
        #: (all terms of the characteristic polynomial except x^width,
        #: with the constant term mapping to stage 0... stage i holds x^i).
        self._taps = self.poly & self._mask
        self.state = seed & self._mask
        if not complete and self.state == 0:
            raise CBITError("non-complete LFSR cannot start in the zero state")

    def _feedback(self) -> int:
        fb = bin(self.state & self._taps).count("1") & 1
        if self.complete:
            # NOR of the n-1 stages that survive the shift (bits 1..n-1):
            # splices the all-zero state into the maximal cycle.
            if (self.state >> 1) == 0:
                fb ^= 1
        return fb

    def step(self) -> int:
        """Advance one clock; returns the new state (the emitted pattern)."""
        fb = self._feedback()
        self.state = (self.state >> 1) | (fb << (self.width - 1))
        return self.state

    def sequence(self, n: Optional[int] = None) -> Iterator[int]:
        """Yield ``n`` successive states (default: one full period).

        The full period is ``2^width`` for a complete LFSR and
        ``2^width − 1`` otherwise.
        """
        if n is None:
            n = (1 << self.width) - (0 if self.complete else 1)
        for _ in range(n):
            yield self.step()

    def period(self, limit: Optional[int] = None) -> int:
        """Measure the actual cycle length from the current state."""
        start = self.state
        limit = limit if limit is not None else (1 << self.width) + 1
        for i in range(1, limit + 1):
            if self.step() == start:
                return i
        raise CBITError(f"no cycle within {limit} steps")  # pragma: no cover
