"""A_CELL — the augmentable test register cell of Figure 3.

An A_CELL wraps a D flip-flop with a 2-input AND (scan/feedback gating),
a 2-input NOR (all-zero state injection so the LFSR visits the zero
pattern) and a 2-input XOR (feedback/signature compaction).  Three build
variants appear in the paper:

* ``FRESH`` (Figure 3(a)) — a brand-new A_CELL: the three gates plus a new
  DFF, 19 units = **1.9 × DFF**.
* ``RETIMED`` (Figure 3(b)) — an existing functional DFF moved to the cut
  location by retiming; only the three gates are added, 9 units =
  **0.9 × DFF**.
* ``MUXED`` (Figure 3(c)) — no functional DFF can legally reach the cut
  (Eq. 2 forbids changing cycle register counts), so a fresh A_CELL plus a
  2-to-1 MUX splits the normal path ``D_n → MUX → Q_n`` from the test path
  ``D_n → AND → XOR → DFF → MUX → Q_n``: **2.3 × DFF** as quoted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..netlist.area import (
    ACELL_AREA_UNITS,
    ACELL_MUXED_AREA_UNITS,
    ACELL_RETIMED_EXTRA_UNITS,
    DFF_AREA_UNITS,
)
from ..netlist.gates import GateType

__all__ = ["ACellVariant", "ACell", "acell_area_units", "acell_area_dff"]


class ACellVariant(enum.Enum):
    """How the A_CELL at a cut net is realized."""

    FRESH = "fresh"  # new DFF + 3 gates (Figure 3(a))
    RETIMED = "retimed"  # existing DFF moved here + 3 gates (Figure 3(b))
    MUXED = "muxed"  # new DFF + 3 gates + 2:1 MUX (Figure 3(c))


_VARIANT_AREA = {
    ACellVariant.FRESH: ACELL_AREA_UNITS,
    ACellVariant.RETIMED: ACELL_RETIMED_EXTRA_UNITS,
    ACellVariant.MUXED: ACELL_MUXED_AREA_UNITS,
}


def acell_area_units(variant: ACellVariant) -> int:
    """Added area in abstract units for one A_CELL of the given variant."""
    return _VARIANT_AREA[variant]


def acell_area_dff(variant: ACellVariant) -> float:
    """Added area in DFF equivalents (the paper's 1.9 / 0.9 / 2.3)."""
    return _VARIANT_AREA[variant] / DFF_AREA_UNITS


@dataclass(frozen=True)
class ACell:
    """One test register instance placed on a cut net."""

    net: str  # the cut net this cell registers
    variant: ACellVariant
    moved_dff: str = ""  # for RETIMED: name of the functional DFF reused

    @property
    def area_units(self) -> int:
        return acell_area_units(self.variant)

    @property
    def added_gates(self) -> Tuple[GateType, ...]:
        """The gate complement added around the (new or reused) DFF."""
        gates = (GateType.AND, GateType.NOR, GateType.XOR)
        if self.variant is ACellVariant.MUXED:
            return gates + (GateType.MUX2,)
        return gates

    @property
    def needs_new_dff(self) -> bool:
        return self.variant is not ACellVariant.RETIMED
