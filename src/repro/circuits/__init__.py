"""Benchmark circuits: exact s27 + synthetic ISCAS89-profile stand-ins."""

from .generator import generate_by_name, generate_circuit
from .library import available_circuits, load_circuit
from .profiles import CircuitProfile, TABLE9_PROFILES, profile_by_name
from .s27 import S27_BENCH, s27_netlist

__all__ = [
    "generate_by_name",
    "generate_circuit",
    "available_circuits",
    "load_circuit",
    "CircuitProfile",
    "TABLE9_PROFILES",
    "profile_by_name",
    "S27_BENCH",
    "s27_netlist",
]
