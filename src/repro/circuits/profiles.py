"""Table 9 circuit profiles — the statistics of the 17 ISCAS89 test cases.

The actual ISCAS89 netlists are not shipped (see DESIGN.md §4); these
profiles drive the synthetic generator so that every algorithm sees inputs
with the published size, fan-in mix, register count and area.  The paper's
Tables 10/11 additionally report how many DFFs sit on SCCs; the profile's
``dffs_on_scc`` target reproduces that structural property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CircuitProfile", "TABLE9_PROFILES", "profile_by_name"]


@dataclass(frozen=True)
class CircuitProfile:
    """One row of Table 9 (+ the DFFs-on-SCC column of Tables 10/11)."""

    name: str
    n_inputs: int
    n_dffs: int
    n_gates: int  # non-inverter combinational gates
    n_inverters: int
    paper_area: int  # Table 9 "Estimated Area"
    dffs_on_scc: int  # Tables 10/11, column 3
    n_outputs: int = 1

    @property
    def n_cells(self) -> int:
        return self.n_dffs + self.n_gates + self.n_inverters


#: name → profile, in Table 9 order.
TABLE9_PROFILES: Dict[str, CircuitProfile] = {
    p.name: p
    for p in (
        CircuitProfile("s510", 19, 6, 179, 32, 547, 6, n_outputs=7),
        CircuitProfile("s420.1", 18, 16, 140, 78, 620, 16, n_outputs=1),
        CircuitProfile("s641", 35, 19, 107, 272, 832, 15, n_outputs=24),
        CircuitProfile("s713", 35, 19, 139, 254, 892, 15, n_outputs=23),
        CircuitProfile("s820", 18, 5, 256, 33, 943, 5, n_outputs=19),
        CircuitProfile("s832", 18, 5, 262, 25, 961, 5, n_outputs=19),
        CircuitProfile("s838.1", 34, 32, 288, 158, 1268, 32, n_outputs=1),
        CircuitProfile("s1423", 17, 74, 490, 167, 2238, 71, n_outputs=5),
        CircuitProfile("s5378", 35, 179, 1004, 1775, 6241, 124, n_outputs=49),
        CircuitProfile("s9234.1", 36, 211, 2027, 3570, 11467, 172, n_outputs=39),
        CircuitProfile("s9234", 19, 228, 2027, 3570, 11637, 173, n_outputs=22),
        CircuitProfile("s13207.1", 62, 638, 2573, 5378, 19171, 462, n_outputs=152),
        CircuitProfile("s13207", 31, 669, 2573, 5378, 19476, 463, n_outputs=121),
        CircuitProfile("s15850.1", 77, 534, 3448, 6324, 21305, 487, n_outputs=150),
        CircuitProfile("s35932", 35, 1728, 12204, 3861, 50625, 1728, n_outputs=320),
        CircuitProfile("s38417", 28, 1636, 8709, 13470, 52768, 1166, n_outputs=106),
        CircuitProfile("s38584.1", 38, 1426, 11448, 7805, 55147, 1424, n_outputs=304),
    )
}


def profile_by_name(name: str) -> CircuitProfile:
    """Look up a Table 9 profile; raises ``KeyError`` with suggestions."""
    try:
        return TABLE9_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(TABLE9_PROFILES))
        raise KeyError(f"unknown circuit profile {name!r}; known: {known}") from None
