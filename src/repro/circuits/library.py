"""Circuit registry: exact s27 plus the synthetic Table 9 stand-ins.

``load_circuit("s27")`` returns the embedded ISCAS89 original;
``load_circuit("s5378")`` (etc.) returns the deterministic synthetic
equivalent built by :mod:`repro.circuits.generator`.  Real ``.bench``
files can be loaded through :func:`repro.netlist.parse_bench_file` and
used everywhere a generated circuit is.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

from ..netlist.netlist import Netlist
from .generator import generate_circuit
from .profiles import TABLE9_PROFILES, profile_by_name
from .s27 import s27_netlist

__all__ = ["available_circuits", "load_circuit"]


def available_circuits() -> List[str]:
    """Names accepted by :func:`load_circuit` (s27 + Table 9 profiles)."""
    return ["s27"] + list(TABLE9_PROFILES)


@lru_cache(maxsize=None)
def _cached(name: str, seed: Optional[int]) -> Netlist:
    if name == "s27":
        return s27_netlist()
    return generate_circuit(profile_by_name(name), seed=seed)


def load_circuit(name: str, seed: Optional[int] = None) -> Netlist:
    """Load a benchmark circuit by name.

    Results are cached per ``(name, seed)``; a defensive copy is returned
    so callers may mutate freely.
    """
    return _cached(name, seed).copy()
