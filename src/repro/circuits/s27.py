"""The ISCAS89 s27 benchmark — the paper's running example (Figure 2).

s27 is small enough to be public knowledge (it is reprinted in the paper
itself): 4 primary inputs, 1 primary output, 3 DFFs and 10 combinational
gates.  We embed it exactly, both as a netlist builder and as the original
``.bench`` text.
"""

from __future__ import annotations

from ..netlist.gates import GateType
from ..netlist.netlist import Netlist

__all__ = ["s27_netlist", "S27_BENCH"]

#: Canonical ISCAS89 s27 in .bench format.
S27_BENCH = """\
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def s27_netlist() -> Netlist:
    """Build the exact s27 netlist (validated)."""
    nl = Netlist("s27")
    for pi in ("G0", "G1", "G2", "G3"):
        nl.add_input(pi)
    nl.add_output("G17")
    nl.add_dff("G5", "G10")
    nl.add_dff("G6", "G11")
    nl.add_dff("G7", "G13")
    nl.add_gate("G14", GateType.NOT, ["G0"])
    nl.add_gate("G17", GateType.NOT, ["G11"])
    nl.add_gate("G8", GateType.AND, ["G14", "G6"])
    nl.add_gate("G15", GateType.OR, ["G12", "G8"])
    nl.add_gate("G16", GateType.OR, ["G3", "G8"])
    nl.add_gate("G9", GateType.NAND, ["G16", "G15"])
    nl.add_gate("G10", GateType.NOR, ["G14", "G11"])
    nl.add_gate("G11", GateType.NOR, ["G5", "G9"])
    nl.add_gate("G12", GateType.NOR, ["G1", "G7"])
    nl.add_gate("G13", GateType.NOR, ["G2", "G12"])
    nl.validate()
    return nl
