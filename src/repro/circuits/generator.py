"""Synthetic ISCAS89-profile circuit generator.

Builds a deterministic synchronous netlist matching a
:class:`~repro.circuits.profiles.CircuitProfile` **exactly** on every
Table 9 statistic — #PIs, #DFFs, #gates, #inverters and estimated area —
and on the Tables 10/11 structural property "DFFs on SCC".

Construction (see DESIGN.md §4 for why this preserves the algorithms'
behaviour):

* the circuit is a pipeline of *stages*; feed-forward DFFs sit at stage
  boundaries, which guarantees they lie on no cycle;
* ``dffs_on_scc`` DFFs are organized into feedback *rings* inside stages:
  ``q_j → (chain of 1–3 dedicated gates) → q_{j+1} → ... → q_0``.  The
  dedicated chain gates may also read ordinary same-stage gates, pulling
  surrounding logic into the SCC the way real control loops do;
* ordinary gates draw their 2 base inputs from the stage's entry signals
  (boundary DFFs, the stage's ring DFFs, its share of PIs) and from
  earlier gates of the same stage, with a recency bias that produces the
  locally-clustered nets the flow partitioner exploits;
* the area target is hit exactly by a budget of +1-unit upgrades
  (NAND/NOR → AND/OR type switches and extra input pins); extra pins
  preferentially consume signals that would otherwise dangle;
* remaining dangling signals become primary outputs.

The generator *verifies its own output*: structural validation, exact
stat matching and the SCC register count are asserted before returning.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import NetlistError
from ..graphs.build import build_circuit_graph
from ..graphs.scc import SCCIndex
from ..netlist.cells import Cell
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from .profiles import CircuitProfile, profile_by_name

__all__ = ["generate_circuit", "generate_by_name", "resolve_seed"]


def resolve_seed(profile_name: str, seed: Optional[int]) -> int:
    """The single seed every RNG draw in one generation flows from.

    ``None`` resolves to ``zlib.crc32(profile_name)`` so the default
    circuit for a profile is stable across sessions and platforms.  The
    resolved seed feeds exactly one ``random.Random`` (stdlib Mersenne
    Twister, platform-independent), which is threaded through every
    helper — no helper may construct its own RNG or touch the global
    ``random`` module, so ``(profile, seed)`` → byte-identical
    ``.bench`` output everywhere.  ``tests/circuits/test_determinism.py``
    pins committed digests to keep this true.
    """
    if seed is not None:
        return seed
    return zlib.crc32(profile_name.encode())

#: 2-unit base gate types and their 3-unit upgrade targets.
_BASE_TYPES = (GateType.NAND, GateType.NOR)
_UPGRADE_OF = {GateType.NAND: GateType.AND, GateType.NOR: GateType.OR}
_MAX_FANIN = 6


class _Builder:
    """Stateful construction helper for one generated circuit."""

    def __init__(self, profile: CircuitProfile, seed: int):
        self.profile = profile
        self.seed = seed
        # the ONLY RNG of a generation run; see resolve_seed
        self.rng = random.Random(seed)
        self.netlist = Netlist(profile.name)
        self.order: List[str] = []  # topological creation order of comb cells
        self.position: Dict[str, int] = {}
        self.read: Set[str] = set()
        self._uid = 0

    # -- naming --------------------------------------------------------
    def _name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}{self._uid}"

    # -- primitive creation -------------------------------------------
    def new_gate(self, gtype: GateType, inputs: Sequence[str]) -> str:
        name = self._name("n")
        self.netlist.add_gate(name, gtype, list(inputs))
        self.position[name] = len(self.order)
        self.order.append(name)
        self.read.update(inputs)
        return name

    def new_dff(self, data: str) -> str:
        name = self._name("q")
        self.netlist.add_dff(name, data)
        self.read.add(data)
        return name

    def pick(self, pool: Sequence[str], bias: float = 0.6) -> str:
        """Pick from ``pool`` with recency bias (later entries favoured)."""
        n = len(pool)
        if n == 1:
            return pool[0]
        if self.rng.random() < bias:
            # geometric walk back from the most recent entry
            back = min(n - 1, int(self.rng.expovariate(1 / 6.0)))
            return pool[n - 1 - back]
        return pool[self.rng.randrange(n)]


def _plan_rings(
    rng: random.Random, n_scc_dffs: int, gate_budget: int
) -> List[Tuple[int, List[int]]]:
    """Split the SCC DFFs into rings; per ring edge pick a chain length.

    Returns ``[(ring_size, [chain_len per edge])]``.  Total chain gates are
    kept within ``gate_budget``.
    """
    if gate_budget < n_scc_dffs:
        raise NetlistError(
            "gate budget too small for SCC feedback structure; "
            f"profile needs at least {n_scc_dffs} gates"
        )
    rings: List[Tuple[int, List[int]]] = []
    remaining = n_scc_dffs
    budget = gate_budget
    while remaining > 0:
        size = min(remaining, rng.randint(1, 6))
        remaining -= size
        chains = []
        edges_left_here = size
        for _ in range(size):
            edges_left_here -= 1
            max_len = 3 if budget >= 3 * size else 1
            length = rng.randint(1, max_len)
            # never starve future edges (this ring's and later rings')
            headroom = budget - (remaining + edges_left_here)
            length = max(1, min(length, headroom))
            chains.append(length)
            budget -= length
        rings.append((size, chains))
    assert budget >= 0
    return rings


def generate_circuit(
    profile: CircuitProfile,
    seed: Optional[int] = None,
    n_stages: Optional[int] = None,
) -> Netlist:
    """Generate a circuit matching ``profile`` exactly (see module docs).

    Args:
        profile: target statistics.
        seed: RNG seed, resolved by :func:`resolve_seed` (``None`` →
            stable hash of the profile name); one ``random.Random`` is
            threaded through every helper, so the same ``(profile,
            seed)`` emits byte-identical ``.bench`` text on every
            platform.
        n_stages: pipeline depth; by default scales with circuit size.

    Raises:
        NetlistError: when the profile is internally infeasible (e.g. area
            below the structural minimum, or fewer gates than SCC DFFs).
    """
    b = _Builder(profile, resolve_seed(profile.name, seed))
    rng = b.rng
    nl = b.netlist

    n_off_dffs = profile.n_dffs - profile.dffs_on_scc
    if n_off_dffs < 0:
        raise NetlistError("dffs_on_scc exceeds n_dffs")
    if n_stages is None:
        n_stages = max(2 if n_off_dffs else 1, min(10, 1 + profile.n_gates // 400))
    if n_off_dffs and n_stages < 2:
        n_stages = 2

    # -- primary inputs, assigned to home stages ------------------------
    pis = [f"pi{i}" for i in range(profile.n_inputs)]
    for pi in pis:
        nl.add_input(pi)
    pi_home: Dict[int, List[str]] = {s: [] for s in range(n_stages)}
    global_pis = pis[: min(2, len(pis))]  # control-like inputs fan wide
    for pi in pis[len(global_pis):]:
        pi_home[rng.randrange(n_stages)].append(pi)
    for s in range(n_stages):
        pi_home[s].extend(global_pis)
    if not pi_home[0]:
        pi_home[0].append(pis[0])

    # -- budget split ----------------------------------------------------
    rings = _plan_rings(rng, profile.dffs_on_scc, max(0, profile.n_gates - 1))
    n_chain_gates = sum(sum(chains) for _, chains in rings)
    n_plain_gates = profile.n_gates - n_chain_gates
    if n_plain_gates < n_stages:
        raise NetlistError(
            f"profile {profile.name}: only {profile.n_gates} gates but "
            f"{n_chain_gates} needed for feedback chains"
        )

    # distribute plain gates / inverters / rings over stages
    gates_per_stage = [n_plain_gates // n_stages] * n_stages
    for i in range(n_plain_gates % n_stages):
        gates_per_stage[i] += 1
    invs_per_stage = [profile.n_inverters // n_stages] * n_stages
    for i in range(profile.n_inverters % n_stages):
        invs_per_stage[i] += 1
    ring_stage = [rng.randrange(n_stages) for _ in rings]

    # feed-forward DFFs at boundaries (round robin over the S-1 boundaries)
    off_dff_stage = (
        [s % (n_stages - 1) for s in range(n_off_dffs)] if n_off_dffs else []
    )

    boundary_signals: List[str] = []  # DFF outputs entering current stage
    stage_gate_lists: List[List[str]] = []

    for stage in range(n_stages):
        entry: List[str] = list(pi_home[stage]) + boundary_signals
        # ring DFFs of this stage: create DFFs with placeholder data via
        # two-phase wiring (data assigned after chains exist) — instead we
        # create chains first using a temporary driver, so build rings by
        # creating DFF outputs lazily: create DFFs reading a placeholder
        # net is not possible; create ring DFFs after their chain sources.
        # Strategy: create ordinary gates first, then rings (chains read
        # ordinary gates + entry), then DFFs read chain ends; ring DFF
        # *outputs* must be readable by ordinary gates, so reserve names:
        my_rings = [r for r, s in zip(rings, ring_stage) if s == stage]
        ring_dff_names: List[List[str]] = []
        for size, _chains in my_rings:
            names = []
            for _ in range(size):
                b._uid += 1
                names.append(f"q{b._uid}")
            ring_dff_names.append(names)
        ring_outputs = [n for names in ring_dff_names for n in names]

        pool: List[str] = entry + ring_outputs
        gate_list: List[str] = []
        n_inv_left = invs_per_stage[stage]
        n_gates_here = gates_per_stage[stage]
        inv_every = (
            max(1, n_gates_here // n_inv_left) if n_inv_left else 0
        )
        for gi in range(n_gates_here):
            gtype = rng.choice(_BASE_TYPES)
            a = b.pick(pool)
            c = b.pick(pool)
            if c == a and len(pool) > 1:
                c = b.pick(pool)
            out = b.new_gate(gtype, [a, c])
            pool.append(out)
            gate_list.append(out)
            if n_inv_left and inv_every and gi % inv_every == inv_every - 1:
                src = b.pick(pool)
                inv = b.new_gate(GateType.NOT, [src])
                pool.append(inv)
                n_inv_left -= 1
        while n_inv_left:
            inv = b.new_gate(GateType.NOT, [b.pick(pool)])
            pool.append(inv)
            n_inv_left -= 1

        # rings: chains then DFFs
        for (size, chains), names in zip(my_rings, ring_dff_names):
            chain_ends: List[str] = []
            for j in range(size):
                prev_q = names[j]
                sig = prev_q
                for _ in range(chains[j]):
                    extras: List[str] = []
                    if pool and rng.random() < 0.7:
                        extras.append(b.pick(pool))
                    sig = b.new_gate(
                        rng.choice(_BASE_TYPES),
                        [sig] + (extras or [b.pick(pool)]),
                    )
                chain_ends.append(sig)
            # q_{j+1} = DFF(end of chain started at q_j)
            for j in range(size):
                target = names[(j + 1) % size]
                nl.add_dff(target, chain_ends[j])
                b.read.add(chain_ends[j])
            pool.extend(chain_ends)

        stage_gate_lists.append(gate_list)
        # boundary DFFs into the next stage
        boundary_signals = []
        if stage < n_stages - 1:
            source_pool = gate_list or pool
            for d, s in enumerate(off_dff_stage):
                if s == stage:
                    data = b.pick(source_pool)
                    boundary_signals.append(b.new_dff(data))

    # -- area upgrades ---------------------------------------------------
    base_area = nl.area_units()
    budget = profile.paper_area - base_area
    if budget < 0:
        raise NetlistError(
            f"profile {profile.name}: base area {base_area} already above "
            f"target {profile.paper_area}"
        )
    unread = [
        sig
        for sig in b.order
        if sig not in b.read and not nl.cell(sig).is_dff
    ]
    rng.shuffle(unread)
    # primary inputs nothing picked up: absorb them first (position -1
    # makes any gate a legal attachment target)
    unread_pis = [pi for pi in pis if pi not in b.read]
    for pi in unread_pis:
        b.position[pi] = -1
    unread = unread_pis + unread
    upgradeable = [
        o
        for o in b.order
        if nl.cell(o).gtype in _UPGRADE_OF or nl.cell(o).gtype in _UPGRADE_OF.values()
    ]

    # phase 1: absorb dangling signals as extra input pins (+1 area each)
    leftover_unread: List[str] = []
    for sig in unread:
        if budget <= 0:
            leftover_unread.append(sig)
            continue
        pos = b.position[sig]
        candidates_checked = 0
        attached = False
        while candidates_checked < 12 and not attached:
            candidates_checked += 1
            tgt = upgradeable[rng.randrange(len(upgradeable))]
            cell = nl.cell(tgt)
            if (
                b.position[tgt] > pos
                and cell.fanin < _MAX_FANIN
                and sig not in cell.inputs
            ):
                nl.replace_cell(cell.with_inputs(cell.inputs + (sig,)))
                b.read.add(sig)
                budget -= 1
                attached = True
        if not attached:
            leftover_unread.append(sig)

    # phase 2: spend the remaining budget on type switches / extra pins
    guard = 0
    while budget > 0:
        guard += 1
        if guard > 40 * (budget + len(upgradeable) + 1):  # pragma: no cover
            raise NetlistError("area upgrade loop failed to converge")
        tgt = upgradeable[rng.randrange(len(upgradeable))]
        cell = nl.cell(tgt)
        if cell.gtype in _UPGRADE_OF and rng.random() < 0.5:
            nl.replace_cell(Cell(cell.output, _UPGRADE_OF[cell.gtype], cell.inputs))
            budget -= 1
        elif cell.fanin < _MAX_FANIN:
            pos = b.position[tgt]
            earlier = b.order[:pos]
            src = b.pick(earlier) if earlier else b.pick(list(nl.inputs))
            if src not in cell.inputs:
                nl.replace_cell(cell.with_inputs(cell.inputs + (src,)))
                budget -= 1

    # -- primary outputs ---------------------------------------------------
    last_gates = stage_gate_lists[-1] or b.order
    po_set: Set[str] = set()
    for sig in leftover_unread:
        po_set.add(sig)  # unabsorbed dangling signals become feed-through POs
    want = max(profile.n_outputs, 1)
    attempts = 0
    while len(po_set) < want and attempts < 20 * want:
        attempts += 1
        po_set.add(b.pick(last_gates))
    # DFF outputs that nothing reads must be observable too
    fan = nl.fanout_map()
    for cell in nl.cells():
        if cell.is_dff and not fan.get(cell.output):
            po_set.add(cell.output)
    for sig in sorted(po_set):
        nl.add_output(sig)

    _verify(nl, profile)
    return nl


def _verify(nl: Netlist, profile: CircuitProfile) -> None:
    """Assert the generated circuit matches the profile exactly."""
    nl.validate()
    stats = nl.stats()
    mismatches = []
    for label, got, want in (
        ("inputs", stats.n_inputs, profile.n_inputs),
        ("dffs", stats.n_dffs, profile.n_dffs),
        ("gates", stats.n_gates, profile.n_gates),
        ("inverters", stats.n_inverters, profile.n_inverters),
        ("area", stats.area_units, profile.paper_area),
    ):
        if got != want:
            mismatches.append(f"{label}: got {got}, want {want}")
    if mismatches:
        raise NetlistError(
            f"generated {profile.name} mismatches profile: "
            + "; ".join(mismatches)
        )
    scc = SCCIndex(build_circuit_graph(nl, with_po_nodes=False))
    got_scc = scc.registers_on_sccs()
    if got_scc != profile.dffs_on_scc:
        raise NetlistError(
            f"generated {profile.name}: {got_scc} DFFs on SCC, "
            f"want {profile.dffs_on_scc}"
        )


def generate_by_name(name: str, seed: Optional[int] = None) -> Netlist:
    """Generate the synthetic stand-in for a Table 9 circuit by name."""
    return generate_circuit(profile_by_name(name), seed=seed)
