"""Merced top level: the compiler, cost accounting, reports, CLI."""

from .cost import CBITAreaComparison, compare_cbit_area, count_retimable_cuts
from .merced import CompilationArtifacts, Merced, compile_circuit
from .report import (
    format_table,
    render_seed_stability,
    render_sweep_beta,
    render_sweep_lk,
    render_table10_11,
    render_table12,
    render_table9,
)
from .result import MercedReport, PartitionRow
from .sweep import (
    BetaSweepRow,
    LkSweepRow,
    SeedStability,
    SweepErrorRow,
    seed_stability,
    sweep_beta,
    sweep_lk,
)

__all__ = [
    "CBITAreaComparison",
    "compare_cbit_area",
    "count_retimable_cuts",
    "CompilationArtifacts",
    "Merced",
    "compile_circuit",
    "format_table",
    "render_seed_stability",
    "render_sweep_beta",
    "render_sweep_lk",
    "render_table10_11",
    "render_table12",
    "render_table9",
    "MercedReport",
    "PartitionRow",
    "BetaSweepRow",
    "LkSweepRow",
    "SeedStability",
    "SweepErrorRow",
    "seed_stability",
    "sweep_beta",
    "sweep_lk",
]
