"""Result records of a Merced compilation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cbit.assemble import CBITPlan
from ..config import MercedConfig
from ..netlist.netlist import CircuitStats
from ..partition.clusters import Partition
from .cost import CBITAreaComparison

__all__ = ["PartitionRow", "MercedReport"]


@dataclass(frozen=True)
class PartitionRow:
    """One row of the paper's Tables 10/11."""

    circuit: str
    n_dffs: int
    n_dffs_on_scc: int
    n_cut_nets_on_scc: int
    n_cut_nets: int
    cpu_seconds: float

    def as_tuple(self) -> Tuple[str, int, int, int, int, float]:
        return (
            self.circuit,
            self.n_dffs,
            self.n_dffs_on_scc,
            self.n_cut_nets_on_scc,
            self.n_cut_nets,
            self.cpu_seconds,
        )


@dataclass
class MercedReport:
    """Everything STEP 4 of Table 2 returns: partition ``P`` and cost."""

    circuit_stats: CircuitStats
    config: MercedConfig
    partition: Partition
    plan: CBITPlan
    area: CBITAreaComparison
    row: PartitionRow
    n_merges: int
    n_splits: int
    saturation_sources: int
    cost_dff: float  # Σ = Σ p_k n_k (Eq. 4)
    #: refinement summary (``OptimizeResult.stats()``) when the run was
    #: compiled with ``config.optimize``; ``None`` otherwise, keeping
    #: the payload shape of non-optimized runs unchanged.
    optimize: Optional[Dict[str, object]] = None

    @property
    def n_partitions(self) -> int:
        return self.partition.m

    def render(self) -> str:
        s = self.circuit_stats
        a = self.area
        lines = [
            f"Merced report for {s.name} (l_k={self.config.lk}, "
            f"β={self.config.beta})",
            f"  circuit: {s.n_inputs} PI, {s.n_dffs} DFF, {s.n_gates} gates, "
            f"{s.n_inverters} INV, area {s.area_units} units",
            f"  partition: {self.n_partitions} CBIT partitions, "
            f"max ι={self.partition.max_input_count()}, "
            f"{self.n_merges} merges, {self.n_splits} splits",
            f"  cut nets: {a.n_cut_nets} ({a.n_cut_nets_on_scc} on SCCs, "
            f"{a.n_retimable} retimable)",
            f"  CBIT catalogue cost Σ: {self.cost_dff:.2f} DFF equivalents",
        ]
        if self.optimize is not None:
            o = self.optimize
            lines.append(
                f"  optimize ({o['method']}): "
                f"Σ {o['sigma_before']} → {o['sigma_after']}, "
                f"cuts {o['cuts_before']} → {o['cuts_after']}, "
                f"uncovered {o['uncovered_before']} → "
                f"{o['uncovered_after']} "
                f"({o['n_accepted']}/{o['n_proposed']} moves kept)"
            )
        lines += [
            f"  A_CBIT/A_Total: {a.pct_with_retiming:.1f}% with retiming, "
            f"{a.pct_without_retiming:.1f}% without "
            f"({a.saving_points:.1f} points saved, "
            f"{a.relative_area_reduction:.1f}% relative)",
            f"  CPU: {self.row.cpu_seconds:.2f}s "
            f"({self.saturation_sources} flow sources)",
        ]
        return "\n".join(lines)
