"""Plain-text table rendering in the shape of the paper's tables."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..netlist.netlist import CircuitStats
from .cost import CBITAreaComparison
from .result import PartitionRow

__all__ = [
    "format_table",
    "render_table9",
    "render_table10_11",
    "render_table12",
    "render_sweep_lk",
    "render_sweep_beta",
    "render_seed_stability",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], min_width: int = 6
) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [[_fmt(v) for v in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells, pad=" "):
        return " | ".join(c.rjust(w, pad) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths], pad="-")]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.1f}" if abs(v) >= 0.05 or v == 0 else f"{v:.3f}"
    return str(v)


def render_table9(stats: Iterable[CircuitStats]) -> str:
    """Circuit statistics table (paper Table 9)."""
    headers = ["Circuit", "PIs", "DFFs", "Gates", "INVs", "Area"]
    rows = [
        (s.name, s.n_inputs, s.n_dffs, s.n_gates, s.n_inverters, s.area_units)
        for s in stats
    ]
    return format_table(headers, rows)


def render_table10_11(rows: Iterable[PartitionRow], lk: int) -> str:
    """Partition results table (paper Tables 10/11)."""
    headers = [
        "Circuit",
        "DFFs",
        "DFFs on SCC",
        "cuts on SCC",
        "nets cut",
        "CPU (s)",
    ]
    body = [r.as_tuple() for r in rows]
    return f"Partition results for l_k = {lk}\n" + format_table(headers, body)


def render_sweep_lk(pairs: Iterable[Tuple[str, object]]) -> str:
    """The ``l_k`` frontier across circuits (``merced sweep`` output).

    ``pairs`` are ``(circuit, row)`` where ``row`` is an
    :class:`~repro.core.sweep.LkSweepRow` or a degraded
    :class:`~repro.core.sweep.SweepErrorRow`; error rows render with
    dashes and their error type in the status column.
    """
    headers = [
        "Circuit",
        "l_k",
        "parts",
        "nets cut",
        "cuts on SCC",
        "cost DFF",
        "w/ ret (%)",
        "w/o ret (%)",
        "status",
    ]
    body = []
    for circuit, r in pairs:
        if r.ok:
            body.append(
                (
                    circuit,
                    r.lk,
                    r.n_partitions,
                    r.n_cut_nets,
                    r.n_cut_nets_on_scc,
                    r.cost_dff,
                    r.pct_with_retiming,
                    r.pct_without_retiming,
                    "ok",
                )
            )
        else:
            body.append(
                (circuit, r.lk, "-", "-", "-", "-", "-", "-", r.error_type)
            )
    return format_table(headers, body)


def render_sweep_beta(pairs: Iterable[Tuple[str, object]]) -> str:
    """The β budget trade-off across circuits (``merced sweep --beta``)."""
    headers = [
        "Circuit",
        "beta",
        "nets cut",
        "cuts on SCC",
        "max iota",
        "oversized",
        "status",
    ]
    body = []
    for circuit, r in pairs:
        if r.ok:
            body.append(
                (
                    circuit,
                    r.beta,
                    r.n_cut_nets,
                    r.n_cut_nets_on_scc,
                    r.max_input_count,
                    r.n_oversized,
                    "ok",
                )
            )
        else:
            body.append((circuit, r.beta, "-", "-", "-", "-", r.error_type))
    return format_table(headers, body)


def render_seed_stability(pairs: Iterable[Tuple[str, object]]) -> str:
    """Seed-spread summary across circuits (``merced sweep --seeds``)."""
    headers = [
        "Circuit",
        "seeds",
        "cut mean",
        "cut stdev",
        "spread",
        "failed",
    ]
    body = []
    for circuit, st in pairs:
        if st.cut_counts:
            body.append(
                (
                    circuit,
                    len(st.seeds),
                    st.cut_mean,
                    st.cut_stdev,
                    round(st.cut_spread, 3),
                    len(st.failures),
                )
            )
        else:
            body.append((circuit, 0, "-", "-", "-", len(st.failures)))
    return format_table(headers, body)


def render_table12(
    comparisons: Iterable[Tuple[CBITAreaComparison, CBITAreaComparison]]
) -> str:
    """CBIT-area comparison table (paper Table 12): (lk16, lk24) pairs."""
    headers = [
        "Circuit",
        "lk16 w/ ret (%)",
        "lk16 w/o ret (%)",
        "lk24 w/ ret (%)",
        "lk24 w/o ret (%)",
    ]
    rows = []
    for c16, c24 in comparisons:
        rows.append(
            (
                c16.circuit,
                c16.pct_with_retiming,
                c16.pct_without_retiming,
                c24.pct_with_retiming,
                c24.pct_without_retiming,
            )
        )
    return format_table(headers, rows)
