"""Plain-text table rendering in the shape of the paper's tables."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..netlist.netlist import CircuitStats
from .cost import CBITAreaComparison
from .result import PartitionRow

__all__ = [
    "format_table",
    "render_table9",
    "render_table10_11",
    "render_table12",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], min_width: int = 6
) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [[_fmt(v) for v in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells, pad=" "):
        return " | ".join(c.rjust(w, pad) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths], pad="-")]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.1f}" if abs(v) >= 0.05 or v == 0 else f"{v:.3f}"
    return str(v)


def render_table9(stats: Iterable[CircuitStats]) -> str:
    """Circuit statistics table (paper Table 9)."""
    headers = ["Circuit", "PIs", "DFFs", "Gates", "INVs", "Area"]
    rows = [
        (s.name, s.n_inputs, s.n_dffs, s.n_gates, s.n_inverters, s.area_units)
        for s in stats
    ]
    return format_table(headers, rows)


def render_table10_11(rows: Iterable[PartitionRow], lk: int) -> str:
    """Partition results table (paper Tables 10/11)."""
    headers = [
        "Circuit",
        "DFFs",
        "DFFs on SCC",
        "cuts on SCC",
        "nets cut",
        "CPU (s)",
    ]
    body = [r.as_tuple() for r in rows]
    return f"Partition results for l_k = {lk}\n" + format_table(headers, body)


def render_table12(
    comparisons: Iterable[Tuple[CBITAreaComparison, CBITAreaComparison]]
) -> str:
    """CBIT-area comparison table (paper Table 12): (lk16, lk24) pairs."""
    headers = [
        "Circuit",
        "lk16 w/ ret (%)",
        "lk16 w/o ret (%)",
        "lk24 w/ ret (%)",
        "lk24 w/o ret (%)",
    ]
    rows = []
    for c16, c24 in comparisons:
        rows.append(
            (
                c16.circuit,
                c16.pct_with_retiming,
                c16.pct_without_retiming,
                c24.pct_with_retiming,
                c24.pct_without_retiming,
            )
        )
    return format_table(headers, rows)
