"""``merced`` command-line entry point.

Examples::

    merced s27 --lk 3
    merced s5378 --lk 16 --max-sources 1500
    merced --bench mydesign.bench --lk 24 --selftest
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..circuits.library import available_circuits, load_circuit
from ..config import MercedConfig
from ..errors import ReproError
from ..netlist.bench import parse_bench_file

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``merced`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="merced",
        description=(
            "Merced BIST compiler: partition a synchronous circuit for "
            "pipelined pseudo-exhaustive testing with retiming "
            "(Liou/Lin/Cheng, DAC 1996)."
        ),
    )
    parser.add_argument(
        "circuit",
        nargs="?",
        help=f"benchmark name ({', '.join(available_circuits()[:4])}, ...)",
    )
    parser.add_argument("--bench", help="load an ISCAS89 .bench file instead")
    parser.add_argument("--lk", type=int, default=16, help="CUT input bound l_k")
    parser.add_argument("--beta", type=int, default=50, help="SCC cut budget factor (Eq. 6)")
    parser.add_argument("--seed", type=int, default=1996, help="flow RNG seed")
    parser.add_argument(
        "--max-sources",
        type=int,
        default=None,
        help="cap Saturate_Network Dijkstra sources (speed/fidelity knob)",
    )
    parser.add_argument(
        "--solver",
        action="store_true",
        help="use the exact retiming solver for retimability accounting",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="also simulate the PPET self-test session (small circuits)",
    )
    parser.add_argument(
        "--bist-out",
        metavar="FILE",
        help="emit the test-ready netlist (A_CELLs + scan) to FILE (.bench)",
    )
    parser.add_argument(
        "--verilog-out",
        metavar="FILE",
        help="emit the circuit (or, with --bist-out, the BIST netlist) as "
        "structural Verilog",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available benchmark circuits and exit",
    )
    parser.add_argument(
        "--retime",
        action="store_true",
        help="solve and apply the cut retiming; report the register moves",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        metavar="FILE",
        help="collect per-stage timers and hot-path counters "
        "(Dijkstra runs, relaxations, nets cut, merge attempts) and emit "
        "the JSON trace to FILE, or to stdout when no FILE is given",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``merced`` console script; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        from ..circuits.profiles import TABLE9_PROFILES

        print("s27 (exact ISCAS89)")
        for name, p in TABLE9_PROFILES.items():
            print(
                f"{name} (synthetic: {p.n_inputs} PI, {p.n_dffs} DFF, "
                f"{p.n_gates + p.n_inverters} gates, area {p.paper_area})"
            )
        return 0
    if not args.circuit and not args.bench:
        print("error: give a benchmark name or --bench FILE", file=sys.stderr)
        return 2
    try:
        if args.bench:
            netlist = parse_bench_file(args.bench)
        else:
            netlist = load_circuit(args.circuit)
        config = MercedConfig(
            lk=args.lk,
            beta=args.beta,
            seed=args.seed,
            max_sources=args.max_sources,
        )
        from .merced import Merced

        trace = None
        if args.profile:
            from ..perf import PerfTrace, activate

            trace = activate(PerfTrace(label=netlist.name))
        try:
            report = Merced(config).run(
                netlist,
                retimable_method="solver" if args.solver else "scc-budget",
            )
        finally:
            if trace is not None:
                from ..perf import deactivate

                deactivate()
        print(report.render())
        if args.selftest:
            from ..perf import activate as perf_activate
            from ..perf import deactivate as perf_deactivate
            from ..ppet.session import PPETSession

            if trace is not None:
                perf_activate(trace)
            try:
                session = PPETSession(netlist, report.partition, report.plan)
                print()
                print(session.run().render())
            finally:
                if trace is not None:
                    perf_deactivate()
        if args.retime:
            from ..graphs.build import build_circuit_graph
            from ..retiming.apply import apply_retiming
            from ..retiming.solve import solve_cut_retiming

            graph = build_circuit_graph(netlist, with_po_nodes=True)
            solution = solve_cut_retiming(
                graph, report.partition.cut_nets()
            )
            retimed = apply_retiming(netlist, solution.retiming.rho)
            print()
            print(
                f"retiming: {len(solution.covered_cuts)} cut(s) covered by "
                f"functional DFFs, {len(solution.dropped_cuts)} need MUXed "
                f"A_CELLs; registers {retimed.n_registers_before} -> "
                f"{retimed.n_registers_after}"
            )
        emitted = netlist
        if args.bist_out:
            from ..cbit.insert import insert_test_hardware
            from ..netlist.bench import write_bench_file

            bist = insert_test_hardware(
                netlist, report.partition, include_scan=True
            )
            write_bench_file(bist.netlist, args.bist_out)
            emitted = bist.netlist
            print()
            print(
                f"BIST netlist written to {args.bist_out}: "
                f"{len(bist.cut_cells)} A_CELLs, "
                f"{bist.added_area_units} units of test hardware"
            )
        if args.verilog_out:
            from ..netlist.verilog import write_verilog_file

            write_verilog_file(emitted, args.verilog_out)
            print(f"Verilog written to {args.verilog_out}")
        if trace is not None:
            if args.profile == "-":
                print()
                print(trace.to_json())
            else:
                trace.write(args.profile)
                print()
                print(f"perf trace written to {args.profile}")
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
