"""``merced`` command-line entry point.

Examples::

    merced s27 --lk 3
    merced s5378 --lk 16 --max-sources 1500
    merced --bench mydesign.bench --lk 24 --selftest
    merced sweep s27 s510 --lk 16 24 --jobs 4 --cache ~/.merced-cache
    merced sweep s510 --beta 1 5 50 --jobs 2
    merced sweep s27 --seeds 1 2 3 4 5 --stats-json stats.json
    merced lint s5378 --lk 16 --json
    merced lint examples/s27.bench --suppress NET004 --min-severity warning
    merced lint-code src/ --json
    merced serve --port 8356 --cache ~/.merced-cache --workers 4
    merced submit s27 s510 --lk 16 24 --url http://127.0.0.1:8356
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence, Tuple

from ..circuits.library import available_circuits, load_circuit
from ..config import MercedConfig
from ..errors import ReproError
from ..netlist.bench import parse_bench_file

__all__ = [
    "main",
    "build_parser",
    "build_sweep_parser",
    "sweep_main",
    "build_lint_parser",
    "lint_main",
]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``merced`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="merced",
        description=(
            "Merced BIST compiler: partition a synchronous circuit for "
            "pipelined pseudo-exhaustive testing with retiming "
            "(Liou/Lin/Cheng, DAC 1996)."
        ),
        epilog=(
            "Subcommands: 'merced sweep --help' runs parameter grids "
            "through the parallel execution farm with result caching; "
            "'merced lint --help' runs the static circuit/DFT linter; "
            "'merced lint-code --help' runs the concurrency + kernel "
            "static analyzer over Python sources; "
            "'merced serve --help' starts the long-running HTTP compile "
            "service; 'merced submit --help' posts work to it; "
            "'merced corpus --help' generates deterministic synthetic "
            "circuits and manages the committed corpus."
        ),
    )
    parser.add_argument(
        "circuit",
        nargs="?",
        help=f"benchmark name ({', '.join(available_circuits()[:4])}, ...)",
    )
    parser.add_argument("--bench", help="load an ISCAS89 .bench file instead")
    parser.add_argument("--lk", type=int, default=16, help="CUT input bound l_k")
    parser.add_argument("--beta", type=int, default=50, help="SCC cut budget factor (Eq. 6)")
    parser.add_argument("--seed", type=int, default=1996, help="flow RNG seed")
    parser.add_argument(
        "--max-sources",
        type=int,
        default=None,
        help="cap Saturate_Network Dijkstra sources (speed/fidelity knob)",
    )
    parser.add_argument(
        "--solver",
        action="store_true",
        help="use the exact retiming solver for retimability accounting",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="also simulate the PPET self-test session (small circuits)",
    )
    parser.add_argument(
        "--bist-out",
        metavar="FILE",
        help="emit the test-ready netlist (A_CELLs + scan) to FILE (.bench)",
    )
    parser.add_argument(
        "--verilog-out",
        metavar="FILE",
        help="emit the circuit (or, with --bist-out, the BIST netlist) as "
        "structural Verilog",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available benchmark circuits and exit",
    )
    parser.add_argument(
        "--retime",
        action="store_true",
        help="solve and apply the cut retiming; report the register moves",
    )
    parser.add_argument(
        "--retiming-solver",
        choices=["auto", "jacobi", "spfa", "reference", "mcf"],
        default="auto",
        help="cut-retiming backend: auto/jacobi/spfa/reference are "
        "bit-identical (vectorized, queue-based, or dense reference "
        "rounds); mcf is the experimental min-cost-flow formulation",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        metavar="FILE",
        help="collect per-stage timers and hot-path counters "
        "(Dijkstra runs, relaxations, nets cut, merge attempts) and emit "
        "the JSON trace to FILE, or to stdout when no FILE is given",
    )
    _add_optimize_args(parser)
    return parser


def _add_optimize_args(parser: argparse.ArgumentParser) -> None:
    """The refinement-tier flags, shared by main/sweep/submit parsers."""
    parser.add_argument(
        "--optimize",
        choices=["fast", "anneal"],
        default=None,
        help="refine the Assign_CBIT partition by legality-checked "
        "local search: 'fast' (deterministic greedy cut-absorption "
        "sweeps) or 'anneal' (seeded simulated annealing over "
        "membership swaps and cut relocations); the result never "
        "exceeds the greedy Σ",
    )
    parser.add_argument(
        "--optimize-budget",
        type=float,
        default=5.0,
        metavar="SEC",
        help="advisory wall-clock budget for --optimize; converted to a "
        "deterministic move schedule, so results are byte-identical on "
        "any host (default: 5.0)",
    )


def build_sweep_parser() -> argparse.ArgumentParser:
    """Construct the ``merced sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="merced sweep",
        description=(
            "Run a (circuit × l_k × β × seed) sweep grid through the "
            "parallel execution farm, with optional on-disk result "
            "caching keyed by (netlist, config, code version)."
        ),
    )
    parser.add_argument("circuits", nargs="*", help="benchmark names")
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="FILE",
        help="also sweep an ISCAS89 .bench file (repeatable)",
    )
    parser.add_argument(
        "--lk",
        type=int,
        nargs="+",
        default=None,
        metavar="L",
        help="l_k grid (default: 16 24 when no --beta/--seeds given)",
    )
    parser.add_argument(
        "--beta",
        type=int,
        nargs="+",
        default=None,
        metavar="B",
        help="β grid (partition-only study, strict=False)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="S",
        help="flow-seed grid (seed-stability study)",
    )
    parser.add_argument("--seed", type=int, default=1996, help="base RNG seed")
    parser.add_argument(
        "--min-visit", type=int, default=None, help="fairness threshold override"
    )
    parser.add_argument(
        "--max-sources", type=int, default=None, help="Dijkstra source cap"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = inline; results are identical either way)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="on-disk result cache directory (created if missing)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-point wall-clock budget; overruns degrade to error rows",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts per failing point before degrading its row",
    )
    parser.add_argument(
        "--stats-json",
        metavar="FILE",
        help="write run statistics (cache hits/misses, timings) as JSON",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        metavar="FILE",
        help="aggregate per-stage perf traces across workers to FILE/stdout",
    )
    _add_optimize_args(parser)
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    """Construct the ``merced lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="merced lint",
        description=(
            "Static circuit/DFT linter: netlist hygiene, combinational "
            "loops, dangling cones, retiming-legality preconditions "
            "(Corollary 2) and Eq. 5/6 budget-feasibility prechecks, "
            "run before any pipeline stage."
        ),
        epilog=(
            "Exit status: 0 clean (or warnings only), 1 when any "
            "error-severity diagnostic survives filtering."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="+",
        metavar="CIRCUIT|FILE.bench",
        help="benchmark names and/or ISCAS89 .bench files",
    )
    parser.add_argument(
        "--lk", type=int, default=16, help="CUT input bound l_k"
    )
    parser.add_argument(
        "--beta", type=int, default=50, help="SCC cut budget factor (Eq. 6)"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report(s) as JSON"
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="RULE[,RULE...]",
        help="drop findings of these rule ids (repeatable)",
    )
    parser.add_argument(
        "--min-severity",
        choices=["info", "warning", "error"],
        default="info",
        help="hide findings below this severity (default: info)",
    )
    return parser


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``merced lint``; returns the exit code."""
    from ..analysis.lint import lint_bench_file, lint_circuit

    args = build_lint_parser().parse_args(argv)
    config = MercedConfig(lk=args.lk, beta=args.beta)
    suppress = [
        r for chunk in args.suppress for r in chunk.split(",") if r
    ]
    reports = []
    for target in args.targets:
        try:
            if target.endswith(".bench"):
                report = lint_bench_file(
                    target,
                    config,
                    suppress=suppress,
                    min_severity=args.min_severity,
                )
            else:
                report = lint_circuit(
                    load_circuit(target),
                    config,
                    suppress=suppress,
                    min_severity=args.min_severity,
                )
        except (OSError, ReproError, KeyError) as exc:
            print(f"error: {target}: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
    if args.json:
        payload = [r.to_dict() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload, indent=2))
    else:
        for i, report in enumerate(reports):
            if i:
                print()
            print(report.render_text())
    return 1 if any(r.has_errors for r in reports) else 0


def sweep_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``merced sweep``; returns the exit code."""
    args = build_sweep_parser().parse_args(argv)
    if not args.circuits and not args.bench:
        print("error: give benchmark names and/or --bench FILE", file=sys.stderr)
        return 2
    try:
        return _run_sweep(args)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_sweep(args) -> int:
    from ..exec.cache import ResultCache
    from ..exec.pool import SweepFarm
    from ..exec.task import SweepPoint
    from ..netlist.bench import write_bench
    from .report import render_seed_stability, render_sweep_beta, render_sweep_lk
    from .sweep import (
        beta_row_from_result,
        lk_row_from_result,
        stability_from_results,
    )

    netlists = [load_circuit(name) for name in args.circuits]
    netlists += [parse_bench_file(path) for path in args.bench]
    base_kwargs = dict(seed=args.seed, max_sources=args.max_sources)
    if args.min_visit is not None:
        base_kwargs["min_visit"] = args.min_visit
    if args.optimize is not None:
        # the optimize axis widens point_key automatically (it folds the
        # full canonical config), so cached non-optimized points survive
        base_kwargs["optimize"] = args.optimize
        base_kwargs["optimize_budget"] = args.optimize_budget
    base = MercedConfig(**base_kwargs)

    lks = args.lk
    if lks is None and args.beta is None and args.seeds is None:
        lks = [16, 24]

    # one flat point list across circuits and studies → one farm.map()
    # call, so the whole grid shares the worker pool.
    points: List[SweepPoint] = []
    labels: List[Tuple[str, str, int]] = []  # (mode, circuit, coordinate)
    for netlist in netlists:
        bench = write_bench(netlist)
        for lk in lks or []:
            points.append(
                SweepPoint("merced", netlist.name, bench, base.with_lk(lk))
            )
            labels.append(("lk", netlist.name, lk))
        for beta in args.beta or []:
            points.append(
                SweepPoint("beta", netlist.name, bench, base.with_beta(beta))
            )
            labels.append(("beta", netlist.name, beta))
        for seed in args.seeds or []:
            points.append(
                SweepPoint("merced", netlist.name, bench, base.with_seed(seed))
            )
            labels.append(("seed", netlist.name, seed))

    cache = ResultCache(args.cache) if args.cache else None
    farm = SweepFarm(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        cache=cache,
    )

    trace = None
    if args.profile:
        from ..perf import PerfTrace, activate

        trace = activate(PerfTrace(label="sweep"))
    t0 = time.perf_counter()
    try:
        results = farm.map(points)
    finally:
        if trace is not None:
            from ..perf import deactivate

            deactivate()
    elapsed = time.perf_counter() - t0

    lk_pairs = []
    beta_pairs = []
    seed_results: dict = {}
    for (mode, circuit, coord), result in zip(labels, results):
        if mode == "lk":
            lk_pairs.append((circuit, lk_row_from_result(coord, result)))
        elif mode == "beta":
            beta_pairs.append((circuit, beta_row_from_result(coord, result)))
        else:
            seed_results.setdefault(circuit, []).append((coord, result))

    if lk_pairs:
        print(render_sweep_lk(lk_pairs))
    if beta_pairs:
        if lk_pairs:
            print()
        print(render_sweep_beta(beta_pairs))
    if seed_results:
        if lk_pairs or beta_pairs:
            print()
        stability_pairs = [
            (
                circuit,
                stability_from_results(
                    [s for s, _ in items], [r for _, r in items]
                ),
            )
            for circuit, items in seed_results.items()
        ]
        print(render_seed_stability(stability_pairs))

    n_failed = sum(1 for r in results if not r.ok)
    n_hits = sum(1 for r in results if r.cache_hit)
    print()
    print(
        f"sweep: {len(results)} point(s) in {elapsed:.2f}s "
        f"(jobs={args.jobs}, {n_hits} cached, {n_failed} failed)"
    )
    if cache is not None:
        s = cache.stats
        print(
            f"cache: {s.hits} hit(s), {s.misses} miss(es), "
            f"{s.stores} store(s), hit rate {s.hit_rate:.0%} ({args.cache})"
        )
    if args.stats_json:
        failures = [
            {
                "circuit": circuit,
                "mode": mode,
                "coordinate": coord,
                "error": result.error,
                "error_type": result.error_type,
                "stage": result.stage,
                "attempts": result.attempts,
                "diagnostics": list(result.diagnostics or ()),
            }
            for (mode, circuit, coord), result in zip(labels, results)
            if not result.ok
        ]
        stats = {
            "n_points": len(results),
            "n_failed": n_failed,
            "n_cache_hits": n_hits,
            "elapsed_seconds": elapsed,
            "jobs": args.jobs,
            "cache": cache.stats.as_dict() if cache is not None else None,
            "failures": failures,
        }
        with open(args.stats_json, "w") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"stats written to {args.stats_json}")
    if trace is not None:
        if args.profile == "-":
            print()
            print(trace.to_json())
        else:
            trace.write(args.profile)
            print(f"perf trace written to {args.profile}")
    return 1 if results and n_failed == len(results) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``merced`` console script; returns the exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "lint-code":
        from ..analysis.concurrency.engine import lint_code_main

        return lint_code_main(argv[1:])
    if argv and argv[0] == "serve":
        from ..service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        from ..service.cli import submit_main

        return submit_main(argv[1:])
    if argv and argv[0] == "corpus":
        from ..corpus.cli import corpus_main

        return corpus_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list:
        from ..circuits.profiles import TABLE9_PROFILES

        print("s27 (exact ISCAS89)")
        for name, p in TABLE9_PROFILES.items():
            print(
                f"{name} (synthetic: {p.n_inputs} PI, {p.n_dffs} DFF, "
                f"{p.n_gates + p.n_inverters} gates, area {p.paper_area})"
            )
        return 0
    if not args.circuit and not args.bench:
        print("error: give a benchmark name or --bench FILE", file=sys.stderr)
        return 2
    try:
        if args.bench:
            netlist = parse_bench_file(args.bench)
        else:
            netlist = load_circuit(args.circuit)
        config = MercedConfig(
            lk=args.lk,
            beta=args.beta,
            seed=args.seed,
            max_sources=args.max_sources,
            optimize=args.optimize,
            optimize_budget=args.optimize_budget,
        )
        from .merced import Merced

        trace = None
        if args.profile:
            from ..perf import PerfTrace, activate

            trace = activate(PerfTrace(label=netlist.name))
        try:
            report = Merced(config).run(
                netlist,
                retimable_method="solver" if args.solver else "scc-budget",
                optimize_solver=args.retiming_solver,
            )
        finally:
            if trace is not None:
                from ..perf import deactivate

                deactivate()
        print(report.render())
        if args.selftest:
            from ..perf import activate as perf_activate
            from ..perf import deactivate as perf_deactivate
            from ..ppet.session import PPETSession

            if trace is not None:
                perf_activate(trace)
            try:
                session = PPETSession(netlist, report.partition, report.plan)
                print()
                print(session.run().render())
            finally:
                if trace is not None:
                    perf_deactivate()
        if args.retime:
            from ..graphs.build import build_circuit_graph
            from ..perf import activate as perf_activate
            from ..perf import deactivate as perf_deactivate
            from ..perf import stage as perf_stage
            from ..retiming.apply import apply_retiming
            from ..retiming.solve import solve_cut_retiming

            if trace is not None:
                perf_activate(trace)
            try:
                graph = build_circuit_graph(netlist, with_po_nodes=True)
                with perf_stage("retime"):
                    solution = solve_cut_retiming(
                        graph,
                        report.partition.cut_nets(),
                        solver=args.retiming_solver,
                    )
            finally:
                if trace is not None:
                    perf_deactivate()
            retimed = apply_retiming(netlist, solution.retiming.rho)
            print()
            print(
                f"retiming: {len(solution.covered_cuts)} cut(s) covered by "
                f"functional DFFs, {len(solution.dropped_cuts)} need MUXed "
                f"A_CELLs, {len(solution.unconstrained_cuts)} "
                f"unconstrained; registers {retimed.n_registers_before} -> "
                f"{retimed.n_registers_after}"
            )
        emitted = netlist
        if args.bist_out:
            from ..cbit.insert import insert_test_hardware
            from ..netlist.bench import write_bench_file

            bist = insert_test_hardware(
                netlist, report.partition, include_scan=True
            )
            write_bench_file(bist.netlist, args.bist_out)
            emitted = bist.netlist
            print()
            print(
                f"BIST netlist written to {args.bist_out}: "
                f"{len(bist.cut_cells)} A_CELLs, "
                f"{bist.added_area_units} units of test hardware"
            )
        if args.verilog_out:
            from ..netlist.verilog import write_verilog_file

            write_verilog_file(emitted, args.verilog_out)
            print(f"Verilog written to {args.verilog_out}")
        if trace is not None:
            if args.profile == "-":
                print()
                print(trace.to_json())
            else:
                trace.write(args.profile)
                print()
                print(f"perf trace written to {args.profile}")
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
