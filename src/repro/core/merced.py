"""Merced — the BIST compiler (Table 2 of the paper).

STEP 1  build ``G(V, E)`` from the netlist;
STEP 2  identify the strongly connected components;
STEP 3  ``Assign_CBIT(G, Δ, α, l_k)`` honouring Eq. 6 — which internally
        saturates the network (Table 3) and clusters it (Tables 4–7);
STEP 4  return the partition ``P`` and its cost.

On top of the paper's steps, the report carries the Table 10/11 row
(cut-net statistics + CPU time) and the Table 12 area comparison.
With ``config.optimize`` set, the STEP 3 result is additionally refined
by the local-search tier (:mod:`repro.optimize`) before costing, and the
report's ``optimize`` field records the before/after deltas.
"""

from __future__ import annotations

import time
from typing import Optional, Set

from ..analysis.lint import lint_circuit, lint_gate
from ..cbit.assemble import assemble_cbits
from ..errors import AnalysisError, NetlistError
from ..circuits.library import load_circuit
from ..config import MercedConfig
from ..graphs.build import build_circuit_graph
from ..graphs.scc import SCCIndex
from ..netlist.netlist import Netlist
from ..partition.assign_cbit import assign_cbit
from ..partition.make_group import make_group
from ..perf import count as perf_count
from ..perf import current_trace
from ..perf import stage as perf_stage
from .cost import compare_cbit_area
from .result import MercedReport, PartitionRow

__all__ = ["Merced", "CompilationArtifacts", "compile_circuit"]


class Merced:
    """Compile a synchronous netlist into a PPET-testable partition.

    Example:
        >>> from repro import Merced, MercedConfig, load_circuit
        >>> report = Merced(MercedConfig(lk=3, seed=7)).run(load_circuit("s27"))
        >>> report.n_partitions
        4
    """

    def __init__(self, config: Optional[MercedConfig] = None):
        self.config = config or MercedConfig()

    def run(
        self,
        netlist: Netlist,
        locked: Optional[Set[str]] = None,
        retimable_method: str = "scc-budget",
        graph=None,
        scc_index: Optional[SCCIndex] = None,
        optimize_solver: str = "auto",
    ) -> MercedReport:
        """Run STEPs 1–4 on ``netlist`` and return the full report.

        Args:
            netlist: a validated synchronous circuit.
            locked: cell names Merced must not regroup (Table 5 option).
            retimable_method: ``"scc-budget"`` (paper accounting) or
                ``"solver"`` (exact retiming feasibility).
            graph: a prebuilt circuit graph of ``netlist`` (built with
                ``with_po_nodes=False``) to reuse across runs — e.g.
                consecutive sweep points on the same circuit.  The run
                resets its flow state, so sharing is safe; the compiled
                CSR arrays and SCC structure carry over unchanged.
            scc_index: the matching prebuilt :class:`SCCIndex`.
            optimize_solver: retiming backend for the refinement tier's
                inner re-solves when ``config.optimize`` is set
                (``"mcf"`` drop sets are verified as legal minimal
                covers).  Deliberately *not* a config field: it cannot
                change the legality of the result, so it stays out of
                the sweep cache identity.

        Raises:
            AnalysisError: the entry lint gate found structural errors
                (undriven nets, combinational loops, ...); the rendered
                report is the message and the raw findings ride on
                ``exc.lint_diagnostics``.
            InfeasiblePartitionError: the gate's Eq. 5/6 prechecks prove
                the ``(l_k, β)`` point infeasible, or ``make_group``
                discovers it dynamically.
        """
        try:
            netlist.validate()
        except NetlistError as exc:
            # Re-diagnose through the linter so the abort carries a
            # structured report (undriven signals, combinational loops,
            # empty interface) instead of the first hard check's message.
            report = lint_circuit(netlist, self.config, locked=locked)
            if report.has_errors:
                gate_exc = AnalysisError(
                    "circuit lint failed:\n" + report.render_text()
                )
                gate_exc.lint_diagnostics = [
                    d.as_dict() for d in report.diagnostics
                ]
                raise gate_exc from exc
            raise
        trace = current_trace()
        if trace is not None:
            trace.set_meta(
                circuit=netlist.name,
                lk=self.config.lk,
                beta=self.config.beta,
                seed=self.config.seed,
            )
        t0 = time.perf_counter()
        if graph is None:
            with perf_stage("build_graph"):
                graph = build_circuit_graph(  # STEP 1
                    netlist, with_po_nodes=False
                )
        if scc_index is None:
            with perf_stage("scc"):
                scc_index = SCCIndex(graph)  # STEP 2
        with perf_stage("lint"):
            # Hard gate: structural errors raise AnalysisError,
            # (l_k, β)-infeasibility raises InfeasiblePartitionError
            # before any pipeline stage burns time on a doomed point.
            # Reuses graph/scc_index (and the CompiledGraph cached on
            # the graph), so no second graph build happens here.
            lint_gate(
                netlist,
                self.config,
                graph=graph,
                scc_index=scc_index,
                locked=locked,
            )
        with perf_stage("make_group"):
            group = make_group(  # STEP 3 (Tables 3-7)
                graph, scc_index, self.config, locked=locked
            )
        perf_count("splits", group.n_splits)
        if self.config.merge_clusters:
            with perf_stage("assign_cbit"):
                assigned = assign_cbit(group.partition)  # STEP 3 (Table 8)
            partition = assigned.partition
            cost_dff = assigned.cost_dff
            n_merges = assigned.n_merges
        else:
            from ..cbit.types import cbit_cost_for_inputs

            partition = group.partition
            cost_dff = sum(
                cbit_cost_for_inputs(c.input_count)[0]
                for c in partition.clusters
            )
            n_merges = 0
        perf_count("merges", n_merges)

        optimize_stats = None
        if self.config.optimize is not None:
            from ..optimize import optimize_partition

            with perf_stage("optimize"):
                refined = optimize_partition(
                    graph,
                    scc_index,
                    partition,
                    self.config,
                    name=netlist.name,
                    locked=locked,
                    solver=optimize_solver,
                )
            partition = refined.partition
            cost_dff = refined.sigma_after
            optimize_stats = refined.stats()
            perf_count("optimize_moves", refined.n_accepted)
        cpu = time.perf_counter() - t0

        cut_nets = partition.cut_nets()
        perf_count("nets_cut", len(cut_nets))
        stats = netlist.stats()
        with perf_stage("area_accounting"):
            area = compare_cbit_area(
                circuit=stats.name,
                lk=self.config.lk,
                circuit_area_units=stats.area_units,
                cut_nets=cut_nets,
                scc_index=scc_index,
                method=retimable_method,
                graph=graph if retimable_method == "solver" else None,
            )
        row = PartitionRow(
            circuit=stats.name,
            n_dffs=stats.n_dffs,
            n_dffs_on_scc=scc_index.registers_on_sccs(),
            n_cut_nets_on_scc=area.n_cut_nets_on_scc,
            n_cut_nets=area.n_cut_nets,
            cpu_seconds=cpu,
        )
        with perf_stage("assemble_cbits"):
            plan = assemble_cbits(partition)
        return MercedReport(
            circuit_stats=stats,
            config=self.config,
            partition=partition,
            plan=plan,
            area=area,
            row=row,
            n_merges=n_merges,
            n_splits=group.n_splits,
            saturation_sources=group.saturation.n_sources,
            cost_dff=cost_dff,
            optimize=optimize_stats,
        )

    def run_named(self, name: str, **kwargs) -> MercedReport:
        """Convenience: :func:`repro.circuits.load_circuit` then :meth:`run`."""
        return self.run(load_circuit(name), **kwargs)


class CompilationArtifacts:
    """Everything :meth:`Merced.compile` produces in one call.

    Attributes:
        report: the partition/cost report (STEP 4 of Table 2).
        retiming: the cut-retiming solution (which cuts existing DFFs can
            cover), or ``None`` when ``retime=False``.
        retimed: the retimed netlist wrapper, or ``None``.
        bist: the emitted test-ready netlist, or ``None`` when
            ``emit_bist=False``.
    """

    def __init__(self, report, retiming=None, retimed=None, bist=None):
        self.report = report
        self.retiming = retiming
        self.retimed = retimed
        self.bist = bist

    def summary(self) -> str:
        lines = [self.report.render()]
        if self.retiming is not None:
            lines.append(
                f"retiming: {len(self.retiming.covered_cuts)} covered, "
                f"{len(self.retiming.dropped_cuts)} muxed, "
                f"{len(self.retiming.unconstrained_cuts)} unconstrained"
            )
        if self.bist is not None:
            lines.append(
                f"BIST netlist: {self.bist.netlist.name} "
                f"(+{self.bist.added_area_units} units)"
            )
        return "\n".join(lines)


def compile_circuit(
    netlist,
    config: Optional[MercedConfig] = None,
    retime: bool = True,
    emit_bist: bool = True,
    pin_io: bool = False,
    bist_kwargs: Optional[dict] = None,
    retiming_solver: str = "auto",
) -> CompilationArtifacts:
    """One-call BIST compilation: partition, retime, emit hardware.

    Args:
        netlist: the circuit to compile.
        config: Merced parameters.
        retime: solve the cut retiming and apply it (the paper's area
            optimization); the *original* netlist is what the BIST
            inserter modifies — retiming results are reported alongside
            so a flow can choose which netlist to take forward.
        emit_bist: insert the test hardware (dual-mode, scan).
        pin_io: strict I/O-latency-preserving retiming (host condition).
        bist_kwargs: forwarded to
            :func:`repro.cbit.insert.insert_test_hardware`.
        retiming_solver: feasibility backend for the cut-retiming solve
            (see :func:`repro.retiming.solve.solve_cut_retiming`):
            ``"auto"``/``"jacobi"``/``"spfa"``/``"reference"`` are
            bit-identical; ``"mcf"`` is the experimental min-cost-flow
            backend.

    Example:
        >>> from repro import load_circuit, MercedConfig
        >>> from repro.core.merced import compile_circuit
        >>> arts = compile_circuit(
        ...     load_circuit("s27"), MercedConfig(lk=3, seed=7)
        ... )
        >>> arts.report.n_partitions >= 3 and arts.bist is not None
        True
    """
    merced = Merced(config)
    report = merced.run(netlist)
    retiming = retimed = bist = None
    if retime:
        from ..retiming.apply import apply_retiming
        from ..retiming.solve import solve_cut_retiming

        graph = build_circuit_graph(netlist, with_po_nodes=True)
        retiming = solve_cut_retiming(
            graph,
            report.partition.cut_nets(),
            pin_io=pin_io,
            solver=retiming_solver,
        )
        retimed = apply_retiming(netlist, retiming.retiming.rho)
    if emit_bist:
        from ..cbit.insert import insert_test_hardware

        kwargs = dict(
            include_scan=True,
            include_primary_inputs=True,
            include_primary_outputs=True,
            dual_mode_controls=True,
        )
        kwargs.update(bist_kwargs or {})
        bist = insert_test_hardware(netlist, report.partition, **kwargs)
    return CompilationArtifacts(
        report=report, retiming=retiming, retimed=retimed, bist=bist
    )
