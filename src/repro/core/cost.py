"""CBIT-area accounting with and without retiming (Table 12 / Figure 8).

The paper's rule (§4.2):

* **with retiming** — a cut net that legal retiming can cover with an
  existing functional DFF costs only the three A_CELL gates
  (``0.9 × DFF``); within each SCC ``λ`` at most ``f(λ)`` cuts can be
  covered (Corollary 2), the excess pays the full A_CELL + MUX
  (``2.3 × DFF``).  Cut nets outside every SCC lie on acyclic paths where
  Eq. 1 lets registers reach them freely, so they take the 0.9 rate.
* **without retiming** — the functional DFFs stay put, so *every* cut net
  pays ``2.3 × DFF``.

``A_Total = A_circuit + A_CBIT`` and the reported metric is
``A_CBIT / A_Total`` in percent.

Two retimability estimators are available: the paper's per-SCC budget
count (default, fast) and the exact difference-constraint solver of
:mod:`repro.retiming.solve`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..errors import ReproError
from ..graphs.digraph import CircuitGraph
from ..graphs.scc import SCCIndex
from ..netlist.area import ACELL_MUXED_AREA_UNITS, ACELL_RETIMED_EXTRA_UNITS

__all__ = ["CBITAreaComparison", "count_retimable_cuts", "compare_cbit_area"]


def count_retimable_cuts(
    scc_index: SCCIndex,
    cut_nets: Sequence[str],
    method: str = "scc-budget",
    graph: Optional[CircuitGraph] = None,
) -> int:
    """Number of cut nets coverable by existing DFFs via legal retiming.

    Args:
        method: ``"scc-budget"`` — the paper's accounting: per SCC ``λ``,
            ``min(f(λ), cuts inside λ)`` plus every off-SCC cut.
            ``"solver"`` — exact feasibility via Bellman–Ford relaxation
            (requires ``graph``).
    """
    if method == "solver":
        if graph is None:
            raise ReproError("solver method needs the circuit graph")
        from ..retiming.solve import solve_cut_retiming

        solution = solve_cut_retiming(graph, cut_nets)
        # unconstrained cuts (no via-head edge) cost nothing to cover, so
        # they count as retimable for area purposes even though the
        # solution reports them separately from covered_cuts
        return len(solution.covered_cuts) + len(solution.unconstrained_cuts)
    if method != "scc-budget":
        raise ReproError(f"unknown retimability method {method!r}")
    per_scc: Dict[int, int] = {}
    off_scc = 0
    for net in cut_nets:
        info = scc_index.scc_of_net(net)
        if info is None:
            off_scc += 1
        else:
            per_scc[info.scc_id] = per_scc.get(info.scc_id, 0) + 1
    covered = off_scc
    by_id = {s.scc_id: s for s in scc_index.sccs()}
    for scc_id, chi in per_scc.items():
        covered += min(chi, by_id[scc_id].register_count)
    return covered


@dataclass(frozen=True)
class CBITAreaComparison:
    """One Table 12 row (both ``l_k`` columns are separate instances)."""

    circuit: str
    lk: int
    circuit_area_units: int
    n_cut_nets: int
    n_cut_nets_on_scc: int
    n_retimable: int

    @property
    def n_excess(self) -> int:
        """Cut nets that keep the MUXed A_CELL despite retiming."""
        return self.n_cut_nets - self.n_retimable

    @property
    def cbit_area_with_retiming_units(self) -> int:
        return (
            self.n_retimable * ACELL_RETIMED_EXTRA_UNITS
            + self.n_excess * ACELL_MUXED_AREA_UNITS
        )

    @property
    def cbit_area_without_retiming_units(self) -> int:
        return self.n_cut_nets * ACELL_MUXED_AREA_UNITS

    def _pct(self, cbit_units: int) -> float:
        total = self.circuit_area_units + cbit_units
        return 100.0 * cbit_units / total if total else 0.0

    @property
    def pct_with_retiming(self) -> float:
        """``A_CBIT/A_Total`` (%) with retiming — Table 12 column."""
        return self._pct(self.cbit_area_with_retiming_units)

    @property
    def pct_without_retiming(self) -> float:
        return self._pct(self.cbit_area_without_retiming_units)

    @property
    def saving_points(self) -> float:
        """Percentage-point reduction (the Figure 8 gap)."""
        return self.pct_without_retiming - self.pct_with_retiming

    @property
    def relative_area_reduction(self) -> float:
        """Relative CBIT-area reduction (the paper's headline ~20 %+)."""
        without = self.cbit_area_without_retiming_units
        if without == 0:
            return 0.0
        return 100.0 * (without - self.cbit_area_with_retiming_units) / without


def compare_cbit_area(
    circuit: str,
    lk: int,
    circuit_area_units: int,
    cut_nets: Sequence[str],
    scc_index: SCCIndex,
    method: str = "scc-budget",
    graph: Optional[CircuitGraph] = None,
) -> CBITAreaComparison:
    """Build the with/without-retiming comparison for one partition run."""
    on_scc = [n for n in cut_nets if scc_index.net_on_scc(n)]
    retimable = count_retimable_cuts(
        scc_index, cut_nets, method=method, graph=graph
    )
    return CBITAreaComparison(
        circuit=circuit,
        lk=lk,
        circuit_area_units=circuit_area_units,
        n_cut_nets=len(cut_nets),
        n_cut_nets_on_scc=len(on_scc),
        n_retimable=retimable,
    )
