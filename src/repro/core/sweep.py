"""Parameter sweeps over the Merced compiler.

Programmatic versions of the studies the paper discusses narratively:
the ``l_k`` testing-time/area frontier (§2.4, Figure 4), the β cut-budget
trade-off (§4.1), and seed stability of the randomized flow process
(§3.3's variance discussion).  Each sweep returns plain row dataclasses
that the report renderer can tabulate.

Every sweep executes through a :class:`repro.exec.SweepFarm`: pass one
(e.g. ``SweepFarm(jobs=4, cache=ResultCache("~/.merced-cache"))``) to
shard the grid across worker processes and reuse cached points, or pass
nothing to get the default inline farm — same code path, bit-identical
results, no processes spawned.  Points that fail (infeasible ``l_k``,
worker death, timeout) come back as degraded :class:`SweepErrorRow`
entries instead of sinking the whole sweep.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import MercedConfig
from ..exec.pool import SweepFarm
from ..exec.task import SweepPoint, TaskResult
from ..netlist.bench import write_bench
from ..netlist.netlist import Netlist

__all__ = [
    "SweepErrorRow",
    "LkSweepRow",
    "sweep_lk",
    "lk_row_from_result",
    "BetaSweepRow",
    "sweep_beta",
    "beta_row_from_result",
    "SeedStability",
    "seed_stability",
    "stability_from_results",
]


@dataclass(frozen=True)
class SweepErrorRow:
    """Degraded stand-in for a sweep point that failed permanently.

    Attributes:
        circuit: benchmark the point belonged to.
        kind: the task kind that failed (``"merced"``, ``"beta"``, ...).
        params: the identifying sweep coordinates (``{"lk": 16}``,
            ``{"beta": 5}``, ``{"seed": 3}``).
        error: stringified final exception.
        error_type: exception class name (``"InfeasiblePartitionError"``,
            ``"SweepTimeoutError"``, ``"BrokenWorker"``, ...).
        attempts: executions consumed before giving up.
        stage: pipeline stage the failure unwound from (``"lint"``,
            ``"make_group"``, ...), or ``None`` when unattributable
            (e.g. a worker crash).
        diagnostics: lint findings attached to the failure
            (:meth:`repro.analysis.Diagnostic.as_dict` payloads) —
            what the circuit looked like to the static analyzer when
            the point died.  Empty when no lint pass could run.
    """

    circuit: str
    kind: str
    params: Tuple[Tuple[str, object], ...]
    error: str
    error_type: str
    attempts: int
    stage: Optional[str] = None
    diagnostics: Tuple[Dict[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        """Always ``False`` — lets callers filter mixed row lists."""
        return False

    def param_dict(self) -> Dict[str, object]:
        """The sweep coordinates as a plain dict."""
        return dict(self.params)

    @property
    def lk(self) -> Optional[int]:
        """The point's ``l_k`` coordinate, when it has one."""
        return self.param_dict().get("lk")  # type: ignore[return-value]

    @property
    def beta(self) -> Optional[int]:
        """The point's β coordinate, when it has one."""
        return self.param_dict().get("beta")  # type: ignore[return-value]

    @property
    def seed(self) -> Optional[int]:
        """The point's seed coordinate, when it has one."""
        return self.param_dict().get("seed")  # type: ignore[return-value]


def _error_row(result: TaskResult, **params) -> SweepErrorRow:
    return SweepErrorRow(
        circuit=result.point.circuit,
        kind=result.point.kind,
        params=tuple(sorted(params.items())),
        error=result.error or "",
        error_type=result.error_type or "Error",
        attempts=result.attempts,
        stage=result.stage,
        diagnostics=tuple(result.diagnostics or ()),
    )


@dataclass(frozen=True)
class LkSweepRow:
    """One point on the l_k frontier."""

    lk: int
    n_partitions: int
    n_cut_nets: int
    n_cut_nets_on_scc: int
    cost_dff: float
    pct_with_retiming: float
    pct_without_retiming: float

    @property
    def ok(self) -> bool:
        """Always ``True`` — the degraded counterpart is ``SweepErrorRow``."""
        return True

    @property
    def testing_time(self) -> int:
        return 1 << self.lk


def sweep_lk(
    netlist: Netlist,
    lks: Sequence[int],
    config: Optional[MercedConfig] = None,
    farm: Optional[SweepFarm] = None,
) -> List[Union[LkSweepRow, SweepErrorRow]]:
    """Run Merced at each ``l_k`` and collect the frontier.

    With a parallel ``farm`` the points run concurrently; results are
    returned in ``lks`` order regardless of completion order, and a
    failing point yields a :class:`SweepErrorRow` in its slot.
    """
    base = config or MercedConfig()
    bench = write_bench(netlist)
    points = [
        SweepPoint("merced", netlist.name, bench=bench, config=base.with_lk(lk))
        for lk in lks
    ]
    results = (farm or SweepFarm()).map(points)
    return [lk_row_from_result(lk, r) for lk, r in zip(lks, results)]


def lk_row_from_result(
    lk: int, result: TaskResult
) -> Union[LkSweepRow, SweepErrorRow]:
    """Convert one ``merced``-kind :class:`TaskResult` into a frontier row."""
    if not result.ok:
        return _error_row(result, lk=lk)
    v = result.value
    return LkSweepRow(
        lk=lk,
        n_partitions=v["n_partitions"],
        n_cut_nets=v["n_cut_nets"],
        n_cut_nets_on_scc=v["n_cut_nets_on_scc"],
        cost_dff=v["cost_dff"],
        pct_with_retiming=v["pct_with_retiming"],
        pct_without_retiming=v["pct_without_retiming"],
    )


@dataclass(frozen=True)
class BetaSweepRow:
    """One point on the Eq. 6 budget trade-off."""

    beta: int
    n_cut_nets: int
    n_cut_nets_on_scc: int
    max_input_count: int
    n_oversized: int  # clusters exceeding l_k (welded SCCs)

    @property
    def ok(self) -> bool:
        """Always ``True`` — the degraded counterpart is ``SweepErrorRow``."""
        return True

    @property
    def feasible(self) -> bool:
        return self.n_oversized == 0


def sweep_beta(
    netlist: Netlist,
    betas: Sequence[int],
    config: Optional[MercedConfig] = None,
    farm: Optional[SweepFarm] = None,
) -> List[Union[BetaSweepRow, SweepErrorRow]]:
    """Partition at each β without raising on welded (oversized) SCCs."""
    base = config or MercedConfig()
    bench = write_bench(netlist)
    points = [
        SweepPoint("beta", netlist.name, bench=bench, config=base.with_beta(beta))
        for beta in betas
    ]
    results = (farm or SweepFarm()).map(points)
    return [beta_row_from_result(b, r) for b, r in zip(betas, results)]


def beta_row_from_result(
    beta: int, result: TaskResult
) -> Union[BetaSweepRow, SweepErrorRow]:
    """Convert one ``beta``-kind :class:`TaskResult` into a budget row."""
    if not result.ok:
        return _error_row(result, beta=beta)
    v = result.value
    return BetaSweepRow(
        beta=beta,
        n_cut_nets=v["n_cut_nets"],
        n_cut_nets_on_scc=v["n_cut_nets_on_scc"],
        max_input_count=v["max_input_count"],
        n_oversized=v["n_oversized"],
    )


@dataclass(frozen=True)
class SeedStability:
    """Spread of the randomized flow partitioner across seeds (§3.3).

    ``failures`` carries degraded rows for seeds whose run failed;
    the summary statistics cover the successful seeds only.
    """

    seeds: tuple
    cut_counts: tuple
    cost_dffs: tuple
    failures: Tuple[SweepErrorRow, ...] = field(default=())

    @property
    def cut_mean(self) -> float:
        return statistics.fmean(self.cut_counts)

    @property
    def cut_stdev(self) -> float:
        return statistics.pstdev(self.cut_counts)

    @property
    def cut_spread(self) -> float:
        """Relative spread (stdev/mean) — small means the stochastic
        saturation converges to similar congestion pictures."""
        mean = self.cut_mean
        return self.cut_stdev / mean if mean else 0.0


def seed_stability(
    netlist: Netlist,
    seeds: Sequence[int],
    config: Optional[MercedConfig] = None,
    farm: Optional[SweepFarm] = None,
) -> SeedStability:
    """Re-run Merced with different RNG seeds and summarize the spread."""
    base = config or MercedConfig()
    bench = write_bench(netlist)
    points = [
        SweepPoint("merced", netlist.name, bench=bench, config=base.with_seed(s))
        for s in seeds
    ]
    results = (farm or SweepFarm()).map(points)
    return stability_from_results(seeds, results)


def stability_from_results(
    seeds: Sequence[int], results: Sequence[TaskResult]
) -> SeedStability:
    """Summarize per-seed ``merced`` results into a :class:`SeedStability`."""
    ok_seeds: List[int] = []
    cuts: List[int] = []
    costs: List[float] = []
    failures: List[SweepErrorRow] = []
    for seed, result in zip(seeds, results):
        if not result.ok:
            failures.append(_error_row(result, seed=seed))
            continue
        ok_seeds.append(seed)
        cuts.append(result.value["n_cut_nets"])
        costs.append(result.value["cost_dff"])
    return SeedStability(
        seeds=tuple(ok_seeds),
        cut_counts=tuple(cuts),
        cost_dffs=tuple(costs),
        failures=tuple(failures),
    )
