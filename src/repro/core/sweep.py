"""Parameter sweeps over the Merced compiler.

Programmatic versions of the studies the paper discusses narratively:
the ``l_k`` testing-time/area frontier (§2.4, Figure 4), the β cut-budget
trade-off (§4.1), and seed stability of the randomized flow process
(§3.3's variance discussion).  Each sweep returns plain row dataclasses
that the report renderer can tabulate.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import MercedConfig
from ..errors import InfeasiblePartitionError
from ..graphs.build import build_circuit_graph
from ..graphs.scc import SCCIndex
from ..netlist.netlist import Netlist
from ..partition.assign_cbit import assign_cbit
from ..partition.make_group import make_group
from .merced import Merced

__all__ = [
    "LkSweepRow",
    "sweep_lk",
    "BetaSweepRow",
    "sweep_beta",
    "SeedStability",
    "seed_stability",
]


@dataclass(frozen=True)
class LkSweepRow:
    """One point on the l_k frontier."""

    lk: int
    n_partitions: int
    n_cut_nets: int
    n_cut_nets_on_scc: int
    cost_dff: float
    pct_with_retiming: float
    pct_without_retiming: float

    @property
    def testing_time(self) -> int:
        return 1 << self.lk


def sweep_lk(
    netlist: Netlist,
    lks: Sequence[int],
    config: Optional[MercedConfig] = None,
) -> List[LkSweepRow]:
    """Run Merced at each ``l_k`` and collect the frontier."""
    base = config or MercedConfig()
    rows: List[LkSweepRow] = []
    for lk in lks:
        report = Merced(base.with_lk(lk)).run(netlist.copy())
        rows.append(
            LkSweepRow(
                lk=lk,
                n_partitions=report.n_partitions,
                n_cut_nets=report.area.n_cut_nets,
                n_cut_nets_on_scc=report.area.n_cut_nets_on_scc,
                cost_dff=report.cost_dff,
                pct_with_retiming=report.area.pct_with_retiming,
                pct_without_retiming=report.area.pct_without_retiming,
            )
        )
    return rows


@dataclass(frozen=True)
class BetaSweepRow:
    """One point on the Eq. 6 budget trade-off."""

    beta: int
    n_cut_nets: int
    n_cut_nets_on_scc: int
    max_input_count: int
    n_oversized: int  # clusters exceeding l_k (welded SCCs)

    @property
    def feasible(self) -> bool:
        return self.n_oversized == 0


def sweep_beta(
    netlist: Netlist,
    betas: Sequence[int],
    config: Optional[MercedConfig] = None,
) -> List[BetaSweepRow]:
    """Partition at each β without raising on welded (oversized) SCCs."""
    base = config or MercedConfig()
    rows: List[BetaSweepRow] = []
    for beta in betas:
        graph = build_circuit_graph(netlist, with_po_nodes=False)
        scc = SCCIndex(graph)
        group = make_group(graph, scc, base.with_beta(beta), strict=False)
        merged = assign_cbit(group.partition)
        p = merged.partition
        oversized = [c for c in p.clusters if c.input_count > base.lk]
        rows.append(
            BetaSweepRow(
                beta=beta,
                n_cut_nets=len(p.cut_nets()),
                n_cut_nets_on_scc=len(p.cut_nets_on_scc()),
                max_input_count=p.max_input_count(),
                n_oversized=len(oversized),
            )
        )
    return rows


@dataclass(frozen=True)
class SeedStability:
    """Spread of the randomized flow partitioner across seeds (§3.3)."""

    seeds: tuple
    cut_counts: tuple
    cost_dffs: tuple

    @property
    def cut_mean(self) -> float:
        return statistics.fmean(self.cut_counts)

    @property
    def cut_stdev(self) -> float:
        return statistics.pstdev(self.cut_counts)

    @property
    def cut_spread(self) -> float:
        """Relative spread (stdev/mean) — small means the stochastic
        saturation converges to similar congestion pictures."""
        mean = self.cut_mean
        return self.cut_stdev / mean if mean else 0.0


def seed_stability(
    netlist: Netlist,
    seeds: Sequence[int],
    config: Optional[MercedConfig] = None,
) -> SeedStability:
    """Re-run Merced with different RNG seeds and summarize the spread."""
    base = config or MercedConfig()
    cuts: List[int] = []
    costs: List[float] = []
    for seed in seeds:
        report = Merced(base.with_seed(seed)).run(netlist.copy())
        cuts.append(report.area.n_cut_nets)
        costs.append(report.cost_dff)
    return SeedStability(
        seeds=tuple(seeds),
        cut_counts=tuple(cuts),
        cost_dffs=tuple(costs),
    )
