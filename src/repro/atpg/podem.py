"""PODEM — path-oriented decision making, a combinational ATPG engine.

A deterministic test-pattern generator for single stuck-at faults
(Goel 1981).  The engine maintains a *good* and a *faulty* three-valued
(0/1/X) simulation of the circuit; primary-input decisions are chosen by
backtracing the current objective to an unassigned input, and failure
exhausts both phases of the decision before backtracking — so a completed
search with no test is a **proof of redundancy**.

Used by the library to (a) prove that the faults our pseudo-exhaustive
self-test leaves undetected are genuinely redundant, and (b) supply the
external-ATPG side of the partial-scan baseline.

Scope: combinational circuits; DFF outputs are treated as pseudo-primary
inputs (the standard full/partial-scan view).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..faults.model import StuckAtFault
from ..netlist.cells import Cell
from ..netlist.gates import GateType
from ..netlist.netlist import Netlist
from ..sim.levelize import levelize

__all__ = ["TestResult", "Status", "PodemEngine", "generate_test", "atpg_all", "ATPGSummary"]

X = 2  # the unknown value in three-valued logic

#: (controlling value, inversion) per gate type; None = no controlling value.
_GATE_CTRL: Dict[GateType, Tuple[Optional[int], int]] = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 0),
    GateType.NOR: (1, 1),
    GateType.XOR: (None, 0),
    GateType.XNOR: (None, 1),
    GateType.BUF: (None, 0),
    GateType.NOT: (None, 1),
    GateType.MUX2: (None, 0),
}


def _eval3(gtype: GateType, ins: Sequence[int]) -> int:
    """Three-valued gate evaluation."""
    if gtype is GateType.MUX2:
        d0, d1, sel = ins
        if sel == 0:
            return d0
        if sel == 1:
            return d1
        return d0 if d0 == d1 != X else X
    ctrl, inv = _GATE_CTRL[gtype]
    if ctrl is not None:
        if ctrl in ins:
            return ctrl ^ inv
        if X in ins:
            return X
        return (1 - ctrl) ^ inv
    # XOR family / NOT / BUF
    if X in ins:
        return X
    acc = 0
    for v in ins:
        acc ^= v
    return acc ^ inv


class Status(enum.Enum):
    """Verdict of one PODEM search."""

    DETECTED = "detected"
    REDUNDANT = "redundant"  # full search exhausted: untestable
    ABORTED = "aborted"  # backtrack limit hit


@dataclass
class TestResult:
    """Outcome of one PODEM run."""

    fault: StuckAtFault
    status: Status
    vector: Optional[Dict[str, int]] = None  # PI assignment (X inputs omitted)
    backtracks: int = 0

    @property
    def found(self) -> bool:
        return self.status is Status.DETECTED


class PodemEngine:
    """Reusable PODEM engine bound to one combinational netlist.

    Args:
        observe: observation points.  Defaults to the primary outputs
            plus every DFF's data-input signal — the full-scan view in
            which register inputs are captured and shifted out.
    """

    def __init__(self, netlist: Netlist, observe: Optional[Sequence[str]] = None):
        self.netlist = netlist
        self.order = levelize(netlist).order
        self.pis: Tuple[str, ...] = tuple(netlist.inputs) + tuple(
            c.output for c in netlist.dff_cells()
        )
        if any(c.is_dff for c in self.order):  # pragma: no cover
            raise SimulationError("levelized order contains registers")
        if observe is None:
            pseudo = [c.inputs[0] for c in netlist.dff_cells()]
            seen = set()
            observe = [
                o
                for o in tuple(netlist.outputs) + tuple(pseudo)
                if not (o in seen or seen.add(o))
            ]
        self.outputs = tuple(observe)
        self._readers: Dict[str, List[Cell]] = {}
        for cell in self.order:
            for sig in cell.inputs:
                self._readers.setdefault(sig, []).append(cell)

    # ------------------------------------------------------------------
    def _simulate(
        self, assignment: Dict[str, int], fault: StuckAtFault
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Forward three-valued good/faulty simulation."""
        good: Dict[str, int] = {}
        bad: Dict[str, int] = {}
        for pi in self.pis:
            v = assignment.get(pi, X)
            good[pi] = v
            bad[pi] = v
        if fault.signal in bad and fault.signal in self.pis:
            bad[fault.signal] = fault.value
        for cell in self.order:
            g = _eval3(cell.gtype, [good[s] for s in cell.inputs])
            b = _eval3(cell.gtype, [bad[s] for s in cell.inputs])
            good[cell.output] = g
            bad[cell.output] = (
                fault.value if cell.output == fault.signal else b
            )
        return good, bad

    def _objective(
        self,
        fault: StuckAtFault,
        good: Dict[str, int],
        bad: Dict[str, int],
    ) -> Optional[Tuple[str, int]]:
        """Next (signal, value) goal, or None when no progress is possible."""
        gv = good[fault.signal]
        if gv == X:
            # activate the fault: drive the site to the opposite value
            return fault.signal, 1 - fault.value
        if gv == fault.value:
            return None  # site pinned to the stuck value: dead branch
        # fault active: advance the D frontier
        for cell in self.order:
            out_g, out_b = good[cell.output], bad[cell.output]
            if not (out_g == X or out_b == X):
                continue
            has_d = any(
                good[s] != bad[s] and X not in (good[s], bad[s])
                for s in cell.inputs
            )
            if not has_d:
                continue
            ctrl, _ = _GATE_CTRL[cell.gtype]
            for s in cell.inputs:
                if good[s] == X:
                    want = 1 - ctrl if ctrl is not None else 0
                    return s, want
        return None

    def _backtrace(
        self, signal: str, value: int, good: Dict[str, int]
    ) -> Optional[Tuple[str, int]]:
        """Walk the objective back to an unassigned pseudo-primary input."""
        guard = len(self.order) + len(self.pis) + 1
        while guard:
            guard -= 1
            if signal in self.pis:
                return (signal, value) if good[signal] == X else None
            cell = self.netlist.cell(signal)
            ctrl, inv = _GATE_CTRL[cell.gtype]
            value ^= inv
            x_inputs = [s for s in cell.inputs if good[s] == X]
            if not x_inputs:
                return None
            if ctrl is not None and value == ctrl:
                signal = x_inputs[0]  # one controlling input suffices
                value = ctrl
            elif ctrl is not None:
                signal = x_inputs[0]  # all inputs non-controlling
                value = 1 - ctrl
            else:
                signal = x_inputs[0]
                # XOR family: target parity of the remaining X inputs
                known = [good[s] for s in cell.inputs if good[s] != X]
                acc = 0
                for v in known:
                    acc ^= v
                value = value ^ acc if len(x_inputs) == 1 else value
        return None  # pragma: no cover - guarded loop

    def _detected(self, good: Dict[str, int], bad: Dict[str, int]) -> bool:
        return any(
            good[o] != bad[o] and X not in (good[o], bad[o])
            for o in self.outputs
        )

    def _possible(self, good: Dict[str, int], bad: Dict[str, int], fault) -> bool:
        """X-path heuristic: a difference can still reach an output."""
        if self._detected(good, bad):
            return True
        if good[fault.signal] == fault.value:
            return False
        # any output still X in either machine keeps hope alive
        return any(good[o] == X or bad[o] == X for o in self.outputs)

    # ------------------------------------------------------------------
    def run(
        self, fault: StuckAtFault, max_backtracks: int = 2000
    ) -> TestResult:
        """Generate a test for ``fault`` (see module docs for semantics)."""
        if not self.netlist.has_signal(fault.signal):
            raise SimulationError(f"unknown fault site {fault.signal!r}")
        assignment: Dict[str, int] = {}
        # decision stack: (pi, first_value, tried_both)
        stack: List[Tuple[str, int, bool]] = []
        backtracks = 0
        while True:
            good, bad = self._simulate(assignment, fault)
            if self._detected(good, bad):
                return TestResult(
                    fault=fault,
                    status=Status.DETECTED,
                    vector=dict(assignment),
                    backtracks=backtracks,
                )
            objective = (
                self._objective(fault, good, bad)
                if self._possible(good, bad, fault)
                else None
            )
            decision = (
                self._backtrace(*objective, good) if objective else None
            )
            if decision is not None:
                pi, value = decision
                assignment[pi] = value
                stack.append((pi, value, False))
                continue
            # dead end: flip the most recent untried decision
            flipped = False
            while stack:
                pi, value, tried = stack.pop()
                del assignment[pi]
                if not tried:
                    backtracks += 1
                    if backtracks > max_backtracks:
                        return TestResult(
                            fault=fault,
                            status=Status.ABORTED,
                            backtracks=backtracks,
                        )
                    assignment[pi] = 1 - value
                    stack.append((pi, 1 - value, True))
                    flipped = True
                    break
            if not flipped:
                return TestResult(
                    fault=fault,
                    status=Status.REDUNDANT,
                    backtracks=backtracks,
                )


def generate_test(
    netlist: Netlist,
    fault: StuckAtFault,
    max_backtracks: int = 2000,
    observe: Optional[Sequence[str]] = None,
) -> TestResult:
    """One-shot PODEM invocation (builds a fresh engine)."""
    return PodemEngine(netlist, observe=observe).run(
        fault, max_backtracks=max_backtracks
    )


@dataclass
class ATPGSummary:
    """Aggregate ATPG outcome over a fault list."""

    results: List[TestResult] = field(default_factory=list)

    @property
    def detected(self) -> List[TestResult]:
        return [r for r in self.results if r.status is Status.DETECTED]

    @property
    def redundant(self) -> List[TestResult]:
        return [r for r in self.results if r.status is Status.REDUNDANT]

    @property
    def aborted(self) -> List[TestResult]:
        return [r for r in self.results if r.status is Status.ABORTED]

    @property
    def testable_coverage(self) -> float:
        """Detected over non-redundant faults (the ATPG efficiency metric)."""
        testable = len(self.results) - len(self.redundant)
        return len(self.detected) / testable if testable else 1.0


def atpg_all(
    netlist: Netlist,
    faults: Iterable[StuckAtFault],
    max_backtracks: int = 2000,
    observe: Optional[Sequence[str]] = None,
) -> ATPGSummary:
    """Run PODEM over a fault list with a shared engine."""
    engine = PodemEngine(netlist, observe=observe)
    summary = ATPGSummary()
    for fault in faults:
        summary.results.append(engine.run(fault, max_backtracks))
    return summary
