"""Deterministic combinational ATPG (PODEM)."""

from .podem import (
    ATPGSummary,
    PodemEngine,
    Status,
    TestResult,
    atpg_all,
    generate_test,
)

__all__ = [
    "ATPGSummary",
    "PodemEngine",
    "Status",
    "TestResult",
    "atpg_all",
    "generate_test",
]
