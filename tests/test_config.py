"""MercedConfig validation and the error hierarchy."""

import pytest

from repro import MercedConfig, ReproError
from repro.errors import (
    BenchParseError,
    CBITError,
    ConfigError,
    GraphError,
    IllegalRetimingError,
    InfeasiblePartitionError,
    NetlistError,
    PartitionError,
    RetimingError,
    SimulationError,
)


class TestConfig:
    def test_paper_defaults(self):
        cfg = MercedConfig()
        assert cfg.lk == 16
        assert cfg.delta == 0.01
        assert cfg.alpha == 4.0
        assert cfg.cap == 1.0
        assert cfg.min_visit == 20
        assert cfg.beta == 50

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lk": 0},
            {"delta": 0},
            {"alpha": -1},
            {"cap": 0},
            {"min_visit": 0},
            {"beta": 0},
            {"max_sources": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MercedConfig(**kwargs)

    def test_with_helpers(self):
        cfg = MercedConfig()
        assert cfg.with_lk(24).lk == 24
        assert cfg.with_seed(None).seed is None
        assert cfg.with_beta(2).beta == 2
        assert cfg.lk == 16  # original unchanged (frozen)

    def test_frozen(self):
        with pytest.raises(Exception):
            MercedConfig().lk = 24


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            NetlistError,
            BenchParseError,
            GraphError,
            PartitionError,
            InfeasiblePartitionError,
            RetimingError,
            IllegalRetimingError,
            CBITError,
            SimulationError,
            ConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specializations(self):
        assert issubclass(InfeasiblePartitionError, PartitionError)
        assert issubclass(IllegalRetimingError, RetimingError)
        assert issubclass(BenchParseError, NetlistError)

    def test_bench_error_carries_position(self):
        err = BenchParseError("bad token", line_no=7, line="x = FOO(y)")
        assert err.line_no == 7
        assert "line 7" in str(err)
