"""Every public item of every module must carry a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_public_items():
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        module = importlib.import_module(info.name)
        public = getattr(module, "__all__", [])
        for name in public:
            obj = getattr(module, name, None)
            if obj is None or not callable(obj):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            yield module.__name__, name, obj


ITEMS = sorted(
    {(mod, name): obj for mod, name, obj in iter_public_items()}.items()
)


@pytest.mark.parametrize(
    "key,obj", ITEMS, ids=[f"{m}.{n}" for (m, n), _ in ITEMS]
)
def test_public_item_documented(key, obj):
    doc = inspect.getdoc(obj)
    assert doc and len(doc.strip()) >= 10, f"{key} lacks a docstring"


def test_every_module_documented():
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        module = importlib.import_module(info.name)
        assert module.__doc__ and module.__doc__.strip(), info.name


def test_item_inventory_is_substantial():
    """The public API should stay broad (guards accidental de-exports)."""
    assert len(ITEMS) > 120
