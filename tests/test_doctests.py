"""Execute the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.cbit.lfsr
import repro.core.merced
import repro.cbit.misr
import repro.cbit.polynomials
import repro.flow.rng
import repro.netlist.bench
import repro.netlist.gates
import repro.netlist.netlist
import repro.netlist.verilog
import repro.ppet.patterns
import repro.sim.logicsim
import repro.sim.seqsim

MODULES = [
    repro.cbit.lfsr,
    repro.core.merced,
    repro.cbit.misr,
    repro.cbit.polynomials,
    repro.flow.rng,
    repro.netlist.bench,
    repro.netlist.gates,
    repro.netlist.netlist,
    repro.netlist.verilog,
    repro.ppet.patterns,
    repro.sim.logicsim,
    repro.sim.seqsim,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s)"


def test_doctests_exist_somewhere():
    """Guard against silently losing all documented examples."""
    total = sum(doctest.testmod(m, verbose=False).attempted for m in MODULES)
    assert total >= 8
