"""Parallel-pattern combinational simulation."""

import pytest

from repro.errors import SimulationError
from repro.netlist import GateType, Netlist
from repro.sim import CombSimulator, levelize, pack_patterns, unpack_word


@pytest.fixture
def mux_circuit():
    """out = a·s + b·s' built from NAND/NOT primitives."""
    nl = Netlist("mux")
    for pi in ("a", "b", "s"):
        nl.add_input(pi)
    nl.add_gate("ns", GateType.NOT, ["s"])
    nl.add_gate("t1", GateType.NAND, ["a", "s"])
    nl.add_gate("t2", GateType.NAND, ["b", "ns"])
    nl.add_gate("out", GateType.NAND, ["t1", "t2"])
    nl.add_output("out")
    nl.validate()
    return nl


class TestLevelize:
    def test_levels(self, mux_circuit):
        lv = levelize(mux_circuit)
        assert lv.level["a"] == 0
        assert lv.level["ns"] == 1
        assert lv.level["t2"] == 2
        assert lv.level["out"] == 3
        assert lv.depth == 3

    def test_dff_outputs_level_zero(self, s27):
        lv = levelize(s27)
        assert lv.level["G5"] == 0
        assert lv.level["G6"] == 0

    def test_order_length(self, s27):
        assert len(levelize(s27).order) == 10


class TestCombSim:
    def test_mux_truth_table(self, mux_circuit):
        sim = CombSimulator(mux_circuit)
        # 8 patterns: exhaustive over a,b,s
        inputs = {"a": 0, "b": 0, "s": 0}
        for i in range(8):
            a, b, s = i & 1, (i >> 1) & 1, (i >> 2) & 1
            inputs["a"] |= a << i
            inputs["b"] |= b << i
            inputs["s"] |= s << i
        values = sim.run(inputs, 8)
        for i in range(8):
            a, b, s = i & 1, (i >> 1) & 1, (i >> 2) & 1
            expected = a if s else b
            assert (values["out"] >> i) & 1 == expected

    def test_pseudo_inputs_include_dffs(self, s27):
        sim = CombSimulator(s27)
        assert set(sim.pseudo_inputs) == {
            "G0", "G1", "G2", "G3", "G5", "G6", "G7",
        }

    def test_missing_drive_raises(self, s27):
        sim = CombSimulator(s27)
        with pytest.raises(SimulationError, match="G7"):
            sim.run({s: 0 for s in ("G0", "G1", "G2", "G3", "G5", "G6")}, 1)

    def test_zero_patterns_rejected(self, mux_circuit):
        sim = CombSimulator(mux_circuit)
        with pytest.raises(SimulationError):
            sim.run({"a": 0, "b": 0, "s": 0}, 0)

    def test_fault_override_on_gate(self, mux_circuit):
        sim = CombSimulator(mux_circuit)
        inputs = {"a": 0b11, "b": 0b11, "s": 0b01}
        good = sim.run(inputs, 2)
        bad = sim.run(inputs, 2, faults={"out": (0, 0)})  # out stuck-at-0
        assert good["out"] == 0b11
        assert bad["out"] == 0

    def test_fault_override_on_input(self, mux_circuit):
        sim = CombSimulator(mux_circuit)
        inputs = {"a": 0b01, "b": 0b00, "s": 0b11}
        bad = sim.run(inputs, 2, faults={"a": (0b11, 0b11)})  # a stuck-at-1
        assert bad["out"] == 0b11

    def test_values_masked(self, mux_circuit):
        sim = CombSimulator(mux_circuit)
        values = sim.run({"a": ~0, "b": ~0, "s": ~0}, 4)
        for v in values.values():
            assert 0 <= v < 16


class TestPacking:
    def test_pack(self):
        words = pack_patterns(
            [{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}],
            ["a", "b"],
        )
        assert words == {"a": 0b101, "b": 0b110}

    def test_unpack(self):
        assert unpack_word(0b101, 3) == [1, 0, 1]

    def test_round_trip(self):
        pats = [{"x": i & 1} for i in range(5)]
        words = pack_patterns(pats, ["x"])
        assert unpack_word(words["x"], 5) == [p["x"] for p in pats]
