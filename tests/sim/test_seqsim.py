"""Sequential (clocked) simulation."""

import pytest

from repro.errors import SimulationError
from repro.netlist import GateType, Netlist
from repro.sim import SequentialSimulator, random_input_sequence, sequences_equal


@pytest.fixture
def toggler():
    """q toggles every clock: q' = NOT(q)."""
    nl = Netlist("toggler")
    nl.add_input("en")  # unused but circuits need a PI
    nl.add_gate("nq", GateType.NOT, ["q"])
    nl.add_dff("q", "nq")
    nl.add_gate("obs", GateType.BUF, ["q"])
    nl.add_output("obs")
    nl.validate()
    return nl


class TestStep:
    def test_toggle_behaviour(self, toggler):
        sim = SequentialSimulator(toggler)
        outs = [sim.step({"en": 0})["obs"] for _ in range(4)]
        assert outs == [0, 1, 0, 1]

    def test_reset_state(self, toggler):
        sim = SequentialSimulator(toggler)
        sim.reset({"q": 1})
        assert sim.step({"en": 0})["obs"] == 1

    def test_reset_unknown_register_rejected(self, toggler):
        sim = SequentialSimulator(toggler)
        with pytest.raises(SimulationError):
            sim.reset({"nq": 1})

    def test_parallel_runs(self, toggler):
        sim = SequentialSimulator(toggler)
        sim.reset({"q": 0b01})  # run0 starts at 1, run1 at 0
        values = sim.step({"en": 0}, n_patterns=2)
        assert values["obs"] == 0b01


class TestRun:
    def test_run_returns_po_trace(self, s27):
        sim = SequentialSimulator(s27)
        seq = random_input_sequence(s27, 10, seed=1)
        trace = sim.run(seq)
        assert len(trace) == 10
        assert all(len(t) == 1 for t in trace)  # one PO

    def test_run_resets_with_state(self, toggler):
        sim = SequentialSimulator(toggler)
        t1 = sim.run([{"en": 0}] * 3, state={"q": 1})
        t2 = sim.run([{"en": 0}] * 3, state={"q": 1})
        assert t1 == t2 == [(1,), (0,), (1,)]

    def test_s27_state_evolves(self, s27):
        sim = SequentialSimulator(s27)
        seq = [{pi: 1 for pi in s27.inputs}] * 5
        sim.run(seq)
        assert set(sim.state) == {"G5", "G6", "G7"}


class TestHelpers:
    def test_random_sequence_deterministic(self, s27):
        a = random_input_sequence(s27, 5, seed=9)
        b = random_input_sequence(s27, 5, seed=9)
        assert a == b

    def test_sequences_equal_with_skip(self):
        a = [(0,), (1,), (1,)]
        b = [(1,), (1,), (1,)]
        assert not sequences_equal(a, b)
        assert sequences_equal(a, b, skip=1)

    def test_length_mismatch_raises(self):
        with pytest.raises(SimulationError):
            sequences_equal([(1,)], [(1,), (0,)])
